//! Quickstart: run GuP on the paper's running example (Fig. 1).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the 5-vertex query and 14-vertex data graph from the paper, enumerates every
//! embedding, and prints them together with the search statistics the paper reports
//! (recursions, futile recursions, guard usage). Also demonstrates the streaming
//! output sinks: counting without materializing, and stopping after the first `k`.

use gup::sink::{CountOnly, FirstK};
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_graph::fixtures::paper_example;

fn main() {
    let (query, data) = paper_example();
    println!(
        "query: {} vertices / {} edges; data: {} vertices / {} edges",
        query.vertex_count(),
        query.edge_count(),
        data.vertex_count(),
        data.edge_count()
    );

    let config = GupConfig {
        collect_embeddings: true,
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    let matcher = GupMatcher::new(&query, &data, config).expect("valid query");
    let result = matcher.run();

    println!("\nfound {} embedding(s):", result.embedding_count());
    for (i, emb) in result.embeddings.iter().enumerate() {
        let rendered: Vec<String> = emb
            .iter()
            .enumerate()
            .map(|(u, v)| format!("u{u}->v{v}"))
            .collect();
        println!("  #{i}: {}", rendered.join(", "));
    }

    let s = &result.stats;
    println!("\nsearch statistics:");
    println!("  recursions            : {}", s.recursions);
    println!("  futile recursions     : {}", s.futile_recursions);
    println!("  pruned by reservation : {}", s.pruned_by_reservation);
    println!("  pruned by nogood (NV) : {}", s.pruned_by_nogood_vertex);
    println!("  pruned by nogood (NE) : {}", s.pruned_by_nogood_edge);
    println!("  backjumps             : {}", s.backjumps);
    println!(
        "  guard prune rate      : {:.1}%",
        s.guard_prune_rate() * 100.0
    );

    // Streaming sinks: the output demand drives the work. Counting allocates no
    // embedding anywhere; FirstK stops the whole search after the k-th match.
    let mut count = CountOnly::new();
    matcher.run_with_sink(&mut count);
    println!("\ncount-only sink        : {} embeddings", count.count());

    let mut first = FirstK::new(2);
    let stats = matcher.run_with_sink(&mut first);
    println!(
        "first-2 sink           : kept {} of {} reported, search stopped early: {}",
        first.embeddings().len(),
        stats.embeddings,
        stats.terminated_early()
    );
}
