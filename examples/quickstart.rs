//! Quickstart: run GuP on the paper's running example (Fig. 1).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Opens a prepared-data [`Session`] over the 14-vertex data graph from the paper
//! (the index is built once), enumerates every embedding of the 5-vertex query, and
//! prints them together with the search statistics the paper reports (recursions,
//! futile recursions, guard usage). Also demonstrates the builder-style request
//! knobs (count-only, first-k, another engine) and a batch run.

use gup::session::{Engine, Session};
use gup_graph::fixtures::paper_example;

fn main() {
    let (query, data) = paper_example();
    println!(
        "query: {} vertices / {} edges; data: {} vertices / {} edges",
        query.vertex_count(),
        query.edge_count(),
        data.vertex_count(),
        data.edge_count()
    );

    // Prepare once; every request below reuses the same shared index.
    let session = Session::new(data);
    println!(
        "prepared data graph in {:?} ({} index bytes)",
        session.prep_time(),
        session.prepared().index_bytes()
    );

    let result = session
        .query(&query)
        .unlimited()
        .run()
        .expect("valid query");
    println!("\nfound {} embedding(s):", result.embedding_count());
    for (i, emb) in result.embeddings.iter().enumerate() {
        let rendered: Vec<String> = emb
            .iter()
            .enumerate()
            .map(|(u, v)| format!("u{u}->v{v}"))
            .collect();
        println!("  #{i}: {}", rendered.join(", "));
    }

    let s = &result.stats;
    println!("\nsearch statistics:");
    println!("  recursions            : {}", s.recursions);
    println!("  futile recursions     : {}", s.futile_recursions);
    println!("  pruned by reservation : {}", s.pruned_by_reservation);
    println!("  pruned by nogood (NV) : {}", s.pruned_by_nogood_vertex);
    println!("  pruned by nogood (NE) : {}", s.pruned_by_nogood_edge);
    println!("  backjumps             : {}", s.backjumps);
    println!(
        "  guard prune rate      : {:.1}%",
        s.guard_prune_rate() * 100.0
    );

    // Builder knobs: the output demand drives the work. Counting materializes
    // nothing anywhere; first_k stops the whole search after the k-th match; any
    // engine family runs against the same prepared index.
    let count = session.query(&query).unlimited().count().unwrap();
    println!("\ncount-only request     : {count} embeddings");

    let first = session.query(&query).unlimited().first_k(2).run().unwrap();
    println!(
        "first-2 request        : kept {} embedding(s), search stopped early: {}",
        first.embeddings.len(),
        first.stats.terminated_early()
    );

    let daf = session
        .query(&query)
        .method(Engine::Daf)
        .unlimited()
        .count()
        .unwrap();
    println!("DAF-style baseline     : {daf} embeddings (same prepared data)");

    // A query set through the same session: per-query stats, prep paid once.
    let report = session.run_batch(&[query.clone(), query]);
    println!(
        "batch of {}             : {} embeddings total, prep amortized {:?}/query",
        report.queries.len(),
        report.total_embeddings(),
        report.queries[0].prep_amortized
    );
}
