//! Mini workload sweep: the paper's query-set methodology end to end.
//!
//! ```text
//! cargo run --release --example workload_sweep
//! ```
//!
//! Generates a scaled-down Yeast analogue, draws the paper's eight query sets
//! (8S … 32D) from it by random walks, runs GuP on each set, and prints per-set
//! aggregates (average time, recursions, guard prune rate) — a small-scale preview of
//! what `cargo run -p gup-bench --bin experiments -- all` produces.

use gup::sink::CountOnly;
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_workloads::{generate_query_set, Dataset, QuerySetSpec};
use std::time::{Duration, Instant};

fn main() {
    let data = Dataset::Yeast.generate(0.2).graph;
    println!(
        "Yeast analogue: {}",
        gup_graph::stats::GraphStats::compute(&data, false)
    );
    println!(
        "\n{:<6} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "set", "queries", "avg ms", "recursions", "futile", "pruned %"
    );

    for spec in QuerySetSpec::PAPER_SETS {
        let queries = generate_query_set(&data, spec, 10, 1);
        if queries.is_empty() {
            println!("{:<6} {:>8}", spec.name(), "n/a");
            continue;
        }
        let cfg = GupConfig {
            limits: SearchLimits {
                max_embeddings: Some(100_000),
                time_limit: Some(Duration::from_secs(2)),
                ..SearchLimits::UNLIMITED
            },
            ..GupConfig::default()
        };
        let mut total_time = Duration::ZERO;
        let mut recursions = 0u64;
        let mut futile = 0u64;
        let mut seen = 0u64;
        let mut pruned = 0u64;
        for q in &queries {
            let start = Instant::now();
            if let Ok(matcher) = GupMatcher::<1>::new(q, &data, cfg.clone()) {
                // Only aggregates are reported, so stream through a counting sink —
                // the cheapest output mode.
                let stats = matcher.run_with_sink(&mut CountOnly::new());
                recursions += stats.recursions;
                futile += stats.futile_recursions;
                seen += stats.local_candidates_seen;
                pruned += stats.pruned_by_reservation + stats.pruned_by_nogood_vertex;
            }
            total_time += start.elapsed();
        }
        println!(
            "{:<6} {:>8} {:>12.2} {:>14} {:>12} {:>11.1}%",
            spec.name(),
            queries.len(),
            total_time.as_secs_f64() * 1000.0 / queries.len() as f64,
            recursions,
            futile,
            if seen > 0 {
                100.0 * pruned as f64 / seen as f64
            } else {
                0.0
            }
        );
    }
}
