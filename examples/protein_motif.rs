//! Protein-motif search on the Yeast analogue.
//!
//! ```text
//! cargo run --release --example protein_motif
//! ```
//!
//! The scenario the paper's introduction motivates: searching a protein-interaction
//! network for small structural motifs. We generate the Yeast analogue dataset, build
//! two motif queries — a labeled triangle ("complex core") and a 4-cycle with a chord
//! ("bridged complex") — and compare GuP against the DAF-style baseline on each.

use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_baselines::{BacktrackingBaseline, BaselineKind, BaselineLimits};
use gup_graph::builder::graph_from_edges;
use gup_graph::Graph;
use gup_workloads::Dataset;
use std::time::{Duration, Instant};

fn most_common_labels(data: &Graph, k: usize) -> Vec<u32> {
    let mut freq: Vec<(usize, u32)> = (0..data.label_count() as u32)
        .map(|l| (data.label_frequency(l), l))
        .collect();
    freq.sort_unstable_by(|a, b| b.cmp(a));
    freq.into_iter().take(k).map(|(_, l)| l).collect()
}

fn main() {
    let dataset = Dataset::Yeast.generate(0.25);
    let data = dataset.graph;
    println!(
        "Yeast analogue: {}",
        gup_graph::stats::GraphStats::compute(&data, false)
    );

    // Use the three most frequent labels so the motifs actually occur.
    let labels = most_common_labels(&data, 3);
    let (a, b, c) = (labels[0], labels[1], labels[2]);

    let motifs: Vec<(&str, Graph)> = vec![
        (
            "complex core (triangle)",
            graph_from_edges(&[a, b, c], &[(0, 1), (1, 2), (2, 0)]),
        ),
        (
            "bridged complex (4-cycle + chord)",
            graph_from_edges(&[a, b, a, c], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        ),
        (
            "signalling path (5-path)",
            graph_from_edges(&[a, b, a, b, c], &[(0, 1), (1, 2), (2, 3), (3, 4)]),
        ),
    ];

    for (name, query) in &motifs {
        println!("\n=== motif: {name} ===");
        let limits = SearchLimits {
            max_embeddings: Some(100_000),
            time_limit: Some(Duration::from_secs(5)),
            ..SearchLimits::UNLIMITED
        };
        let cfg = GupConfig {
            limits,
            ..GupConfig::default()
        };
        let start = Instant::now();
        match GupMatcher::<1>::new(query, &data, cfg) {
            Ok(matcher) => {
                let result = matcher.run();
                println!(
                    "  GuP     : {:>8} embeddings, {:>9} recursions, {:>7} futile, {:?}",
                    result.embedding_count(),
                    result.stats.recursions,
                    result.stats.futile_recursions,
                    start.elapsed()
                );
            }
            Err(e) => println!("  GuP     : query rejected ({e})"),
        }
        let start = Instant::now();
        match BacktrackingBaseline::<1>::new(query, &data, BaselineKind::DafFailingSet) {
            Ok(matcher) => {
                let r = matcher.run(BaselineLimits {
                    max_embeddings: Some(100_000),
                    time_limit: Some(Duration::from_secs(5)),
                });
                println!(
                    "  DAF-FS  : {:>8} embeddings, {:>9} recursions, {:>7} futile, {:?}",
                    r.embeddings,
                    r.recursions,
                    r.futile_recursions,
                    start.elapsed()
                );
            }
            Err(e) => println!("  DAF-FS  : query rejected ({e})"),
        }
    }
}
