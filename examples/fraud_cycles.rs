//! Fraud-ring detection: finding labeled cycles in a transaction-like graph.
//!
//! ```text
//! cargo run --release --example fraud_cycles
//! ```
//!
//! The paper cites crime detection (suspicious-transaction cycles) as an application
//! where the sought subgraphs are rare and cyclic — exactly the regime where candidate
//! filtering alone leaves many deadends and guard-based pruning shines. We synthesize
//! an account graph with three roles (person, merchant, mule), plant a handful of
//! cyclic "fraud rings", and search for ring queries of increasing length, comparing
//! the number of futile recursions with and without guards.

use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_graph::builder::graph_from_edges;
use gup_graph::generate::{power_law_graph, PowerLawConfig};
use gup_graph::{Graph, GraphBuilder};
use std::time::Duration;

/// Labels: 0 = person, 1 = merchant, 2 = mule.
fn build_transaction_graph() -> Graph {
    // Background activity: a scale-free graph over persons and merchants.
    let background = power_law_graph(&PowerLawConfig {
        vertices: 3_000,
        edges_per_vertex: 3,
        labels: 2,
        label_skew: 0.4,
        extra_edge_fraction: 0.05,
        seed: 99,
    });
    let mut b = GraphBuilder::with_capacity(
        background.vertex_count() + 64,
        background.edge_count() + 256,
    );
    for v in background.vertices() {
        b.add_vertex(background.label(v));
    }
    for (x, y) in background.edges() {
        b.add_edge(x, y);
    }
    // Plant fraud rings: person -> mule -> merchant -> mule -> person cycles.
    for ring in 0..6u32 {
        let person = ring * 97 % background.vertex_count() as u32;
        let mule_a = b.add_vertex(2);
        let merchant = (ring * 131 + 7) % background.vertex_count() as u32;
        let mule_b = b.add_vertex(2);
        b.add_edge(person, mule_a);
        b.add_edge(mule_a, merchant);
        b.add_edge(merchant, mule_b);
        b.add_edge(mule_b, person);
    }
    b.build()
}

fn ring_query(length: usize) -> Graph {
    // Alternating person/mule/merchant ring of the requested length (≥ 4, even).
    let labels: Vec<u32> = (0..length)
        .map(|i| match i % 4 {
            0 => 0, // person
            1 => 2, // mule
            2 => 1, // merchant
            _ => 2, // mule
        })
        .collect();
    let edges: Vec<(u32, u32)> = (0..length as u32)
        .map(|i| (i, (i + 1) % length as u32))
        .collect();
    graph_from_edges(&labels, &edges)
}

fn run(query: &Graph, data: &Graph, features: PruningFeatures) -> gup::MatchResult {
    let cfg = GupConfig {
        features,
        limits: SearchLimits {
            max_embeddings: Some(100_000),
            time_limit: Some(Duration::from_secs(10)),
            ..SearchLimits::UNLIMITED
        },
        ..GupConfig::default()
    };
    GupMatcher::<1>::new(query, data, cfg)
        .expect("valid ring query")
        .run()
}

fn main() {
    let data = build_transaction_graph();
    println!(
        "transaction graph: {}",
        gup_graph::stats::GraphStats::compute(&data, false)
    );

    for length in [4usize, 8] {
        let query = ring_query(length);
        println!("\n=== fraud ring of length {length} ===");
        let guarded = run(&query, &data, PruningFeatures::ALL);
        let unguarded = run(&query, &data, PruningFeatures::NONE);
        assert_eq!(guarded.embedding_count(), unguarded.embedding_count());
        println!(
            "  rings found                : {}",
            guarded.embedding_count()
        );
        println!(
            "  futile recursions (GuP)    : {:>9}",
            guarded.stats.futile_recursions
        );
        println!(
            "  futile recursions (no guards): {:>7}",
            unguarded.stats.futile_recursions
        );
        println!(
            "  recursions GuP / baseline  : {} / {}",
            guarded.stats.recursions, unguarded.stats.recursions
        );
        println!(
            "  local candidates pruned by guards: {:.1}%",
            guarded.stats.guard_prune_rate() * 100.0
        );
    }
}
