//! Live fraud-ring detection: standing cycle queries over a transaction stream.
//!
//! ```text
//! cargo run --release --example fraud_cycles
//! ```
//!
//! The paper cites crime detection (suspicious-transaction cycles) as an
//! application where the sought subgraphs are rare and cyclic. Here the account
//! graph is *live*: transactions arrive as [`GraphDelta`] batches against a
//! long-lived session, and ring-shaped standing queries registered with a
//! [`ContinuousMatcher`] raise an alert the moment a closing transaction
//! completes a planted ring — without ever re-matching the full graph.
//!
//! The stream mixes background person↔merchant noise with six fraud rings
//! whose money-mule hops are planted incrementally; each ring's closing edge is
//! withheld for a couple of ticks so the alert visibly fires on the exact
//! transaction that completes the cycle.

use gup::session::Session;
use gup_graph::builder::graph_from_edges;
use gup_graph::delta::GraphDelta;
use gup_graph::generate::{power_law_graph, PowerLawConfig};
use gup_graph::Graph;
use gup_stream::ContinuousMatcher;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

/// Labels: 0 = person, 1 = merchant, 2 = mule (mules only ever arrive live).
fn build_background() -> Graph {
    power_law_graph(&PowerLawConfig {
        vertices: 3_000,
        edges_per_vertex: 3,
        labels: 2,
        label_skew: 0.4,
        extra_edge_fraction: 0.05,
        seed: 99,
    })
}

/// Alternating person/mule/merchant ring of the requested length (≥ 4, i % 4).
fn ring_query(length: usize) -> Graph {
    let labels: Vec<u32> = (0..length)
        .map(|i| match i % 4 {
            0 => 0, // person
            1 => 2, // mule
            2 => 1, // merchant
            _ => 2, // mule
        })
        .collect();
    let edges: Vec<(u32, u32)> = (0..length as u32)
        .map(|i| (i, (i + 1) % length as u32))
        .collect();
    graph_from_edges(&labels, &edges)
}

/// Deltas planting one fraud ring of `length`: fresh mule accounts at the odd
/// ring positions, existing persons/merchants at the even ones. Returns the
/// setup batch and the withheld closing transaction. Every ring edge touches a
/// brand-new mule, so the deltas can never collide with background noise.
fn plant_ring(
    length: usize,
    next_vertex: u32,
    persons: &[u32],
    merchants: &[u32],
    rng: &mut SmallRng,
) -> (Vec<GraphDelta>, GraphDelta) {
    let mut deltas = Vec::new();
    let ids: Vec<u32> = (0..length)
        .map(|i| match i % 4 {
            0 => persons[rng.gen_range(0..persons.len())],
            2 => merchants[rng.gen_range(0..merchants.len())],
            _ => {
                deltas.push(GraphDelta::AddVertex { label: 2 });
                next_vertex + (deltas.len() as u32 - 1)
            }
        })
        .collect();
    for i in 0..length - 1 {
        deltas.push(GraphDelta::AddEdge {
            a: ids[i],
            b: ids[i + 1],
        });
    }
    let closer = GraphDelta::AddEdge {
        a: ids[length - 1],
        b: ids[0],
    };
    (deltas, closer)
}

fn main() {
    let background = build_background();
    let persons: Vec<u32> = background
        .vertices()
        .filter(|&v| background.label(v) == 0)
        .collect();
    let merchants: Vec<u32> = background
        .vertices()
        .filter(|&v| background.label(v) == 1)
        .collect();
    println!(
        "background graph: {}",
        gup_graph::stats::GraphStats::compute(&background, false)
    );

    let mut matcher = ContinuousMatcher::new(Session::new(background));
    let ring4 = matcher.register(&ring_query(4)).expect("valid ring query");
    let ring8 = matcher.register(&ring_query(8)).expect("valid ring query");
    println!("standing queries: ring4 (id {ring4}), ring8 (id {ring8})\n");

    let mut rng = SmallRng::seed_from_u64(2024);
    let mut pending_closers: Vec<(usize, GraphDelta)> = Vec::new();
    let mut alerts = [0u64; 2];
    let mut total_apply = Duration::ZERO;
    let mut total_match = Duration::ZERO;

    for tick in 0..42u32 {
        // Background noise: a burst of person↔merchant transactions.
        let graph = matcher.session().data();
        let mut batch = Vec::new();
        let mut in_batch: HashSet<(u32, u32)> = HashSet::new();
        while batch.len() < 25 {
            let a = persons[rng.gen_range(0..persons.len())];
            let b = merchants[rng.gen_range(0..merchants.len())];
            let key = (a.min(b), a.max(b));
            if !graph.has_edge(a, b) && in_batch.insert(key) {
                batch.push(GraphDelta::AddEdge { a, b });
            }
        }
        // Every 7th tick a fraud ring is set up — minus its closing edge …
        if tick % 7 == 3 {
            let length = if tick % 2 == 1 { 4 } else { 8 };
            let (setup, closer) = plant_ring(
                length,
                matcher.session().data().vertex_count() as u32,
                &persons,
                &merchants,
                &mut rng,
            );
            println!("tick {tick:>2}: ring of length {length} staged (closing edge withheld)");
            batch.extend(setup);
            pending_closers.push((length, closer));
        }
        // … which lands two ticks later, completing the cycle.
        if tick % 7 == 5 {
            for (length, closer) in pending_closers.drain(..) {
                println!(
                    "tick {tick:>2}: closing transaction for the length-{length} ring arrives"
                );
                batch.push(closer);
            }
        }

        let report = matcher.apply(&batch).expect("valid transaction batch");
        total_apply += report.apply_time;
        total_match += report.match_time;
        for matches in &report.matches {
            for emb in &matches.embeddings {
                let which = usize::from(matches.query == ring8);
                alerts[which] += 1;
                let ring: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
                println!(
                    "tick {tick:>2}:   ALERT ring{} cycle: {}",
                    if matches.query == ring4 { 4 } else { 8 },
                    ring.join(" -> ")
                );
            }
        }
    }

    let session = matcher.session();
    let counters = session.counters().snapshot();
    println!("\nstream totals:");
    println!("  deltas applied        : {}", counters.deltas_applied);
    println!("  incremental matches   : {}", counters.incremental_matches);
    println!("  cache invalidations   : {}", counters.cache_invalidations);
    println!("  index update time     : {total_apply:?}");
    println!("  delta-match time      : {total_match:?}");

    // Self-check: the stream was insert-only and started with zero rings, so
    // the alerts must account for every ring a cold full re-match finds now.
    for (query, count) in [(ring_query(4), alerts[0]), (ring_query(8), alerts[1])] {
        let full = session
            .query(&query)
            .unlimited()
            .count()
            .expect("valid ring query");
        assert_eq!(full, count, "streamed alerts diverge from full re-match");
    }
    println!("  verified: alerts match a cold full re-match exactly");
}
