//! Load harness for `gup-serve`: p50/p99 latency and throughput at 1, 8, and 64
//! concurrent clients.
//!
//! ```text
//! cargo run --release --example serve_load
//! ```
//!
//! Boots an in-process [`gup_serve::Server`] over a scaled Yeast-analogue data
//! graph, then drives it over real TCP connections: each concurrency level
//! splits a fixed request budget across its clients, every client runs its
//! share of `query count` requests over one persistent connection, and the
//! harness reports per-request latency percentiles plus queries/sec. `busy`
//! responses (admission control) are counted separately — with the queue sized
//! for the client count there should be none.

use gup::Session;
use gup_serve::{graph_body, Server, ServerConfig};
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const TOTAL_REQUESTS: usize = 1024;
const CLIENT_COUNTS: [usize; 3] = [1, 8, 64];

struct LevelReport {
    clients: usize,
    completed: usize,
    busy: usize,
    elapsed: Duration,
    p50: Duration,
    p99: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one client's share of the load over a single persistent connection.
/// Returns (latencies of completed requests, busy count).
fn run_client(
    addr: SocketAddr,
    bodies: &[String],
    requests: usize,
    offset: usize,
) -> (Vec<Duration>, usize) {
    let stream = TcpStream::connect(addr).expect("connect to gup-serve");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut latencies = Vec::with_capacity(requests);
    let mut busy = 0usize;
    let mut line = String::new();
    for i in 0..requests {
        let body = &bodies[(offset + i) % bodies.len()];
        let start = Instant::now();
        writer.write_all(body.as_bytes()).expect("send request");
        writer.flush().expect("flush request");
        line.clear();
        reader.read_line(&mut line).expect("read response");
        let elapsed = start.elapsed();
        if line.trim() == "busy" {
            busy += 1;
        } else {
            assert!(line.starts_with("ok "), "unexpected response: {line}");
            latencies.push(elapsed);
        }
    }
    writer.write_all(b"quit\n").expect("send quit");
    writer.flush().expect("flush quit");
    (latencies, busy)
}

fn run_level(addr: SocketAddr, bodies: &[String], clients: usize) -> LevelReport {
    let per_client = TOTAL_REQUESTS / clients;
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.to_vec();
            std::thread::spawn(move || run_client(addr, &bodies, per_client, c * per_client))
        })
        .collect();
    let mut latencies = Vec::with_capacity(TOTAL_REQUESTS);
    let mut busy = 0;
    for handle in handles {
        let (mut lat, b) = handle.join().expect("client thread");
        latencies.append(&mut lat);
        busy += b;
    }
    let elapsed = start.elapsed();
    latencies.sort();
    LevelReport {
        clients,
        completed: latencies.len(),
        busy,
        elapsed,
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn main() {
    // A mid-size data graph: big enough that a query does real work, small
    // enough that the harness finishes in seconds.
    let data = Dataset::Yeast.generate(0.3).graph;
    println!(
        "data graph: {} vertices, {} edges, {} labels",
        data.vertex_count(),
        data.edge_count(),
        data.label_count()
    );
    let queries = generate_query_set(
        &data,
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        },
        16,
        42,
    );
    assert!(!queries.is_empty(), "query generator produced nothing");
    // Pre-render each request: command line + graph body. A per-request budget
    // keeps a pathological query from skewing the tail unboundedly.
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| format!("query count timeout-ms 1000\n{}", graph_body(q)))
        .collect();

    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let config = ServerConfig {
        workers,
        queue_capacity: 2 * CLIENT_COUNTS[CLIENT_COUNTS.len() - 1],
        default_timeout: None,
        query_threads: 1,
        // The harness replays the same query mix; caching would turn the
        // measured tail into memo lookups instead of engine work.
        result_cache: 0,
    };
    let session = Session::new(data);
    println!(
        "prepared in {:?} ({} index bytes); serving with {} workers",
        session.prep_time(),
        session.prepared().index_bytes(),
        workers
    );
    let server = Server::bind("127.0.0.1:0", config, session).expect("bind server");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    println!(
        "\n{:>8} {:>10} {:>6} {:>12} {:>12} {:>10}",
        "clients", "requests", "busy", "p50", "p99", "qps"
    );
    for clients in CLIENT_COUNTS {
        let report = run_level(addr, &bodies, clients);
        let qps = report.completed as f64 / report.elapsed.as_secs_f64();
        println!(
            "{:>8} {:>10} {:>6} {:>12?} {:>12?} {:>10.0}",
            report.clients, report.completed, report.busy, report.p50, report.p99, qps
        );
    }

    // Shut the server down over the wire, like any client would.
    let stream = TcpStream::connect(addr).expect("connect for shutdown");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    writer.write_all(b"shutdown\n").expect("send shutdown");
    writer.flush().expect("flush shutdown");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read shutdown ack");
    server_thread.join().expect("server thread");
}
