//! # gup-stream
//!
//! Continuous subgraph matching over dynamic data graphs.
//!
//! A production deployment of a subgraph matcher (fraud detection, network
//! monitoring) does not run one query against one frozen graph — it registers
//! *standing queries* and feeds an *edge stream*, and wants to hear only about
//! the **new** embeddings each mutation creates. This crate is that layer, built
//! on the two pieces underneath it:
//!
//! * [`gup_graph::delta`] applies a validated [`GraphDelta`] batch to a
//!   [`PreparedData`] incrementally (no full rebuild), reporting the batch's net
//!   [`DeltaEffects`];
//! * this crate's [`ContinuousMatcher`] consumes those effects with
//!   **delta-localized search**: instead of re-running each standing query from
//!   scratch, it pins one query edge onto each net-new data edge (both
//!   orientations of every query edge) and backtracks outward from that seed —
//!   so the work per delta scales with the neighborhood the delta touched, not
//!   with the data graph.
//!
//! Every embedding that uses at least one net-new edge is found from one of
//! those seeds; embeddings that use none existed before the batch and are —
//! deliberately — never re-reported. Duplicate reports are suppressed without a
//! result set: a completion may not map any query edge onto a net-new data edge
//! with a *smaller* batch index than its seed edge, so an embedding using new
//! edges `{j1 < j2 < …}` is emitted exactly once, from seed `j1`. Deletions
//! never create embeddings (matching is monotone in the edge set), so only the
//! net insertions seed search; a standing single-vertex query matches each
//! added vertex of its label.
//!
//! Results stream through the workspace's [`EmbeddingSink`] machinery
//! ([`collect_new_matches`] takes any sink; [`ContinuousMatcher::apply`]
//! collects per standing query and feeds the session's `incremental_matches`
//! counter).
//!
//! ```
//! use gup::session::Session;
//! use gup_graph::builder::graph_from_edges;
//! use gup_graph::delta::GraphDelta;
//! use gup_stream::ContinuousMatcher;
//!
//! // A path a-b-c of labels 0-1-0, and a standing triangle query 0-1-0.
//! let data = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
//! let triangle = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
//! let mut stream = ContinuousMatcher::new(Session::new(data));
//! let ring = stream.register(&triangle).unwrap();
//!
//! // Closing the path into a triangle creates exactly the new embeddings.
//! let report = stream.apply(&[GraphDelta::AddEdge { a: 0, b: 2 }]).unwrap();
//! assert_eq!(report.total_new_matches(), 2); // the triangle, both automorphisms
//! assert_eq!(report.matches[0].query, ring);
//! ```

use gup::session::Session;
use gup_graph::deadline::Stopwatch;
use gup_graph::delta::{DeltaEffects, DeltaError, GraphDelta};
use gup_graph::sink::{CollectAll, EmbeddingSink, SinkControl};
use gup_graph::{Graph, Label, PreparedData, QueryGraph, QueryGraphError, VertexId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Sentinel for "query vertex not mapped yet" in the partial embedding.
const UNMAPPED: VertexId = VertexId::MAX;

/// A standing query compiled for delta-localized search: per-vertex
/// neighborhood-label-frequency requirements plus, for every (query edge,
/// orientation) pair, a BFS matching order rooted at that edge with
/// earlier-neighbor lists. Compiling once per registration keeps the per-delta
/// cost at "backtrack from the seed", with no per-batch planning.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    query: Graph,
    reqs: Vec<NlfReq>,
    seeds: Vec<SeedOrder>,
}

/// Sparse NLF requirement of one query vertex (sorted label list + counts): a
/// data vertex can host it only if its signature covers these counts — the same
/// necessary condition the batch engines' filter pass uses.
#[derive(Clone, Debug)]
struct NlfReq {
    labels: Vec<Label>,
    counts: Vec<u32>,
}

/// One seed orientation: `order[0]` and `order[1]` are the query edge's
/// endpoints (pinned to the net-new data edge), the rest is a BFS order over
/// the remaining query vertices. `earlier[i]` lists the query-neighbors of
/// `order[i]` already placed at positions `< i` — the join constraints for
/// position `i` (non-empty for every `i >= 2` because the query is connected).
#[derive(Clone, Debug)]
struct SeedOrder {
    order: Vec<VertexId>,
    earlier: Vec<Vec<VertexId>>,
}

impl QueryPlan {
    /// Compiles `query` for continuous matching. The query must satisfy the
    /// same invariants every batch engine demands (connected, non-empty,
    /// ≤ [`gup_graph::MAX_QUERY_VERTICES`] vertices).
    pub fn new(query: &Graph) -> Result<QueryPlan, QueryGraphError> {
        // Validation only: the plan keeps the raw `Graph` (queries are tiny).
        QueryGraph::new(query.clone())?;
        let n = query.vertex_count();
        let mut reqs = Vec::with_capacity(n);
        for u in 0..n as VertexId {
            let mut by_label: HashMap<Label, u32> = HashMap::new();
            for &w in query.neighbors(u) {
                *by_label.entry(query.label(w)).or_insert(0) += 1;
            }
            let mut labels: Vec<Label> = by_label.keys().copied().collect();
            labels.sort_unstable();
            let counts = labels.iter().map(|l| by_label[l]).collect();
            reqs.push(NlfReq { labels, counts });
        }
        let mut seeds = Vec::new();
        for (a, b) in query.edges() {
            seeds.push(SeedOrder::new(query, a, b));
            seeds.push(SeedOrder::new(query, b, a));
        }
        Ok(QueryPlan {
            query: query.clone(),
            reqs,
            seeds,
        })
    }

    /// The compiled query graph.
    pub fn query(&self) -> &Graph {
        &self.query
    }
}

impl SeedOrder {
    fn new(query: &Graph, first: VertexId, second: VertexId) -> SeedOrder {
        let n = query.vertex_count();
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for v in [first, second] {
            placed[v as usize] = true;
            order.push(v);
        }
        // BFS outward from the pinned edge; the query is connected, so this
        // reaches every vertex and gives each one an earlier neighbor.
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &w in query.neighbors(u) {
                if !placed[w as usize] {
                    placed[w as usize] = true;
                    order.push(w);
                }
            }
        }
        let position = {
            let mut position = vec![0usize; n];
            for (i, &u) in order.iter().enumerate() {
                position[u as usize] = i;
            }
            position
        };
        let earlier = order
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                if i < 2 {
                    return Vec::new();
                }
                let mut back: Vec<VertexId> = query
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&w| position[w as usize] < i)
                    .collect();
                // Constraint order: earliest-placed first, so the pivot (the
                // vertex whose data-neighbors are enumerated) is the seed-most.
                back.sort_unstable_by_key(|&w| position[w as usize]);
                back
            })
            .collect();
        SeedOrder { order, earlier }
    }
}

/// Delta-localized search state for one (seed edge, standing query) pass.
struct SeedSearch<'a> {
    data: &'a Graph,
    prepared: &'a PreparedData,
    plan: &'a QueryPlan,
    /// Canonical `(lo, hi)` net-new edge → its index in the batch's insert list.
    new_edges: &'a HashMap<(VertexId, VertexId), usize>,
    /// Index of the seed edge: completions may not use a net-new edge with a
    /// smaller index (that seed already reported them).
    seed_index: usize,
    /// Partial embedding, indexed by query vertex id (`UNMAPPED` = free).
    mapping: Vec<VertexId>,
    sink: &'a mut dyn EmbeddingSink,
    reported: u64,
    stopped: bool,
}

impl SeedSearch<'_> {
    /// `true` if `v` can host query vertex `u` in the current partial mapping:
    /// label match, NLF coverage, injectivity.
    fn admissible(&self, u: VertexId, v: VertexId) -> bool {
        if self.data.label(v) != self.plan.query.label(u) {
            return false;
        }
        let req = &self.plan.reqs[u as usize];
        if !self.prepared.signature_covers(v, &req.labels, &req.counts) {
            return false;
        }
        // Injectivity by scan: the mapping has at most MAX_QUERY_VERTICES entries.
        !self.mapping.contains(&v)
    }

    /// Extends the mapping at `order[pos..]`, reporting every completion.
    fn extend(&mut self, seed: &SeedOrder, pos: usize) {
        if self.stopped {
            return;
        }
        if pos == seed.order.len() {
            self.reported += 1;
            if self.sink.report(&self.mapping) == SinkControl::Stop {
                self.stopped = true;
            }
            return;
        }
        let u = seed.order[pos];
        let back = &seed.earlier[pos];
        let pivot = self.mapping[back[0] as usize];
        for i in 0..self.data.neighbors(pivot).len() {
            let v = self.data.neighbors(pivot)[i];
            if !self.admissible(u, v) {
                continue;
            }
            // Every back-edge must exist in the data graph, and none of the
            // data edges it lands on may be a net-new edge this pass must
            // leave to an earlier seed (smaller batch index).
            let mut ok = true;
            for (k, &w) in back.iter().enumerate() {
                let mw = self.mapping[w as usize];
                if k > 0 && !self.data.has_edge(v, mw) {
                    ok = false;
                    break;
                }
                let key = if v < mw { (v, mw) } else { (mw, v) };
                if self
                    .new_edges
                    .get(&key)
                    .is_some_and(|&j| j < self.seed_index)
                {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            self.mapping[u as usize] = v;
            self.extend(seed, pos + 1);
            self.mapping[u as usize] = UNMAPPED;
            if self.stopped {
                return;
            }
        }
    }
}

/// Streams every embedding that `effects` *newly created* for `plan` into
/// `sink`, by delta-localized search over `prepared` (the **post**-batch
/// index). Returns the number of embeddings reported; each new embedding is
/// reported exactly once, and embeddings that already existed before the batch
/// are never reported. A sink returning [`SinkControl::Stop`] stops the whole
/// pass early.
///
/// This is the sink-level entry point; [`ContinuousMatcher`] wraps it with
/// standing-query bookkeeping and session plumbing.
pub fn collect_new_matches(
    prepared: &PreparedData,
    effects: &DeltaEffects,
    plan: &QueryPlan,
    sink: &mut dyn EmbeddingSink,
) -> u64 {
    let data = prepared.graph();
    let qn = plan.query.vertex_count();
    if qn == 1 {
        // No edges to seed from: a single-vertex standing query gains exactly
        // the added vertices of its label (its NLF requirement is empty).
        let want = plan.query.label(0);
        let mut reported = 0u64;
        for v in effects.new_vertices() {
            if (v as usize) < data.vertex_count() && data.label(v) == want {
                reported += 1;
                if sink.report(&[v]) == SinkControl::Stop {
                    return reported;
                }
            }
        }
        return reported;
    }
    let new_edges: HashMap<(VertexId, VertexId), usize> = effects
        .inserted_edges
        .iter()
        .enumerate()
        .map(|(j, &e)| (e, j))
        .collect();
    let mut total = 0u64;
    for (j, &(a, b)) in effects.inserted_edges.iter().enumerate() {
        for seed in &plan.seeds {
            let mut search = SeedSearch {
                data,
                prepared,
                plan,
                new_edges: &new_edges,
                seed_index: j,
                mapping: vec![UNMAPPED; qn],
                sink,
                reported: 0,
                stopped: false,
            };
            // Pin the seed query edge onto the net-new data edge (this seed's
            // orientation) and backtrack outward.
            let (u0, u1) = (seed.order[0], seed.order[1]);
            if search.admissible(u0, a) {
                search.mapping[u0 as usize] = a;
                if search.admissible(u1, b) {
                    search.mapping[u1 as usize] = b;
                    search.extend(seed, 2);
                }
            }
            total += search.reported;
            if search.stopped {
                return total;
            }
        }
    }
    total
}

/// New embeddings one standing query gained from one delta batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryMatches {
    /// The standing query's registration id.
    pub query: u64,
    /// The new embeddings, over original query-vertex ids.
    pub embeddings: Vec<Vec<VertexId>>,
}

/// What one [`ContinuousMatcher::apply`] call did: the batch's net effects,
/// the incremental-apply and match costs, and the new matches per standing
/// query (in registration order).
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Net effect of the applied batch.
    pub effects: DeltaEffects,
    /// Time spent incrementally updating the prepared index.
    pub apply_time: Duration,
    /// Time spent in delta-localized search across all standing queries.
    pub match_time: Duration,
    /// New matches per standing query (entries for every standing query, empty
    /// `embeddings` when a query gained none).
    pub matches: Vec<QueryMatches>,
}

impl StreamReport {
    /// Total new embeddings across all standing queries.
    pub fn total_new_matches(&self) -> u64 {
        self.matches.iter().map(|m| m.embeddings.len() as u64).sum()
    }
}

/// One registered standing query.
struct Standing {
    id: u64,
    plan: QueryPlan,
}

/// The continuous-matching front door: standing queries registered against a
/// [`Session`], a delta stream in, new embeddings out.
///
/// Each [`ContinuousMatcher::apply`] call (1) applies the batch through
/// [`Session::apply_deltas`] — incremental index maintenance, cache
/// invalidation, shared counters — and (2) runs delta-localized search for
/// every standing query against the *new* index, reporting exactly the
/// embeddings the batch created. The session the matcher holds is replaced on
/// every batch; [`ContinuousMatcher::session`] always exposes the live one.
pub struct ContinuousMatcher {
    session: Session,
    standing: Vec<Standing>,
    next_id: u64,
}

impl ContinuousMatcher {
    /// Wraps `session` (its prepared index is the stream's initial state).
    pub fn new(session: Session) -> Self {
        ContinuousMatcher {
            session,
            standing: Vec::new(),
            next_id: 0,
        }
    }

    /// The live session (replaced by every applied batch; counters are shared
    /// across replacements, like `gup-serve` reloads).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Registers a standing query and returns its id. The query is validated
    /// and compiled once ([`QueryPlan`]); matches stream from the *next*
    /// applied batch on — embeddings that already exist are not replayed
    /// (run a regular [`Session::query`] first for the initial result set).
    pub fn register(&mut self, query: &Graph) -> Result<u64, QueryGraphError> {
        let plan = QueryPlan::new(query)?;
        let id = self.next_id;
        self.next_id += 1;
        self.standing.push(Standing { id, plan });
        Ok(id)
    }

    /// Removes a standing query; `false` if the id was never registered (or
    /// already removed).
    pub fn unregister(&mut self, id: u64) -> bool {
        let before = self.standing.len();
        self.standing.retain(|s| s.id != id);
        self.standing.len() != before
    }

    /// Ids of the registered standing queries, in registration order.
    pub fn standing_queries(&self) -> Vec<u64> {
        self.standing.iter().map(|s| s.id).collect()
    }

    /// Applies one delta batch and reports the new embeddings it created for
    /// every standing query. On error the batch was rejected whole: the live
    /// session, its index, and its cache are untouched.
    pub fn apply(&mut self, deltas: &[GraphDelta]) -> Result<StreamReport, DeltaError> {
        let apply_watch = Stopwatch::started();
        let (next, effects) = self.session.apply_deltas(deltas)?;
        let apply_time = apply_watch.elapsed();
        let match_watch = Stopwatch::started();
        let prepared: &Arc<PreparedData> = next.prepared();
        let mut matches = Vec::with_capacity(self.standing.len());
        let mut total = 0u64;
        for standing in &self.standing {
            let mut sink = CollectAll::new();
            total += collect_new_matches(prepared, &effects, &standing.plan, &mut sink);
            matches.push(QueryMatches {
                query: standing.id,
                embeddings: sink.into_embeddings(),
            });
        }
        next.counters().record_incremental_matches(total);
        self.session = next;
        Ok(StreamReport {
            effects,
            apply_time,
            match_time: match_watch.elapsed(),
            matches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup::session::Engine;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;
    use std::collections::BTreeSet;

    fn embedding_set(session: &Session, query: &Graph) -> BTreeSet<Vec<VertexId>> {
        session
            .query(query)
            .unlimited()
            .run()
            .unwrap()
            .embeddings
            .into_iter()
            .collect()
    }

    /// Differential check: applying `deltas` and collecting streamed matches
    /// must produce exactly full-match(after) minus full-match(before).
    fn check_step(stream: &mut ContinuousMatcher, query: &Graph, deltas: &[GraphDelta]) {
        let before = embedding_set(stream.session(), query);
        let report = stream.apply(deltas).unwrap();
        let after = embedding_set(stream.session(), query);
        let expected: BTreeSet<_> = after.difference(&before).cloned().collect();
        let streamed: BTreeSet<_> = report.matches[0].embeddings.iter().cloned().collect();
        assert_eq!(streamed, expected);
        // Exactly once: no duplicates collapsed by the set.
        assert_eq!(report.matches[0].embeddings.len(), expected.len());
    }

    #[test]
    fn closing_a_triangle_reports_both_automorphisms() {
        let data = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let triangle = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
        let mut stream = ContinuousMatcher::new(Session::new(data));
        stream.register(&triangle).unwrap();
        check_step(
            &mut stream,
            &triangle,
            &[GraphDelta::AddEdge { a: 0, b: 2 }],
        );
        assert_eq!(
            stream.session().counters().snapshot().incremental_matches,
            2
        );
    }

    #[test]
    fn embeddings_spanning_multiple_new_edges_report_once() {
        // Empty 3-vertex graph; one batch inserts the whole triangle.
        let data = graph_from_edges(&[0, 1, 0], &[]);
        let triangle = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
        let mut stream = ContinuousMatcher::new(Session::new(data));
        stream.register(&triangle).unwrap();
        check_step(
            &mut stream,
            &triangle,
            &[
                GraphDelta::AddEdge { a: 0, b: 1 },
                GraphDelta::AddEdge { a: 1, b: 2 },
                GraphDelta::AddEdge { a: 0, b: 2 },
            ],
        );
    }

    #[test]
    fn deletions_report_nothing_and_preexisting_matches_are_not_replayed() {
        let (query, data) = fixtures::paper_example();
        let mut stream = ContinuousMatcher::new(Session::new(data));
        stream.register(&query).unwrap();
        let victim = stream.session().data().edges().next().unwrap();
        let report = stream
            .apply(&[GraphDelta::RemoveEdge {
                a: victim.0,
                b: victim.1,
            }])
            .unwrap();
        assert_eq!(report.total_new_matches(), 0);
        // Re-inserting it restores the 4 paper embeddings minus whatever
        // survived the deletion — the differential harness checks exactness.
        check_step(
            &mut stream,
            &query,
            &[GraphDelta::AddEdge {
                a: victim.0,
                b: victim.1,
            }],
        );
    }

    #[test]
    fn new_vertices_serve_single_vertex_standing_queries() {
        let data = graph_from_edges(&[0, 1], &[(0, 1)]);
        let dot = graph_from_edges(&[1], &[]);
        let mut stream = ContinuousMatcher::new(Session::new(data));
        let id = stream.register(&dot).unwrap();
        let report = stream
            .apply(&[
                GraphDelta::AddVertex { label: 1 },
                GraphDelta::AddVertex { label: 0 },
                GraphDelta::AddVertex { label: 1 },
            ])
            .unwrap();
        assert_eq!(report.matches[0].query, id);
        assert_eq!(report.matches[0].embeddings, vec![vec![2], vec![4]]);
    }

    #[test]
    fn register_validates_and_unregister_silences() {
        let data = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let disconnected = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let mut stream = ContinuousMatcher::new(Session::new(data));
        assert!(stream.register(&disconnected).is_err());
        let edge = graph_from_edges(&[0, 0], &[(0, 1)]);
        let id = stream.register(&edge).unwrap();
        assert_eq!(stream.standing_queries(), vec![id]);
        assert!(stream.unregister(id));
        assert!(!stream.unregister(id));
        let report = stream.apply(&[GraphDelta::AddEdge { a: 0, b: 2 }]).unwrap();
        assert!(report.matches.is_empty());
        assert_eq!(report.effects.inserted_edges, vec![(0, 2)]);
    }

    #[test]
    fn rejected_batches_leave_the_stream_untouched() {
        let data = graph_from_edges(&[0, 0], &[(0, 1)]);
        let edge = graph_from_edges(&[0, 0], &[(0, 1)]);
        let mut stream = ContinuousMatcher::new(Session::new(data));
        stream.register(&edge).unwrap();
        let err = stream
            .apply(&[GraphDelta::AddEdge { a: 0, b: 1 }])
            .unwrap_err();
        assert!(matches!(err, DeltaError::DuplicateEdge { .. }));
        assert_eq!(stream.session().data().edge_count(), 1);
        assert_eq!(stream.session().counters().snapshot().deltas_applied, 0);
    }

    #[test]
    fn streamed_matches_agree_with_every_engine() {
        // Grow a small dense graph edge by edge; after each batch the streamed
        // set must equal the full-match difference, and the final session must
        // agree with every engine family on the total.
        let labels = [0, 1, 0, 1, 0];
        let data = graph_from_edges(&labels, &[(0, 1), (1, 2)]);
        let square = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut stream = ContinuousMatcher::new(Session::new(data));
        stream.register(&square).unwrap();
        for (a, b) in [(2, 3), (3, 4), (0, 3), (1, 4), (0, 4)] {
            check_step(&mut stream, &square, &[GraphDelta::AddEdge { a, b }]);
        }
        let session = stream.session();
        let expected = session.query(&square).unlimited().count().unwrap();
        for engine in Engine::ALL {
            assert_eq!(
                session
                    .query(&square)
                    .method(engine)
                    .unlimited()
                    .count()
                    .unwrap(),
                expected,
                "engine {}",
                engine.name()
            );
        }
    }
}
