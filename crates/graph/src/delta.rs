//! Dynamic data graphs: typed deltas and incremental [`PreparedData`] maintenance.
//!
//! Every index in this workspace was immutable until this module: a single edge
//! insert meant rebuilding the CSR graph (collect + sort every edge) and re-running
//! the whole signature pass. [`PreparedData::apply`] replaces that with *incremental*
//! maintenance: one merge pass that
//!
//! * splices the inserted/deleted adjacency into the CSR arrays (untouched vertices
//!   are block-copied, touched ones are merged against their sorted change lists —
//!   no global edge sort),
//! * recomputes neighborhood-label-frequency signatures **only** for vertices whose
//!   adjacency changed, block-copying every other vertex's slice of the arena,
//! * refreshes the per-label max-NLF bounds and the degree statistics during the
//!   same pass.
//!
//! The result is a brand-new [`PreparedData`] — the original is never mutated, so
//! in-flight queries holding an `Arc` of the old index are undisturbed (the same
//! pin-the-old-graph story `gup-serve` uses for `reload`). Equality with a cold
//! rebuild is exact: `old.apply(&deltas)? == PreparedData::new(rebuilt_graph)`
//! (both sides keep adjacency and signature slices sorted), which is what the
//! `tests/dynamic.rs` differential suite pins.
//!
//! Validation is strict and typed in the spirit of the ingest sweep: deltas are
//! checked *in order* against the state produced by the deltas before them, and the
//! first invalid one aborts the whole batch with a [`DeltaError`] naming the
//! offending index — nothing is partially applied. Like `index_io.rs`, this
//! module mutates the persistent index from externally supplied input, so it is
//! held to gup-lint's `panic_freedom` rule: no `.unwrap()`/`.expect()`/`panic!`
//! outside test code (enforced in tier-1, pinned by the rule's corpus case).
//!
//! ```
//! use gup_graph::delta::GraphDelta;
//! use gup_graph::{builder::graph_from_edges, PreparedData};
//!
//! let base = PreparedData::new(graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]));
//! let next = base
//!     .apply(&[
//!         GraphDelta::AddVertex { label: 1 },
//!         GraphDelta::AddEdge { a: 2, b: 3 },
//!         GraphDelta::RemoveEdge { a: 0, b: 1 },
//!     ])
//!     .unwrap();
//! assert_eq!(next.graph().vertex_count(), 4);
//! assert_eq!(next.graph().edge_count(), 2);
//! // `base` is untouched: apply builds a new index.
//! assert_eq!(base.graph().edge_count(), 2);
//! ```

use crate::deadline::Stopwatch;
use crate::types::{Label, VertexId};
use crate::{Graph, PreparedData};
use std::collections::HashMap;

/// One mutation of the data graph. Batches of deltas are applied atomically by
/// [`PreparedData::apply`]; within a batch, later deltas see the effect of earlier
/// ones (an edge may reference a vertex added two deltas before).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphDelta {
    /// Appends a vertex carrying `label`. New ids are assigned consecutively
    /// starting at the pre-batch vertex count, in delta order.
    AddVertex {
        /// Label of the new vertex.
        label: Label,
    },
    /// Inserts the undirected edge `{a, b}`. The edge must not already exist.
    AddEdge {
        /// One endpoint.
        a: VertexId,
        /// The other endpoint.
        b: VertexId,
    },
    /// Deletes the undirected edge `{a, b}`. The edge must exist.
    RemoveEdge {
        /// One endpoint.
        a: VertexId,
        /// The other endpoint.
        b: VertexId,
    },
}

/// Why a delta batch was rejected. The batch is validated in order; `index` is the
/// position of the first offending delta. Nothing is applied on error — the
/// original [`PreparedData`] is returned untouched (it is never mutated at all;
/// [`PreparedData::apply`] builds a new index).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeltaError {
    /// An edge delta named the same vertex twice (the matcher assumes simple
    /// graphs, Definition 2.2 of the paper).
    SelfLoop {
        /// The repeated endpoint.
        vertex: VertexId,
        /// Position of the delta in the batch.
        index: usize,
    },
    /// An edge delta referenced a vertex id that does not exist at that point of
    /// the batch (neither in the base graph nor added by an earlier delta).
    UnknownVertex {
        /// The out-of-range endpoint.
        vertex: VertexId,
        /// Number of vertices that existed when the delta was checked.
        vertex_count: usize,
        /// Position of the delta in the batch.
        index: usize,
    },
    /// An `AddEdge` named an edge that already exists (in the base graph, or
    /// inserted by an earlier delta of the batch).
    DuplicateEdge {
        /// Lower endpoint.
        a: VertexId,
        /// Higher endpoint.
        b: VertexId,
        /// Position of the delta in the batch.
        index: usize,
    },
    /// A `RemoveEdge` named an edge that does not exist at that point of the batch.
    MissingEdge {
        /// Lower endpoint.
        a: VertexId,
        /// Higher endpoint.
        b: VertexId,
        /// Position of the delta in the batch.
        index: usize,
    },
    /// The updated signature arena would overflow its `u32` offsets — the same
    /// bound [`crate::prepared::PrepareError::SignatureArenaTooLarge`] enforces on
    /// a cold build.
    IndexOverflow {
        /// Number of `(label, count)` entries the arena would need.
        entries: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SelfLoop { vertex, index } => {
                write!(f, "delta {index}: self loop on vertex {vertex}")
            }
            DeltaError::UnknownVertex {
                vertex,
                vertex_count,
                index,
            } => write!(
                f,
                "delta {index}: vertex {vertex} out of range (graph has {vertex_count} vertices at that point)"
            ),
            DeltaError::DuplicateEdge { a, b, index } => {
                write!(f, "delta {index}: edge ({a}, {b}) already exists")
            }
            DeltaError::MissingEdge { a, b, index } => {
                write!(f, "delta {index}: edge ({a}, {b}) does not exist")
            }
            DeltaError::IndexOverflow { entries } => write!(
                f,
                "signature arena would need {entries} entries, which exceeds the u32 offset range"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The net effect of an applied delta batch, relative to the pre-batch graph.
/// Inserted-then-deleted (or deleted-then-reinserted) edges cancel out; the
/// continuous-matching layer seeds its delta-localized search from exactly
/// [`DeltaEffects::inserted_edges`] and [`DeltaEffects::added_vertices`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaEffects {
    /// Id of the first vertex added by the batch (== the pre-batch vertex count);
    /// added ids are `first_new_vertex..first_new_vertex + added_vertices`.
    pub first_new_vertex: VertexId,
    /// Number of vertices the batch added.
    pub added_vertices: usize,
    /// Edges present after the batch but not before, canonical `(lo, hi)`, sorted.
    pub inserted_edges: Vec<(VertexId, VertexId)>,
    /// Edges present before the batch but not after, canonical `(lo, hi)`, sorted.
    pub removed_edges: Vec<(VertexId, VertexId)>,
}

impl DeltaEffects {
    /// `true` if the batch changed nothing (all deltas cancelled out, and no
    /// vertex was added).
    pub fn is_noop(&self) -> bool {
        self.added_vertices == 0 && self.inserted_edges.is_empty() && self.removed_edges.is_empty()
    }

    /// Ids of the vertices the batch added, in insertion order.
    pub fn new_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.added_vertices).map(|i| self.first_new_vertex + i as VertexId)
    }
}

/// Validated, normalized view of one delta batch: appended labels plus the net
/// per-edge changes.
struct ValidatedBatch {
    new_labels: Vec<Label>,
    inserted: Vec<(VertexId, VertexId)>,
    removed: Vec<(VertexId, VertexId)>,
}

fn validate(graph: &Graph, deltas: &[GraphDelta]) -> Result<ValidatedBatch, DeltaError> {
    let n0 = graph.vertex_count();
    let mut new_labels: Vec<Label> = Vec::new();
    // Presence overlay for every edge a delta touched; keys are canonical (lo, hi).
    let mut overlay: HashMap<(VertexId, VertexId), bool> = HashMap::new();
    for (index, delta) in deltas.iter().enumerate() {
        let (&a, &b, adding) = match delta {
            GraphDelta::AddVertex { label } => {
                new_labels.push(*label);
                continue;
            }
            GraphDelta::AddEdge { a, b } => (a, b, true),
            GraphDelta::RemoveEdge { a, b } => (a, b, false),
        };
        if a == b {
            return Err(DeltaError::SelfLoop { vertex: a, index });
        }
        let current_n = n0 + new_labels.len();
        for v in [a, b] {
            if (v as usize) >= current_n {
                return Err(DeltaError::UnknownVertex {
                    vertex: v,
                    vertex_count: current_n,
                    index,
                });
            }
        }
        let key = if a < b { (a, b) } else { (b, a) };
        let present = overlay
            .get(&key)
            .copied()
            .unwrap_or_else(|| (key.1 as usize) < n0 && graph.has_edge(key.0, key.1));
        match (adding, present) {
            (true, true) => {
                return Err(DeltaError::DuplicateEdge {
                    a: key.0,
                    b: key.1,
                    index,
                })
            }
            (false, false) => {
                return Err(DeltaError::MissingEdge {
                    a: key.0,
                    b: key.1,
                    index,
                })
            }
            _ => {
                overlay.insert(key, adding);
            }
        }
    }
    // Net changes only: an edge inserted then deleted (or vice versa) cancels out.
    let mut inserted = Vec::new();
    let mut removed = Vec::new();
    for (&(a, b), &present) in &overlay {
        let base = (b as usize) < n0 && graph.has_edge(a, b);
        if present && !base {
            inserted.push((a, b));
        } else if !present && base {
            removed.push((a, b));
        }
    }
    inserted.sort_unstable();
    removed.sort_unstable();
    Ok(ValidatedBatch {
        new_labels,
        inserted,
        removed,
    })
}

/// Sorted per-vertex change lists derived from the net inserted/removed edges.
struct AdjacencyChanges {
    /// For each touched vertex: sorted neighbors to add / to drop.
    add: HashMap<VertexId, Vec<VertexId>>,
    del: HashMap<VertexId, Vec<VertexId>>,
    /// Every vertex whose adjacency (and hence signature) changes.
    touched: Vec<bool>,
}

impl AdjacencyChanges {
    fn new(batch: &ValidatedBatch, new_n: usize) -> Self {
        let mut add: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut del: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut touched = vec![false; new_n];
        for &(a, b) in &batch.inserted {
            add.entry(a).or_default().push(b);
            add.entry(b).or_default().push(a);
            touched[a as usize] = true;
            touched[b as usize] = true;
        }
        for &(a, b) in &batch.removed {
            del.entry(a).or_default().push(b);
            del.entry(b).or_default().push(a);
            touched[a as usize] = true;
            touched[b as usize] = true;
        }
        for list in add.values_mut().chain(del.values_mut()) {
            list.sort_unstable();
        }
        AdjacencyChanges { add, del, touched }
    }
}

static EMPTY: [VertexId; 0] = [];

impl AdjacencyChanges {
    fn additions(&self, v: VertexId) -> &[VertexId] {
        self.add.get(&v).map_or(&EMPTY[..], Vec::as_slice)
    }

    fn deletions(&self, v: VertexId) -> &[VertexId] {
        self.del.get(&v).map_or(&EMPTY[..], Vec::as_slice)
    }
}

/// Merges one vertex's old sorted adjacency with its sorted add/del lists into
/// `out`. Additions are disjoint from the old list and deletions are a subset of
/// it (both validated), so the merge stays sorted.
fn merge_adjacency(old: &[VertexId], add: &[VertexId], del: &[VertexId], out: &mut Vec<VertexId>) {
    let mut ai = 0usize;
    let mut di = 0usize;
    for &w in old {
        while ai < add.len() && add[ai] < w {
            out.push(add[ai]);
            ai += 1;
        }
        if di < del.len() && del[di] == w {
            di += 1;
            continue;
        }
        out.push(w);
    }
    out.extend_from_slice(&add[ai..]);
}

impl PreparedData {
    /// Applies a batch of deltas, incrementally maintaining every index — the CSR
    /// adjacency, the label inverted index, the signature arena, and the
    /// max-NLF/degree bounds — instead of rebuilding them from scratch. Returns a
    /// new `PreparedData`; `self` is never mutated, so concurrent queries holding
    /// an `Arc` of the old index keep a consistent view.
    ///
    /// Deltas are validated in order (later deltas see earlier ones); the first
    /// invalid delta aborts the whole batch with a typed [`DeltaError`] and nothing
    /// is applied. The result is exactly equal (`==`) to preparing the mutated
    /// graph cold.
    pub fn apply(&self, deltas: &[GraphDelta]) -> Result<PreparedData, DeltaError> {
        self.apply_with_effects(deltas)
            .map(|(prepared, _)| prepared)
    }

    /// Like [`PreparedData::apply`], additionally reporting the batch's *net*
    /// [`DeltaEffects`] — the seed set for delta-localized continuous matching.
    pub fn apply_with_effects(
        &self,
        deltas: &[GraphDelta],
    ) -> Result<(PreparedData, DeltaEffects), DeltaError> {
        let watch = Stopwatch::started();
        let graph = self.graph();
        let n0 = graph.vertex_count();
        let batch = validate(graph, deltas)?;
        let new_n = n0 + batch.new_labels.len();
        let changes = AdjacencyChanges::new(&batch, new_n);

        // --- CSR merge pass -------------------------------------------------
        let old_offsets = graph.csr_offsets();
        let old_neighbors = graph.csr_neighbors();
        let added_slots: usize = 2 * batch.inserted.len();
        let removed_slots: usize = 2 * batch.removed.len();
        let mut offsets = Vec::with_capacity(new_n + 1);
        let mut neighbors = Vec::with_capacity(
            old_neighbors.len() + added_slots - removed_slots.min(old_neighbors.len()),
        );
        offsets.push(0usize);
        let mut max_degree = 0usize;
        for v in 0..new_n as VertexId {
            if (v as usize) < n0 && !changes.touched[v as usize] {
                let lo = old_offsets[v as usize];
                let hi = old_offsets[v as usize + 1];
                neighbors.extend_from_slice(&old_neighbors[lo..hi]);
            } else {
                let old = if (v as usize) < n0 {
                    &old_neighbors[old_offsets[v as usize]..old_offsets[v as usize + 1]]
                } else {
                    &[]
                };
                merge_adjacency(
                    old,
                    changes.additions(v),
                    changes.deletions(v),
                    &mut neighbors,
                );
            }
            let degree = neighbors.len() - offsets[offsets.len() - 1];
            max_degree = max_degree.max(degree);
            offsets.push(neighbors.len());
        }
        let mut labels = Vec::with_capacity(new_n);
        labels.extend_from_slice(graph.labels());
        labels.extend_from_slice(&batch.new_labels);
        let edge_count = graph.edge_count() + batch.inserted.len() - batch.removed.len();
        // `from_csr` rebuilds the label inverted index with one counting sort.
        let new_graph = Graph::from_csr(offsets, neighbors, labels, edge_count);

        // --- Signature-arena merge pass ------------------------------------
        let label_count = new_graph.label_count();
        let (old_sig_offsets, old_sig_labels, old_sig_counts, _old_max_nlf) = self.sig_parts();
        let mut sig_offsets = Vec::with_capacity(new_n + 1);
        let mut sig_labels = Vec::with_capacity(old_sig_labels.len() + added_slots);
        let mut sig_counts = Vec::with_capacity(old_sig_counts.len() + added_slots);
        let mut max_nlf = vec![0u32; label_count];
        // Dense per-label scratch for recomputed vertices, reset via `scratch_touched`.
        let mut counts = vec![0u32; label_count];
        let mut scratch_touched: Vec<Label> = Vec::new();
        sig_offsets.push(0u32);
        for v in 0..new_n as VertexId {
            if (v as usize) < n0 && !changes.touched[v as usize] {
                let lo = old_sig_offsets[v as usize] as usize;
                let hi = old_sig_offsets[v as usize + 1] as usize;
                for i in lo..hi {
                    let l = old_sig_labels[i];
                    let c = old_sig_counts[i];
                    sig_labels.push(l);
                    sig_counts.push(c);
                    max_nlf[l as usize] = max_nlf[l as usize].max(c);
                }
            } else {
                for &w in new_graph.neighbors(v) {
                    let l = new_graph.label(w);
                    if counts[l as usize] == 0 {
                        scratch_touched.push(l);
                    }
                    counts[l as usize] += 1;
                }
                scratch_touched.sort_unstable();
                for &l in &scratch_touched {
                    let c = counts[l as usize];
                    sig_labels.push(l);
                    sig_counts.push(c);
                    max_nlf[l as usize] = max_nlf[l as usize].max(c);
                    counts[l as usize] = 0;
                }
                scratch_touched.clear();
            }
            let offset =
                u32::try_from(sig_labels.len()).map_err(|_| DeltaError::IndexOverflow {
                    entries: sig_labels.len(),
                })?;
            sig_offsets.push(offset);
        }

        let prepared = PreparedData::from_parts(
            new_graph,
            sig_offsets,
            sig_labels,
            sig_counts,
            max_nlf,
            max_degree,
            watch.elapsed(),
        );
        let effects = DeltaEffects {
            first_new_vertex: n0 as VertexId,
            added_vertices: batch.new_labels.len(),
            inserted_edges: batch.inserted,
            removed_edges: batch.removed,
        };
        Ok((prepared, effects))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::fixtures;

    fn rebuild(prepared: &PreparedData) -> PreparedData {
        let g = prepared.graph();
        let edges: Vec<_> = g.edges().collect();
        PreparedData::new(graph_from_edges(g.labels(), &edges))
    }

    #[test]
    fn apply_equals_cold_rebuild() {
        let (_q, data) = fixtures::paper_example();
        let base = PreparedData::new(data);
        let deltas = [
            GraphDelta::AddVertex { label: 1 },
            GraphDelta::AddEdge {
                a: 0,
                b: base.graph().vertex_count() as VertexId,
            },
            GraphDelta::RemoveEdge { a: 0, b: 1 },
        ];
        let next = base.apply(&deltas).unwrap();
        assert_eq!(next, rebuild(&next));
    }

    #[test]
    fn effects_report_net_changes() {
        let base = PreparedData::new(graph_from_edges(&[0, 1], &[(0, 1)]));
        let (next, effects) = base
            .apply_with_effects(&[
                GraphDelta::AddVertex { label: 2 },
                GraphDelta::AddEdge { a: 1, b: 2 },
                GraphDelta::RemoveEdge { a: 1, b: 2 },
                GraphDelta::AddEdge { a: 0, b: 2 },
                GraphDelta::RemoveEdge { a: 0, b: 1 },
                GraphDelta::AddEdge { a: 0, b: 1 },
            ])
            .unwrap();
        // (1,2) cancelled out; (0,1) removed then re-added cancels too.
        assert_eq!(effects.inserted_edges, vec![(0, 2)]);
        assert!(effects.removed_edges.is_empty());
        assert_eq!(effects.first_new_vertex, 2);
        assert_eq!(effects.added_vertices, 1);
        assert_eq!(effects.new_vertices().collect::<Vec<_>>(), vec![2]);
        assert!(!effects.is_noop());
        assert_eq!(next, rebuild(&next));
    }

    #[test]
    fn empty_batch_is_a_noop_clone() {
        let (_q, data) = fixtures::paper_example();
        let base = PreparedData::new(data);
        let (next, effects) = base.apply_with_effects(&[]).unwrap();
        assert!(effects.is_noop());
        assert_eq!(next, base);
    }

    #[test]
    fn errors_name_the_offending_delta() {
        let base = PreparedData::new(graph_from_edges(&[0, 1, 0], &[(0, 1)]));
        let err = base
            .apply(&[
                GraphDelta::AddEdge { a: 1, b: 2 },
                GraphDelta::AddEdge { a: 3, b: 3 },
            ])
            .unwrap_err();
        assert_eq!(
            err,
            DeltaError::SelfLoop {
                vertex: 3,
                index: 1
            }
        );
        assert!(format!("{err}").contains("delta 1"));
    }

    #[test]
    fn in_batch_vertex_references_are_valid() {
        let base = PreparedData::new(graph_from_edges(&[0], &[]));
        // Vertex 1 exists only after the AddVertex delta.
        let err = base
            .apply(&[GraphDelta::AddEdge { a: 0, b: 1 }])
            .unwrap_err();
        assert!(matches!(err, DeltaError::UnknownVertex { vertex: 1, .. }));
        let ok = base
            .apply(&[
                GraphDelta::AddVertex { label: 5 },
                GraphDelta::AddEdge { a: 0, b: 1 },
            ])
            .unwrap();
        assert_eq!(ok.graph().edge_count(), 1);
        assert_eq!(ok.graph().label(1), 5);
        assert_eq!(ok, rebuild(&ok));
    }
}
