//! Descriptive statistics for graphs, used by the workload catalog and by
//! `EXPERIMENTS.md` to report the generated datasets in the same terms the paper uses
//! (vertex/edge/label counts, degree distribution shape).

use crate::graph::Graph;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Number of distinct labels actually used.
    pub labels_used: usize,
    /// Average degree (2|E|/|V|).
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated_vertices: usize,
    /// Number of triangles.
    pub triangles: usize,
}

impl GraphStats {
    /// Computes statistics for `g`. Triangle counting is O(Σ deg²); avoid on huge
    /// graphs unless needed (pass `count_triangles = false` to skip it).
    pub fn compute(g: &Graph, count_triangles: bool) -> Self {
        let labels_used = {
            let mut seen = vec![false; g.label_count().max(1)];
            for &l in g.labels() {
                seen[l as usize] = true;
            }
            seen.iter().filter(|&&b| b).count()
        };
        GraphStats {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            labels_used,
            average_degree: g.average_degree(),
            max_degree: g.max_degree(),
            isolated_vertices: g.vertices().filter(|&v| g.degree(v) == 0).count(),
            triangles: if count_triangles {
                crate::algo::triangle_count(g)
            } else {
                0
            },
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} labels={} avg_deg={:.2} max_deg={}",
            self.vertices, self.edges, self.labels_used, self.average_degree, self.max_degree
        )
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Label histogram: `hist[l]` = number of vertices with label `l`.
pub fn label_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.label_count()];
    for &l in g.labels() {
        hist[l as usize] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn stats_of_triangle_plus_isolated() {
        let g = graph_from_edges(&[0, 0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let s = GraphStats::compute(&g, true);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.labels_used, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated_vertices, 1);
        assert_eq!(s.triangles, 1);
        assert!((s.average_degree - 1.5).abs() < 1e-9);
        let text = format!("{s}");
        assert!(text.contains("|V|=4"));
    }

    #[test]
    fn stats_can_skip_triangles() {
        let g = graph_from_edges(&[0; 3], &[(0, 1), (1, 2), (2, 0)]);
        let s = GraphStats::compute(&g, false);
        assert_eq!(s.triangles, 0);
    }

    #[test]
    fn histograms() {
        let g = graph_from_edges(&[0, 0, 1, 1], &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(degree_histogram(&g), vec![0, 3, 0, 1]);
        assert_eq!(label_histogram(&g), vec![2, 2]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new().build();
        let s = GraphStats::compute(&g, true);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.labels_used, 0);
        assert_eq!(degree_histogram(&g), vec![0]);
    }
}
