//! Small, well-understood graphs used throughout the workspace's tests, examples, and
//! documentation. Exposed as a normal (non-`cfg(test)`) module so that downstream
//! crates can share them.

use crate::builder::graph_from_edges;
use crate::graph::Graph;

/// Reconstruction of the running example of the GuP paper (Fig. 1).
///
/// Returns `(query, data)`:
///
/// * **Query** `Q`: the 5-cycle `u0(A) – u1(B) – u2(C) – u3(D) – u4(A) – u0`, with
///   labels A=0, B=1, C=2, D=3.
/// * **Data** `G`: 14 vertices. `v0, v1, v13` carry label A, `v2..v4` label B,
///   `v5..v8` label C, `v9..v12` label D. The edges are chosen so that the candidate
///   structure discussed in the paper holds; in particular `v13` passes LDF for `u0`
///   (degree ≥ 2) but fails NLF because it has no label-B neighbor, and the full
///   embedding `{(u0,v1),(u1,v4),(u2,v7),(u3,v10),(u4,v0)}` exists.
pub fn paper_example() -> (Graph, Graph) {
    let query = graph_from_edges(&[0, 1, 2, 3, 0], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let labels = [0, 0, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 0];
    let edges = [
        // A–A edge (needed by the u4–u0 query edge)
        (0, 1),
        // A–B edges
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 4),
        // B–C edges
        (2, 6),
        (3, 5),
        (3, 7),
        (3, 8),
        (4, 7),
        // C–D edges
        (5, 9),
        (6, 11),
        (7, 10),
        (8, 11),
        (8, 12),
        // D–A edges
        (9, 0),
        (10, 0),
        (11, 1),
        (12, 1),
        (10, 13),
        (9, 13),
    ];
    let data = graph_from_edges(&labels, &edges);
    (query, data)
}

/// A labeled triangle query (labels 0, 1, 0).
pub fn triangle_query() -> Graph {
    graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (2, 0)])
}

/// A small data graph containing exactly one triangle matching [`triangle_query`]:
/// a labeled square `0-1-2-3` with the diagonal `0-2`, plus an isolated label-1 vertex.
pub fn square_with_diagonal() -> Graph {
    graph_from_edges(&[0, 1, 0, 1, 1], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
}

/// A 4-clique on a single label, handy as a dense query.
pub fn clique4(label: crate::types::Label) -> Graph {
    graph_from_edges(
        &[label; 4],
        &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
    )
}

/// A path query `0-1-2-...-(n-1)` on a single label.
pub fn path(n: usize, label: crate::types::Label) -> Graph {
    let labels = vec![label; n];
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    graph_from_edges(&labels, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;

    #[test]
    fn paper_example_shape() {
        let (q, d) = paper_example();
        assert_eq!(q.vertex_count(), 5);
        assert_eq!(q.edge_count(), 5);
        assert_eq!(d.vertex_count(), 14);
        assert!(is_connected(&q));
        // The embedding named in the paper's introduction must exist:
        // M = {(u0,v1),(u1,v4),(u2,v7),(u3,v10),(u4,v0)}.
        let m = [1u32, 4, 7, 10, 0];
        for (a, b) in q.edges() {
            assert!(
                d.has_edge(m[a as usize], m[b as usize]),
                "embedding edge ({a},{b}) missing in data"
            );
        }
        for (u, &v) in m.iter().enumerate() {
            assert_eq!(q.label(u as u32), d.label(v));
        }
    }

    #[test]
    fn fixture_shapes() {
        assert_eq!(triangle_query().edge_count(), 3);
        assert_eq!(square_with_diagonal().vertex_count(), 5);
        assert_eq!(clique4(2).edge_count(), 6);
        let p = path(5, 1);
        assert_eq!(p.vertex_count(), 5);
        assert_eq!(p.edge_count(), 4);
        assert_eq!(path(1, 0).edge_count(), 0);
    }
}
