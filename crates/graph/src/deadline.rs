//! Work-bounded deadline sampling shared by the long loops of the pipeline.
//!
//! Several phases of the system run loops whose total work is proportional to the
//! data graph, not to the query: the candidate-space filter/refinement passes, the
//! candidate-edge materialization, and the brute-force oracle's enumeration. A
//! per-query time budget must be observable *inside* those loops — checking the
//! clock only at phase boundaries lets a tight budget be blown before the phase
//! ends (the "filter-pass deadline hole").
//!
//! Calling `Instant::now()` on every iteration would dominate the loops, so
//! [`DeadlineSampler`] samples the clock once every [`DEADLINE_CHECK_INTERVAL`]
//! units of work — the same cadence the brute-force oracle has used since its own
//! deadline hole was closed. The interval is counted in small, data-independent
//! work units (one candidate examined, one adjacency list scanned), so the
//! overshoot past the deadline is bounded by a constant amount of work rather
//! than by the input size.

use std::time::{Duration, Instant};

/// The deadline is sampled once every this many [`DeadlineSampler::tick`] calls.
/// 1024 keeps the `Instant::now()` overhead well under 1% for work units of a few
/// dozen nanoseconds while bounding deadline overshoot to microseconds.
pub const DEADLINE_CHECK_INTERVAL: u64 = 1024;

/// A typed "the time budget ran out" outcome, returned by deadline-aware
/// construction phases (e.g. the candidate-space filter pass) instead of a
/// silently truncated result. Callers map it to their own timeout reporting
/// (the session layer turns it into `SearchStats::hit_time_limit`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the time budget expired before the phase completed")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// Samples an optional absolute deadline every [`DEADLINE_CHECK_INTERVAL`] work
/// units. With no deadline set, [`DeadlineSampler::tick`] is a single branch on a
/// `None` and never reads the clock.
#[derive(Clone, Debug)]
pub struct DeadlineSampler {
    deadline: Option<Instant>,
    steps: u64,
    expired: bool,
}

impl DeadlineSampler {
    /// A sampler for `deadline` (`None` = unlimited, every check is a no-op).
    /// An already-expired deadline is reported by the first [`tick`] / [`check`]
    /// rather than eagerly, so constructing a sampler never reads the clock.
    ///
    /// [`tick`]: DeadlineSampler::tick
    /// [`check`]: DeadlineSampler::check
    pub fn new(deadline: Option<Instant>) -> Self {
        DeadlineSampler {
            deadline,
            steps: 0,
            expired: false,
        }
    }

    /// A sampler for a relative budget starting now (`None` = unlimited). The
    /// single blessed relative→absolute conversion for engines that receive a
    /// `time_limit` rather than a hoisted deadline.
    pub fn starting_now(budget: Option<Duration>) -> Self {
        DeadlineSampler::new(budget.map(deadline_after))
    }

    /// Counts one unit of work and, every [`DEADLINE_CHECK_INTERVAL`] units,
    /// samples the clock. Returns `Err(DeadlineExceeded)` once the deadline has
    /// passed (and keeps returning it — expiry is sticky).
    #[inline]
    pub fn tick(&mut self) -> Result<(), DeadlineExceeded> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        if self.expired {
            return Err(DeadlineExceeded);
        }
        self.steps += 1;
        if self.steps % DEADLINE_CHECK_INTERVAL == 0 && Instant::now() >= deadline {
            self.expired = true;
            return Err(DeadlineExceeded);
        }
        Ok(())
    }

    /// Samples the clock immediately (used at phase boundaries, where one extra
    /// `Instant::now()` is negligible and catching an expired budget early avoids
    /// starting a whole phase).
    pub fn check(&mut self) -> Result<(), DeadlineExceeded> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        if self.expired || Instant::now() >= deadline {
            self.expired = true;
            return Err(DeadlineExceeded);
        }
        Ok(())
    }

    /// The deadline being sampled, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// `true` once a [`tick`] or [`check`] has observed the deadline pass
    /// (expiry is sticky). Never reads the clock.
    ///
    /// [`tick`]: DeadlineSampler::tick
    /// [`check`]: DeadlineSampler::check
    pub fn expired(&self) -> bool {
        self.expired
    }
}

/// The absolute deadline of a budget starting now. Alongside the sampler, this
/// is the only place the workspace converts a relative budget to a wall-clock
/// deadline — admission control, batch hoisting, and the session dispatcher all
/// route through here (the `clock_discipline` lint keeps it that way).
pub fn deadline_after(budget: Duration) -> Instant {
    Instant::now() + budget
}

/// `true` once `deadline` has passed. For one-shot boundary checks (fail-fast
/// before starting a phase); loops should use a [`DeadlineSampler`] so the
/// clock is read at a work-bounded cadence instead of per iteration.
pub fn deadline_passed(deadline: Instant) -> bool {
    Instant::now() >= deadline
}

/// The budget remaining until `deadline` (zero once passed). Used to translate
/// a hoisted absolute deadline back into the relative form some engine APIs
/// take.
pub fn remaining_until(deadline: Instant) -> Duration {
    deadline.saturating_duration_since(Instant::now())
}

/// A started wall-clock stopwatch for *measurement* (latency reporting, prep
/// timing, uptime) as opposed to *enforcement*. Owning the only raw
/// measurement reads keeps every other module free of direct clock calls, so
/// the clock-discipline lint can tell the two uses apart by construction.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn started() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The instant the stopwatch was started (for deriving deadlines relative
    /// to a request's arrival).
    pub fn started_at(&self) -> Instant {
        self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_deadline_never_expires() {
        let mut s = DeadlineSampler::new(None);
        for _ in 0..(3 * DEADLINE_CHECK_INTERVAL) {
            assert!(s.tick().is_ok());
        }
        assert!(s.check().is_ok());
    }

    #[test]
    fn expired_deadline_fires_within_one_interval() {
        let mut s = DeadlineSampler::new(Some(Instant::now() - Duration::from_millis(1)));
        let mut fired_at = None;
        for i in 0..=DEADLINE_CHECK_INTERVAL {
            if s.tick().is_err() {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("expired deadline must fire within one interval");
        assert!(fired_at < DEADLINE_CHECK_INTERVAL);
        // Expiry is sticky.
        assert_eq!(s.tick(), Err(DeadlineExceeded));
        assert_eq!(s.check(), Err(DeadlineExceeded));
    }

    #[test]
    fn check_fires_immediately_on_expired_deadline() {
        let mut s = DeadlineSampler::new(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(s.check(), Err(DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let mut s = DeadlineSampler::new(Some(Instant::now() + Duration::from_secs(3600)));
        for _ in 0..(2 * DEADLINE_CHECK_INTERVAL) {
            assert!(s.tick().is_ok());
        }
        assert!(s.check().is_ok());
    }

    #[test]
    fn display_is_descriptive() {
        assert!(format!("{DeadlineExceeded}").contains("time budget"));
    }
}
