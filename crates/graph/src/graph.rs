//! Immutable CSR graph with a label index.

use crate::types::{Label, VertexId};

/// A vertex-labeled simple undirected graph in compressed sparse row form.
///
/// Construction goes through [`crate::GraphBuilder`] (or the loaders/generators), which
/// guarantee the invariants the matcher relies on:
///
/// * adjacency lists are sorted and free of duplicates and self loops,
/// * `offsets.len() == vertex_count + 1`, and
/// * the label index covers every vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    labels: Vec<Label>,
    edge_count: usize,
    /// Vertices grouped by label: `label_offsets[l]..label_offsets[l+1]` indexes into
    /// `vertices_by_label`.
    label_offsets: Vec<usize>,
    vertices_by_label: Vec<VertexId>,
    label_count: usize,
}

impl Graph {
    /// Assembles a graph from prebuilt CSR arrays. Intended for [`crate::GraphBuilder`]
    /// and the loaders; external users should prefer the builder.
    pub(crate) fn from_csr(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        labels: Vec<Label>,
        edge_count: usize,
    ) -> Self {
        debug_assert_eq!(offsets.len(), labels.len() + 1);
        let label_count = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut counts = vec![0usize; label_count];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        let mut label_offsets = Vec::with_capacity(label_count + 1);
        let mut acc = 0usize;
        label_offsets.push(0);
        for c in &counts {
            acc += c;
            label_offsets.push(acc);
        }
        let mut vertices_by_label = vec![0 as VertexId; labels.len()];
        let mut cursor = label_offsets[..label_count].to_vec();
        for (v, &l) in labels.iter().enumerate() {
            vertices_by_label[cursor[l as usize]] = v as VertexId;
            cursor[l as usize] += 1;
        }
        Graph {
            offsets,
            neighbors,
            labels,
            edge_count,
            label_offsets,
            vertices_by_label,
            label_count,
        }
    }

    /// Raw CSR offsets array (`vertex_count + 1` entries). For the on-disk index
    /// writer in [`crate::index_io`]; external users should go through
    /// [`Graph::neighbors`].
    #[inline]
    pub(crate) fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw flat adjacency array (every vertex's sorted neighbor list,
    /// concatenated). For the on-disk index writer in [`crate::index_io`].
    #[inline]
    pub(crate) fn csr_neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of distinct labels (labels are assumed dense in `0..label_count`).
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted adjacency list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Adjacency test via binary search on the sorted neighbor list: O(log deg).
    #[inline]
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        // Search from the lower-degree endpoint.
        let (s, t) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(s).binary_search(&t).is_ok()
    }

    /// Iterator over all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// Iterator over all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&w| v < w)
                .map(move |w| (v, w))
        })
    }

    /// Vertices carrying label `l` (sorted by id). Empty slice for unknown labels.
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        let l = l as usize;
        if l >= self.label_count {
            return &[];
        }
        &self.vertices_by_label[self.label_offsets[l]..self.label_offsets[l + 1]]
    }

    /// Number of vertices carrying label `l`.
    #[inline]
    pub fn label_frequency(&self, l: Label) -> usize {
        self.vertices_with_label(l).len()
    }

    /// Average degree `2|E| / |V|` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.vertex_count() as f64
        }
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of neighbors of `v` carrying label `l`.
    pub fn labeled_degree(&self, v: VertexId, l: Label) -> usize {
        self.neighbors(v)
            .iter()
            .filter(|&&w| self.label(w) == l)
            .count()
    }

    /// Neighborhood label frequency of `v`: for each label, how many neighbors of `v`
    /// carry it. Returned as a dense vector of length `label_count`.
    pub fn neighborhood_label_frequency(&self, v: VertexId) -> Vec<u32> {
        let mut nlf = vec![0u32; self.label_count];
        for &w in self.neighbors(v) {
            nlf[self.label(w) as usize] += 1;
        }
        nlf
    }

    /// Approximate heap footprint of the graph in bytes (used by the Table-3 memory
    /// experiment).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<VertexId>()
            + self.labels.capacity() * std::mem::size_of::<Label>()
            + self.label_offsets.capacity() * std::mem::size_of::<usize>()
            + self.vertices_by_label.capacity() * std::mem::size_of::<VertexId>()
    }

    /// Extracts the subgraph induced by `vertices` (in the given order: induced vertex
    /// `i` corresponds to `vertices[i]`). Duplicate ids are ignored after the first
    /// occurrence.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> Graph {
        let mut builder = crate::GraphBuilder::with_capacity(vertices.len(), vertices.len() * 2);
        let mut index = std::collections::HashMap::with_capacity(vertices.len());
        let mut kept: Vec<VertexId> = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if index.contains_key(&v) {
                continue;
            }
            let new_id = builder.add_vertex(self.label(v));
            index.insert(v, new_id);
            kept.push(v);
        }
        for &v in &kept {
            for &w in self.neighbors(v) {
                if let Some(&nw) = index.get(&w) {
                    let nv = index[&v];
                    if nv < nw {
                        builder.add_edge(nv, nw);
                    }
                }
            }
        }
        builder.build()
    }

    /// Relabels vertices according to `order`, where `order[i]` is the *old* id that
    /// becomes new id `i`. `order` must be a permutation of the vertex ids.
    pub fn permuted(&self, order: &[VertexId]) -> Graph {
        assert_eq!(
            order.len(),
            self.vertex_count(),
            "order must be a permutation"
        );
        let mut new_of_old = vec![VertexId::MAX; self.vertex_count()];
        for (new_id, &old) in order.iter().enumerate() {
            assert!(
                new_of_old[old as usize] == VertexId::MAX,
                "order contains duplicate vertex {old}"
            );
            new_of_old[old as usize] = new_id as VertexId;
        }
        let mut b = crate::GraphBuilder::with_capacity(self.vertex_count(), self.edge_count);
        for &old in order {
            b.add_vertex(self.label(old));
        }
        for (a, c) in self.edges() {
            b.add_edge(new_of_old[a as usize], new_of_old[c as usize]);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::graph_from_edges;

    fn path4() -> crate::Graph {
        graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label_count(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn label_index() {
        let g = path4();
        assert_eq!(g.vertices_with_label(0), &[0, 2]);
        assert_eq!(g.vertices_with_label(1), &[1, 3]);
        assert_eq!(g.vertices_with_label(9), &[] as &[u32]);
        assert_eq!(g.label_frequency(0), 2);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = path4();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn labeled_degree_and_nlf() {
        let g = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.labeled_degree(0, 1), 2);
        assert_eq!(g.labeled_degree(0, 2), 1);
        assert_eq!(g.labeled_degree(0, 0), 0);
        assert_eq!(g.neighborhood_label_frequency(0), vec![0, 2, 1]);
        assert_eq!(g.neighborhood_label_frequency(1), vec![1, 0, 0]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Triangle 0-1-2 plus pendant 3.
        let g = graph_from_edges(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let sub = g.induced_subgraph(&[2, 0, 1]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        // New id 0 is old 2 (label 2).
        assert_eq!(sub.label(0), 2);
        assert_eq!(sub.label(1), 0);
        let pendant = g.induced_subgraph(&[0, 3]);
        assert_eq!(pendant.edge_count(), 0);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = graph_from_edges(&[0, 0], &[(0, 1)]);
        let sub = g.induced_subgraph(&[0, 1, 0, 1]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn permuted_preserves_structure() {
        let g = path4();
        // Reverse the vertex order.
        let p = g.permuted(&[3, 2, 1, 0]);
        assert_eq!(p.vertex_count(), 4);
        assert_eq!(p.edge_count(), 3);
        // Old edge (0,1) becomes (3,2); old labels move with the vertices.
        assert!(p.has_edge(3, 2));
        assert_eq!(p.label(3), 0);
        assert_eq!(p.label(0), 1);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn permuted_rejects_wrong_length() {
        let g = path4();
        let _ = g.permuted(&[0, 1, 2]);
    }

    #[test]
    fn heap_bytes_nonzero_for_nonempty_graph() {
        let g = path4();
        assert!(g.heap_bytes() > 0);
    }
}
