//! Streaming output sinks for embedding enumeration.
//!
//! Every matcher in the workspace — GuP's sequential and work-stealing engines as
//! well as all the baseline engines — pushes each embedding it finds into an
//! [`EmbeddingSink`] instead of unconditionally materializing a `Vec` of them. The
//! sink decides, per embedding, whether the search should continue
//! ([`SinkControl::Continue`]) or stop ([`SinkControl::Stop`]), which lets the output
//! demand drive how much work the search performs: counting allocates nothing,
//! `first k` stops the search after the `k`-th embedding, and full collection is just
//! one particular sink.
//!
//! The module lives in `gup_graph` (the substrate every engine already depends on) so
//! that GuP and the baselines share one output vocabulary; `gup` re-exports it.
//!
//! Embeddings are reported as slices borrowed from the engine's internal assignment
//! state: a sink that wants to keep one must copy it (`emb.to_vec()`), and a sink
//! that only counts touches nothing and costs nothing. Engine-level sinks
//! (`SearchEngine`, `run_parallel_with_sink`) receive embeddings over the *matching
//! order* vertex numbering; matcher-level sinks (`GupMatcher::run_with_sink` and the
//! baseline `run_with_sink` methods) receive them over the *original* query-vertex
//! numbering.
//!
//! # Examples
//!
//! Counting without materializing:
//!
//! ```
//! use gup_graph::sink::{CountOnly, EmbeddingSink, SinkControl};
//!
//! let mut sink = CountOnly::new();
//! assert_eq!(sink.report(&[0, 1, 2]), SinkControl::Continue);
//! assert_eq!(sink.report(&[2, 1, 0]), SinkControl::Continue);
//! assert_eq!(sink.count(), 2);
//! // Counting sinks tell drivers they never look at the vertices, so drivers can
//! // skip embedding translation entirely.
//! assert!(!sink.wants_embeddings());
//! ```
//!
//! Stopping after the first `k` matches:
//!
//! ```
//! use gup_graph::sink::{EmbeddingSink, FirstK, SinkControl};
//!
//! let mut sink = FirstK::new(2);
//! assert_eq!(sink.capacity(), Some(2));
//! assert_eq!(sink.report(&[0, 1]), SinkControl::Continue);
//! assert_eq!(sink.report(&[1, 0]), SinkControl::Stop); // full: the search can quit
//! assert_eq!(sink.report(&[2, 3]), SinkControl::Stop); // extra reports are ignored
//! assert_eq!(sink.into_embeddings(), vec![vec![0, 1], vec![1, 0]]);
//! ```
//!
//! Arbitrary streaming logic without buffering:
//!
//! ```
//! use gup_graph::sink::{CallbackSink, EmbeddingSink, SinkControl};
//!
//! let mut seen_v7 = false;
//! let mut sink = CallbackSink::new(|emb: &[u32]| {
//!     if emb.contains(&7) {
//!         seen_v7 = true;
//!         SinkControl::Stop // found what we were looking for
//!     } else {
//!         SinkControl::Continue
//!     }
//! });
//! sink.report(&[1, 2]);
//! assert_eq!(sink.report(&[7, 2]), SinkControl::Stop);
//! assert_eq!(sink.reported(), 2);
//! drop(sink);
//! assert!(seen_v7);
//! ```

use crate::types::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tells the search whether to keep going after an embedding was reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkControl {
    /// Keep searching.
    Continue,
    /// The sink needs nothing further; the search should terminate.
    Stop,
}

/// A consumer of embeddings, driven by the search as matches are found.
///
/// Implementations decide what to retain (nothing, the first `k`, everything, a
/// running aggregate, …) and when the search may stop early. See the
/// [module docs](self) for the built-in sinks and examples.
pub trait EmbeddingSink {
    /// Called once per embedding found. `embedding[u]` is the data vertex assigned to
    /// query vertex `u`; the slice is only valid for the duration of the call — copy
    /// it if it must outlive the report.
    ///
    /// A [`SinkControl::Stop`] is honored immediately by every sequential engine. A
    /// parallel driver honors it live when the sink declares it may happen — via
    /// [`EmbeddingSink::capacity`] (folded into the shared embedding-limit
    /// reservation) or [`EmbeddingSink::may_stop`] (reports are then serialized
    /// through the caller's sink as they are found); otherwise workers buffer
    /// locally and the sink sees the reports after the run, in worker-index order.
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl;

    /// Whether this sink inspects embedding contents. Counting sinks return `false`,
    /// which lets drivers skip materialization and id-translation work entirely; the
    /// slice passed to [`EmbeddingSink::report`] is then unspecified (but still a
    /// valid slice).
    fn wants_embeddings(&self) -> bool {
        true
    }

    /// Upper bound on the number of embeddings this sink will accept (`None` =
    /// unbounded). Drivers fold this into the embedding-limit reservation so that
    /// parallel workers stop producing once the sink is satisfied.
    fn capacity(&self) -> Option<u64> {
        None
    }

    /// Whether [`EmbeddingSink::report`] may return [`SinkControl::Stop`] *before*
    /// [`EmbeddingSink::capacity`] is exhausted — streaming sinks that decide on
    /// the fly, like [`CallbackSink`]. Parallel drivers run such sinks on the
    /// sequential engine so every report reaches the sink live and the stop takes
    /// effect immediately, with nothing buffered. Sinks that stop only when their
    /// capacity fills (like [`FirstK`]) and pure accumulators keep the default
    /// `false`.
    fn may_stop(&self) -> bool {
        false
    }

    /// Bulk equivalent of `n` [`EmbeddingSink::report`] calls with unspecified
    /// slices — only meaningful for sinks whose
    /// [`wants_embeddings`](EmbeddingSink::wants_embeddings) is `false`; parallel
    /// drivers use it to hand a counting sink the whole merged total at once.
    /// Counting sinks override it to O(1).
    fn report_count(&mut self, n: u64) -> SinkControl {
        for _ in 0..n {
            if self.report(&[]) == SinkControl::Stop {
                return SinkControl::Stop;
            }
        }
        SinkControl::Continue
    }
}

/// Counts embeddings without looking at them. Performs no allocation per report.
#[derive(Clone, Debug, Default)]
pub struct CountOnly {
    count: u64,
}

impl CountOnly {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        CountOnly::default()
    }

    /// Number of embeddings reported so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl EmbeddingSink for CountOnly {
    // The whole point of a counting sink is that reporting costs nothing: the
    // report paths are statically pinned allocation-free here and dynamically
    // by the counting-allocator test in `tests/sink_alloc.rs`.
    // gup-lint: region(no_alloc)
    fn report(&mut self, _embedding: &[VertexId]) -> SinkControl {
        self.count += 1;
        SinkControl::Continue
    }

    fn wants_embeddings(&self) -> bool {
        false
    }

    fn report_count(&mut self, n: u64) -> SinkControl {
        self.count += n;
        SinkControl::Continue
    }
    // gup-lint: end_region
}

/// Keeps the first `k` embeddings and stops the search once it has them.
#[derive(Clone, Debug)]
pub struct FirstK {
    k: u64,
    embeddings: Vec<Vec<VertexId>>,
}

impl FirstK {
    /// A sink that retains at most `k` embeddings.
    pub fn new(k: u64) -> Self {
        FirstK {
            k,
            embeddings: Vec::with_capacity(k.min(1024) as usize),
        }
    }

    /// `true` once `k` embeddings have been retained.
    pub fn is_full(&self) -> bool {
        self.embeddings.len() as u64 >= self.k
    }

    /// The retained embeddings (at most `k`).
    pub fn embeddings(&self) -> &[Vec<VertexId>] {
        &self.embeddings
    }

    /// Consumes the sink, yielding the retained embeddings.
    pub fn into_embeddings(self) -> Vec<Vec<VertexId>> {
        self.embeddings
    }
}

impl EmbeddingSink for FirstK {
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl {
        if !self.is_full() {
            self.embeddings.push(embedding.to_vec());
        }
        if self.is_full() {
            SinkControl::Stop
        } else {
            SinkControl::Continue
        }
    }

    fn capacity(&self) -> Option<u64> {
        Some(self.k)
    }
}

/// Collects every reported embedding.
#[derive(Clone, Debug, Default)]
pub struct CollectAll {
    embeddings: Vec<Vec<VertexId>>,
}

impl CollectAll {
    /// An empty collector.
    pub fn new() -> Self {
        CollectAll::default()
    }

    /// Number of embeddings collected so far.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    /// The collected embeddings.
    pub fn embeddings(&self) -> &[Vec<VertexId>] {
        &self.embeddings
    }

    /// Consumes the sink, yielding the collected embeddings.
    pub fn into_embeddings(self) -> Vec<Vec<VertexId>> {
        self.embeddings
    }

    /// Moves the collected embeddings out, leaving the sink empty and reusable.
    pub fn take_embeddings(&mut self) -> Vec<Vec<VertexId>> {
        std::mem::take(&mut self.embeddings)
    }
}

impl EmbeddingSink for CollectAll {
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl {
        self.embeddings.push(embedding.to_vec());
        SinkControl::Continue
    }
}

/// Adapts a closure into a sink: the closure is invoked per embedding and returns
/// the control decision. Nothing is buffered.
#[derive(Debug)]
pub struct CallbackSink<F: FnMut(&[VertexId]) -> SinkControl> {
    callback: F,
    reported: u64,
}

impl<F: FnMut(&[VertexId]) -> SinkControl> CallbackSink<F> {
    /// Wraps `callback` as a sink.
    pub fn new(callback: F) -> Self {
        CallbackSink {
            callback,
            reported: 0,
        }
    }

    /// Number of embeddings the callback has been invoked with.
    pub fn reported(&self) -> u64 {
        self.reported
    }
}

impl<F: FnMut(&[VertexId]) -> SinkControl> EmbeddingSink for CallbackSink<F> {
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl {
        self.reported += 1;
        (self.callback)(embedding)
    }

    fn may_stop(&self) -> bool {
        // The closure decides per report; parallel drivers must stream live so a
        // Stop takes effect during the search.
        true
    }
}

/// Reserves slots under an embedding limit — the single implementation of the
/// "check before record" rule shared by the sequential engines and the parallel
/// driver.
///
/// In *local* mode the caller's own count is checked against the limit. In *shared*
/// mode the reservation holds the one atomic counter of a parallel run and reserves
/// with a check-and-increment `fetch_update`, so concurrent workers can never
/// overshoot the limit and the merged result needs no post-hoc truncation.
///
/// ```
/// use gup_graph::sink::EmbeddingReservation;
///
/// let r = EmbeddingReservation::local(Some(2));
/// assert!(r.try_reserve(0));
/// assert!(r.try_reserve(1));
/// assert!(!r.try_reserve(2)); // limit exhausted
/// assert!(r.exhausted(2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EmbeddingReservation {
    shared: Option<Arc<AtomicU64>>,
    max: Option<u64>,
}

impl EmbeddingReservation {
    /// No limit at all: every reservation succeeds.
    pub fn unlimited() -> Self {
        EmbeddingReservation::default()
    }

    /// A single-consumer reservation: the caller passes its own running count to
    /// [`EmbeddingReservation::try_reserve`].
    pub fn local(max: Option<u64>) -> Self {
        EmbeddingReservation { shared: None, max }
    }

    /// A multi-consumer reservation over one shared counter (parallel runs). All
    /// workers of a run must alias the same `counter`.
    pub fn shared(counter: Arc<AtomicU64>, max: Option<u64>) -> Self {
        EmbeddingReservation {
            shared: Some(counter),
            max,
        }
    }

    /// The active limit, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Tightens the limit to `min(current, cap)` — used to fold a sink's
    /// [`EmbeddingSink::capacity`] into the search limit.
    pub fn cap(&mut self, cap: Option<u64>) {
        self.max = min_limit(self.max, cap);
    }

    /// Attempts to reserve one slot. `local_count` is the caller's count of already
    /// reserved slots (ignored in shared mode, where the atomic counter is
    /// authoritative). Returns `false` when the limit is exhausted; the caller must
    /// then not record the embedding.
    pub fn try_reserve(&self, local_count: u64) -> bool {
        match (&self.shared, self.max) {
            (Some(shared), Some(max)) => shared
                // Relaxed (both orderings): only this one location's
                // modification order matters — the RMW is atomic, so the limit
                // cannot be overshot, and no other memory is published through
                // the counter (embeddings travel through per-worker buffers
                // merged after the workers join).
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |count| {
                    (count < max).then_some(count + 1)
                })
                .is_ok(),
            (Some(shared), None) => {
                // Relaxed: counting only; atomicity of the increment suffices.
                shared.fetch_add(1, Ordering::Relaxed);
                true
            }
            (None, Some(max)) => local_count < max,
            (None, None) => true,
        }
    }

    /// `true` when the limit has been reached (never, without a limit). Cheap enough
    /// to poll from the search recursion.
    pub fn exhausted(&self, local_count: u64) -> bool {
        match (&self.shared, self.max) {
            (_, None) => false,
            // Relaxed: advisory early-exit poll. A stale read only delays the
            // stop by a few recursions; the limit itself is enforced by the
            // try_reserve RMW, which can never overshoot.
            (Some(shared), Some(max)) => shared.load(Ordering::Relaxed) >= max,
            (None, Some(max)) => local_count >= max,
        }
    }
}

/// `min` over optional limits, treating `None` as unbounded.
pub fn min_limit(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_only_counts_and_skips_content() {
        let mut sink = CountOnly::new();
        for _ in 0..5 {
            assert_eq!(sink.report(&[1, 2, 3]), SinkControl::Continue);
        }
        assert_eq!(sink.count(), 5);
        assert!(!sink.wants_embeddings());
        assert_eq!(sink.capacity(), None);
    }

    #[test]
    fn first_k_stops_exactly_at_k() {
        let mut sink = FirstK::new(3);
        assert_eq!(sink.report(&[0]), SinkControl::Continue);
        assert_eq!(sink.report(&[1]), SinkControl::Continue);
        assert_eq!(sink.report(&[2]), SinkControl::Stop);
        // Reports after saturation keep returning Stop and retain nothing.
        assert_eq!(sink.report(&[3]), SinkControl::Stop);
        assert!(sink.is_full());
        assert_eq!(sink.embeddings().len(), 3);
        assert_eq!(sink.into_embeddings(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn first_zero_accepts_nothing() {
        let mut sink = FirstK::new(0);
        assert!(sink.is_full());
        assert_eq!(sink.report(&[9]), SinkControl::Stop);
        assert!(sink.embeddings().is_empty());
    }

    #[test]
    fn collect_all_keeps_everything_in_order() {
        let mut sink = CollectAll::new();
        assert!(sink.is_empty());
        sink.report(&[4, 5]);
        sink.report(&[6, 7]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.embeddings(), &[vec![4, 5], vec![6, 7]]);
        let taken = sink.take_embeddings();
        assert_eq!(taken.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn callback_sink_streams_and_counts() {
        let mut sum = 0u64;
        {
            let mut sink = CallbackSink::new(|emb: &[VertexId]| {
                sum += emb.iter().map(|&v| v as u64).sum::<u64>();
                SinkControl::Continue
            });
            sink.report(&[1, 2]);
            sink.report(&[3]);
            assert_eq!(sink.reported(), 2);
        }
        assert_eq!(sum, 6);
    }

    #[test]
    fn report_count_is_bulk_for_counters_and_replays_for_others() {
        let mut count = CountOnly::new();
        assert_eq!(count.report_count(1_000_000), SinkControl::Continue);
        assert_eq!(count.count(), 1_000_000);
        // The default implementation replays single reports and honors Stop.
        let mut first = FirstK::new(2);
        assert_eq!(first.report_count(5), SinkControl::Stop);
        assert_eq!(first.embeddings().len(), 2);
    }

    #[test]
    fn may_stop_defaults() {
        // Pure accumulators never stop; closure sinks may stop at any report.
        assert!(!CountOnly::new().may_stop());
        assert!(!CollectAll::new().may_stop());
        assert!(!FirstK::new(3).may_stop());
        assert!(CallbackSink::new(|_: &[VertexId]| SinkControl::Continue).may_stop());
    }

    #[test]
    fn local_reservation_enforces_the_limit() {
        let r = EmbeddingReservation::local(Some(2));
        assert!(!r.exhausted(0));
        assert!(r.try_reserve(0));
        assert!(r.try_reserve(1));
        assert!(!r.try_reserve(2));
        assert!(r.exhausted(2));
        let unlimited = EmbeddingReservation::unlimited();
        assert!(unlimited.try_reserve(u64::MAX - 1));
        assert!(!unlimited.exhausted(u64::MAX - 1));
    }

    #[test]
    fn shared_reservation_never_overshoots() {
        let counter = Arc::new(AtomicU64::new(0));
        let r = EmbeddingReservation::shared(Arc::clone(&counter), Some(10));
        let granted: u64 = (0..25).filter(|_| r.try_reserve(0)).count() as u64;
        assert_eq!(granted, 10);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        assert!(r.exhausted(0));
    }

    #[test]
    fn shared_unlimited_reservation_still_counts() {
        let counter = Arc::new(AtomicU64::new(0));
        let r = EmbeddingReservation::shared(Arc::clone(&counter), None);
        assert!(r.try_reserve(0));
        assert!(r.try_reserve(0));
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn capacity_folding_takes_the_minimum() {
        let mut r = EmbeddingReservation::local(Some(100));
        r.cap(Some(7));
        assert_eq!(r.max(), Some(7));
        r.cap(None);
        assert_eq!(r.max(), Some(7));
        let mut open = EmbeddingReservation::unlimited();
        open.cap(Some(3));
        assert_eq!(open.max(), Some(3));
        assert_eq!(min_limit(None, None), None);
        assert_eq!(min_limit(Some(4), Some(9)), Some(4));
    }
}
