//! Incremental construction of [`Graph`]s.
//!
//! The matcher assumes *simple undirected* graphs (no self loops, no parallel edges,
//! Definition 2.2 of the paper). [`GraphBuilder`] enforces both during `build`, so
//! loaders and generators can add edges freely.

use crate::graph::Graph;
use crate::types::{Label, VertexId};

/// Builds a [`Graph`] incrementally.
///
/// ```
/// use gup_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let v0 = b.add_vertex(7);
/// let v1 = b.add_vertex(7);
/// b.add_edge(v0, v1);
/// b.add_edge(v1, v0); // duplicate in the other direction, de-duplicated at build time
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.label(v0), 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity hints.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            labels: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds a vertex with the given label and returns its id (ids are assigned
    /// consecutively starting at 0).
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        id
    }

    /// Adds `n` vertices all carrying `label`; returns the id of the first one.
    pub fn add_vertices(&mut self, n: usize, label: Label) -> VertexId {
        let first = self.labels.len() as VertexId;
        self.labels.resize(self.labels.len() + n, label);
        first
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Adds an undirected edge. Self loops and out-of-range endpoints are rejected by
    /// `debug_assert` and silently dropped in release builds at `build` time.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        debug_assert!(
            (a as usize) < self.labels.len() && (b as usize) < self.labels.len(),
            "edge endpoint out of range"
        );
        self.edges.push((a, b));
    }

    /// Returns `true` if an edge between `a` and `b` has already been added (either
    /// direction). Linear scan — intended for small graphs such as queries.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.edges
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Sets the label of an existing vertex.
    pub fn set_label(&mut self, v: VertexId, label: Label) {
        self.labels[v as usize] = label;
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    ///
    /// Self loops and duplicate edges are removed; adjacency lists are sorted, which
    /// enables binary-search `has_edge` on the resulting graph.
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut deg = vec![0u32; n];
        // First pass: count (each undirected edge counts once per endpoint).
        let mut clean: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edges.len());
        for &(a, b) in &self.edges {
            if a == b {
                continue;
            }
            if (a as usize) >= n || (b as usize) >= n {
                continue;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            clean.push((lo, hi));
        }
        clean.sort_unstable();
        clean.dedup();
        for &(a, b) in &clean {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += *d as usize;
            offsets.push(acc);
        }
        let mut neighbors = vec![0 as VertexId; acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(a, b) in &clean {
            neighbors[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            neighbors[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, neighbors, self.labels, clean.len())
    }
}

/// Convenience constructor: builds a graph from a label slice and an edge list.
///
/// ```
/// let g = gup_graph::builder::graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
/// assert_eq!(g.degree(1), 2);
/// ```
pub fn graph_from_edges(labels: &[Label], edges: &[(VertexId, VertexId)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(labels.len(), edges.len());
    for &l in labels {
        b.add_vertex(l);
    }
    for &(a, c) in edges {
        b.add_edge(a, c);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn vertices_without_edges() {
        let mut b = GraphBuilder::new();
        b.add_vertex(1);
        b.add_vertex(2);
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn self_loops_are_removed() {
        let g = graph_from_edges(&[0, 0], &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = graph_from_edges(&[0; 5], &[(0, 4), (0, 2), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn add_vertices_bulk_and_set_label() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(3, 5);
        assert_eq!(first, 0);
        assert_eq!(b.vertex_count(), 3);
        b.set_label(1, 9);
        let g = b.build();
        assert_eq!(g.label(0), 5);
        assert_eq!(g.label(1), 9);
        assert_eq!(g.label(2), 5);
    }

    #[test]
    fn has_edge_on_builder() {
        let mut b = GraphBuilder::new();
        b.add_vertices(3, 0);
        b.add_edge(0, 1);
        assert!(b.has_edge(0, 1));
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 2));
    }
}
