//! Query graphs and matching-order views.
//!
//! The matcher assumes (paper §2.2) that query-vertex ids are numbered in the matching
//! order and that the order is *connected*: every query vertex except `u_0` has a
//! neighbor with a smaller id. [`QueryGraph`] validates the structural requirements
//! (connectivity, size ≤ [`MAX_QUERY_VERTICES`]) and [`OrderedQuery`] pre-computes
//! backward/forward neighbor sets `N−(u_i)` / `N+(u_i)` once vertices are renumbered
//! into the matching order.
//!
//! [`OrderedQuery`] is generic over the bitset width `W` of its neighbor sets
//! (`QVSet<W>`, 64 vertices per word): the engine instantiates the narrowest width
//! that fits the query, so ≤64-vertex queries keep the one-word fast path while
//! 65–256-vertex queries run with two or four words.

use crate::algo::{is_connected, two_core};
use crate::graph::Graph;
use crate::types::{QVSet, VertexId, MAX_QUERY_VERTICES};

/// Errors raised when a graph cannot be used as a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryGraphError {
    /// The query has no vertices.
    Empty,
    /// The query has more vertices than the bitset masks support.
    TooLarge {
        /// Number of vertices in the rejected query.
        vertices: usize,
        /// The ceiling that was exceeded: [`MAX_QUERY_VERTICES`] at the
        /// [`QueryGraph`] boundary, or the instantiated width's capacity when a
        /// width-specific engine rejects a query its bitsets cannot hold.
        limit: usize,
    },
    /// The query is not connected; a connected matching order cannot exist.
    Disconnected,
}

impl QueryGraphError {
    /// The `TooLarge` error for a query of `vertices` vertices at the global
    /// [`MAX_QUERY_VERTICES`] ceiling.
    pub fn too_large(vertices: usize) -> Self {
        QueryGraphError::TooLarge {
            vertices,
            limit: MAX_QUERY_VERTICES,
        }
    }
}

impl std::fmt::Display for QueryGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryGraphError::Empty => write!(f, "query graph has no vertices"),
            QueryGraphError::TooLarge { vertices, limit } => write!(
                f,
                "query graph has {vertices} vertices; at most {limit} are supported"
            ),
            QueryGraphError::Disconnected => write!(f, "query graph is not connected"),
        }
    }
}

impl std::error::Error for QueryGraphError {}

/// A validated query graph.
#[derive(Clone, Debug)]
pub struct QueryGraph {
    graph: Graph,
}

impl QueryGraph {
    /// Validates `graph` as a query: non-empty, connected, at most
    /// [`MAX_QUERY_VERTICES`] vertices.
    pub fn new(graph: Graph) -> Result<Self, QueryGraphError> {
        if graph.vertex_count() == 0 {
            return Err(QueryGraphError::Empty);
        }
        if graph.vertex_count() > MAX_QUERY_VERTICES {
            return Err(QueryGraphError::too_large(graph.vertex_count()));
        }
        if !is_connected(&graph) {
            return Err(QueryGraphError::Disconnected);
        }
        Ok(QueryGraph { graph })
    }

    /// Underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of query vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of query edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Average degree of the query; the paper classifies a query as *dense* if this is
    /// at least 3 and *sparse* otherwise.
    pub fn average_degree(&self) -> f64 {
        self.graph.average_degree()
    }

    /// `true` if the query is dense in the paper's sense (average degree ≥ 3).
    pub fn is_dense(&self) -> bool {
        self.average_degree() >= 3.0
    }

    /// Checks that this query fits a width-`W` bitset engine (`64 * W` vertices).
    /// The single source of the per-width `TooLarge` rule: every width-specific
    /// engine constructor (`Gcs::<W>`, `BacktrackingBaseline::<W>`) delegates
    /// here, so the capacity policy cannot diverge between engines.
    pub fn check_width<const W: usize>(&self) -> Result<(), QueryGraphError> {
        let capacity = crate::types::QVSet::<W>::CAPACITY;
        if self.vertex_count() > capacity {
            return Err(QueryGraphError::TooLarge {
                vertices: self.vertex_count(),
                limit: capacity,
            });
        }
        Ok(())
    }

    /// Renumbers the query vertices so that `order[i]` becomes vertex `u_i` and returns
    /// the precomputed [`OrderedQuery`] at bitset width `W`. `order` must be a
    /// permutation of the query's vertex ids and must be connected (each prefix
    /// induces a connected subgraph); connectivity of the order is validated, and a
    /// query with more vertices than `64 * W` is rejected with
    /// [`OrderError::WidthExceeded`].
    pub fn with_order<const W: usize>(
        &self,
        order: &[VertexId],
    ) -> Result<OrderedQuery<W>, OrderError> {
        OrderedQuery::new(self, order)
    }
}

/// Errors raised when a matching order is invalid for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderError {
    /// The order is not a permutation of the query vertices.
    NotAPermutation,
    /// Vertex `u_i` (for some `i > 0`) has no neighbor earlier in the order.
    NotConnected {
        /// Position in the order at which connectivity fails.
        position: usize,
    },
    /// The query does not fit the instantiated bitset width (the engine's width
    /// dispatch picks a sufficient `W` before reaching this constructor).
    WidthExceeded {
        /// Number of vertices in the query.
        vertices: usize,
        /// Capacity of the requested width (`64 * W`).
        capacity: usize,
    },
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::NotAPermutation => {
                write!(f, "matching order is not a permutation of the query vertices")
            }
            OrderError::NotConnected { position } => write!(
                f,
                "matching order is not connected: vertex at position {position} has no earlier neighbor"
            ),
            OrderError::WidthExceeded { vertices, capacity } => write!(
                f,
                "query has {vertices} vertices but the instantiated bitset width holds only {capacity}"
            ),
        }
    }
}

impl std::error::Error for OrderError {}

/// A query graph whose vertices have been renumbered into the matching order, with the
/// neighbor views the backtracking engine needs. `W` is the bitset width of the
/// neighbor sets (64 query vertices per word).
#[derive(Clone, Debug)]
pub struct OrderedQuery<const W: usize = 1> {
    graph: Graph,
    /// For each `u_i`, its backward neighbors `N−(u_i) = {u_j ∈ N(u_i) | j < i}`.
    backward: Vec<Vec<usize>>,
    /// For each `u_i`, its forward neighbors `N+(u_i) = {u_j ∈ N(u_i) | j > i}`.
    forward: Vec<Vec<usize>>,
    /// Backward neighbors as bitsets.
    backward_set: Vec<QVSet<W>>,
    /// Forward neighbors as bitsets.
    forward_set: Vec<QVSet<W>>,
    /// Membership of each (renumbered) query vertex in the query's 2-core.
    in_two_core: Vec<bool>,
    /// Map from the renumbered vertex id back to the id in the original query graph.
    original_id: Vec<VertexId>,
}

impl<const W: usize> OrderedQuery<W> {
    fn new(query: &QueryGraph, order: &[VertexId]) -> Result<Self, OrderError> {
        let n = query.vertex_count();
        if n > QVSet::<W>::CAPACITY {
            return Err(OrderError::WidthExceeded {
                vertices: n,
                capacity: QVSet::<W>::CAPACITY,
            });
        }
        if order.len() != n {
            return Err(OrderError::NotAPermutation);
        }
        let mut seen = vec![false; n];
        for &v in order {
            if (v as usize) >= n || seen[v as usize] {
                return Err(OrderError::NotAPermutation);
            }
            seen[v as usize] = true;
        }
        let graph = query.graph().permuted(order);
        // Connectivity of the order: every u_i (i > 0) must have a backward neighbor.
        for i in 1..n {
            if !graph
                .neighbors(i as VertexId)
                .iter()
                .any(|&j| (j as usize) < i)
            {
                return Err(OrderError::NotConnected { position: i });
            }
        }
        let mut backward = vec![Vec::new(); n];
        let mut forward = vec![Vec::new(); n];
        let mut backward_set = vec![QVSet::new(); n];
        let mut forward_set = vec![QVSet::new(); n];
        for i in 0..n {
            for &j in graph.neighbors(i as VertexId) {
                let j = j as usize;
                if j < i {
                    backward[i].push(j);
                    backward_set[i].insert(j);
                } else {
                    forward[i].push(j);
                    forward_set[i].insert(j);
                }
            }
        }
        let in_two_core = two_core(&graph);
        Ok(OrderedQuery {
            graph,
            backward,
            forward,
            backward_set,
            forward_set,
            in_two_core,
            original_id: order.to_vec(),
        })
    }

    /// The renumbered query graph (`u_i` has vertex id `i`).
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of query vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Backward neighbors of `u_i` (ids `< i`), ascending.
    #[inline]
    pub fn backward_neighbors(&self, i: usize) -> &[usize] {
        &self.backward[i]
    }

    /// Forward neighbors of `u_i` (ids `> i`), ascending.
    #[inline]
    pub fn forward_neighbors(&self, i: usize) -> &[usize] {
        &self.forward[i]
    }

    /// Backward neighbors of `u_i` as a bitset.
    #[inline]
    pub fn backward_set(&self, i: usize) -> QVSet<W> {
        self.backward_set[i]
    }

    /// Forward neighbors of `u_i` as a bitset.
    #[inline]
    pub fn forward_set(&self, i: usize) -> QVSet<W> {
        self.forward_set[i]
    }

    /// `true` when `u_i` belongs to the query's 2-core (edge nogood guards are only
    /// generated inside the 2-core, §3.3.3).
    #[inline]
    pub fn in_two_core(&self, i: usize) -> bool {
        self.in_two_core[i]
    }

    /// Id of `u_i` in the original (pre-renumbering) query graph.
    #[inline]
    pub fn original_id(&self, i: usize) -> VertexId {
        self.original_id[i]
    }

    /// Translates an embedding expressed over the renumbered vertices back into a
    /// mapping indexed by the original query-vertex ids.
    pub fn embedding_in_original_ids(&self, embedding: &[VertexId]) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.embedding_in_original_ids_into(embedding, &mut out);
        out
    }

    /// Allocation-free variant of [`OrderedQuery::embedding_in_original_ids`]: writes
    /// the translation into `out` (cleared and resized), so a caller translating many
    /// embeddings can reuse one scratch buffer.
    pub fn embedding_in_original_ids_into(&self, embedding: &[VertexId], out: &mut Vec<VertexId>) {
        out.clear();
        out.resize(embedding.len(), 0 as VertexId);
        for (i, &v) in embedding.iter().enumerate() {
            out[self.original_id[i] as usize] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn paper_query() -> QueryGraph {
        // Fig. 1(a): u0(A)-u1(B), u1-u2(C), u2-u3(D), u3-u4(A), u4-u0, u1-u4? No: edges
        // are u0-u1, u1-u2, u2-u3, u3-u4, u4-u0 (a 5-cycle with labels A B C D A).
        QueryGraph::new(graph_from_edges(
            &[0, 1, 2, 3, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        ))
        .unwrap()
    }

    #[test]
    fn rejects_empty_query() {
        let g = crate::GraphBuilder::new().build();
        assert_eq!(QueryGraph::new(g).unwrap_err(), QueryGraphError::Empty);
    }

    #[test]
    fn rejects_disconnected_query() {
        let g = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        assert_eq!(
            QueryGraph::new(g).unwrap_err(),
            QueryGraphError::Disconnected
        );
    }

    #[test]
    fn accepts_queries_up_to_the_widest_bitset() {
        // 65 vertices — beyond the one-word fast path, accepted since the engine
        // went width-generic.
        let mut b = crate::GraphBuilder::new();
        b.add_vertices(65, 0);
        for i in 0..64u32 {
            b.add_edge(i, i + 1);
        }
        let q = QueryGraph::new(b.build()).unwrap();
        assert_eq!(q.vertex_count(), 65);
    }

    #[test]
    fn rejects_oversized_query_at_the_global_ceiling() {
        let mut b = crate::GraphBuilder::new();
        b.add_vertices(MAX_QUERY_VERTICES + 1, 0);
        for i in 0..MAX_QUERY_VERTICES as u32 {
            b.add_edge(i, i + 1);
        }
        let err = QueryGraph::new(b.build()).unwrap_err();
        assert_eq!(
            err,
            QueryGraphError::TooLarge {
                vertices: MAX_QUERY_VERTICES + 1,
                limit: MAX_QUERY_VERTICES,
            }
        );
        assert!(format!("{err}").contains("at most 256"));
    }

    #[test]
    fn ordered_query_rejects_insufficient_width() {
        let mut b = crate::GraphBuilder::new();
        b.add_vertices(65, 0);
        for i in 0..64u32 {
            b.add_edge(i, i + 1);
        }
        let q = QueryGraph::new(b.build()).unwrap();
        let order: Vec<VertexId> = (0..65).collect();
        let err = q.with_order::<1>(&order).unwrap_err();
        assert_eq!(
            err,
            OrderError::WidthExceeded {
                vertices: 65,
                capacity: 64,
            }
        );
        // Two words fit.
        assert!(q.with_order::<2>(&order).is_ok());
    }

    #[test]
    fn density_classification() {
        let sparse = paper_query();
        assert!(!sparse.is_dense());
        let dense = QueryGraph::new(graph_from_edges(
            &[0; 4],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        ))
        .unwrap();
        assert!(dense.is_dense());
    }

    #[test]
    fn ordered_query_neighbor_views() {
        let q = paper_query();
        let oq = q.with_order::<1>(&[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(oq.backward_neighbors(0), &[] as &[usize]);
        assert_eq!(oq.backward_neighbors(1), &[0]);
        assert_eq!(oq.backward_neighbors(4), &[0, 3]);
        assert_eq!(oq.forward_neighbors(0), &[1, 4]);
        assert_eq!(oq.forward_neighbors(4), &[] as &[usize]);
        assert_eq!(oq.backward_set(4), QVSet::from_iter([0, 3]));
        assert_eq!(oq.forward_set(2), QVSet::from_iter([3]));
    }

    #[test]
    fn ordered_query_validates_connected_order() {
        let q = paper_query();
        // 0,2 is not connected: u1=2 has no neighbor among {0}.
        let err = q.with_order::<1>(&[0, 2, 1, 3, 4]).unwrap_err();
        assert!(matches!(err, OrderError::NotConnected { position: 1 }));
        // Not a permutation.
        let err = q.with_order::<1>(&[0, 0, 1, 2, 3]).unwrap_err();
        assert_eq!(err, OrderError::NotAPermutation);
        let err = q.with_order::<1>(&[0, 1, 2]).unwrap_err();
        assert_eq!(err, OrderError::NotAPermutation);
    }

    #[test]
    fn ordered_query_two_core_membership() {
        // Triangle plus pendant: pendant is outside the 2-core.
        let q = QueryGraph::new(graph_from_edges(
            &[0, 0, 0, 0],
            &[(0, 1), (1, 2), (2, 0), (2, 3)],
        ))
        .unwrap();
        let oq = q.with_order::<1>(&[0, 1, 2, 3]).unwrap();
        assert!(oq.in_two_core(0));
        assert!(oq.in_two_core(2));
        assert!(!oq.in_two_core(3));
        // The whole 5-cycle is its own 2-core.
        let cyc = paper_query().with_order::<1>(&[0, 1, 2, 3, 4]).unwrap();
        assert!((0..5).all(|i| cyc.in_two_core(i)));
    }

    #[test]
    fn reordering_preserves_labels_and_original_ids() {
        let q = paper_query();
        let oq = q.with_order::<1>(&[2, 1, 0, 4, 3]).unwrap();
        assert_eq!(oq.original_id(0), 2);
        assert_eq!(oq.graph().label(0), 2); // label C moved with original vertex 2
        assert_eq!(oq.original_id(4), 3);
        // Edges preserved: original (2,3) -> new (0,4).
        assert!(oq.graph().has_edge(0, 4));
    }

    #[test]
    fn embedding_translation_back_to_original_ids() {
        let q = paper_query();
        let oq = q.with_order::<1>(&[4, 3, 2, 1, 0]).unwrap();
        // Renumbered embedding assigns u_i -> 100+i.
        let emb: Vec<u32> = (0..5).map(|i| 100 + i).collect();
        let back = oq.embedding_in_original_ids(&emb);
        // Original vertex 4 was renumbered to 0, so it maps to 100.
        assert_eq!(back[4], 100);
        assert_eq!(back[0], 104);
    }
}
