//! Small graph algorithms required by the matcher and the workload generators.
//!
//! * [`two_core`] — GuP generates nogood guards on edges only inside the query's
//!   2-core (§3.3.3 of the paper).
//! * [`connected_components`] / [`is_connected`] — query graphs must be connected for
//!   a connected matching order to exist.
//! * [`degeneracy_order`] — used by the ordering heuristics (core-first orders) and by
//!   the workload generator to characterize query density.
//! * [`bfs_levels`] — used when building the query DAG for candidate filtering.

use crate::graph::Graph;
use crate::types::VertexId;

/// Returns the set of vertices in the 2-core of `g` as a boolean membership vector.
///
/// The 2-core is the maximal subgraph in which every vertex has degree ≥ 2; vertices
/// outside it form the "tree fringe" of the graph.
pub fn two_core(g: &Graph) -> Vec<bool> {
    k_core(g, 2)
}

/// Returns membership in the k-core of `g`.
pub fn k_core(g: &Graph, k: usize) -> Vec<bool> {
    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let mut in_core = vec![true; n];
    let mut stack: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| deg[v as usize] < k)
        .collect();
    for &v in &stack {
        in_core[v as usize] = false;
    }
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if in_core[w as usize] {
                deg[w as usize] -= 1;
                if deg[w as usize] < k {
                    in_core[w as usize] = false;
                    stack.push(w);
                }
            }
        }
    }
    in_core
}

/// Labels each vertex with a component id in `0..component_count` and returns
/// `(component_of, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.vertex_count();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as VertexId {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Returns `true` if `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.vertex_count() == 0 || connected_components(g).1 == 1
}

/// BFS levels from `root`; unreachable vertices get `u32::MAX`.
pub fn bfs_levels(g: &Graph, root: VertexId) -> Vec<u32> {
    let n = g.vertex_count();
    let mut level = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    level[root as usize] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for &w in g.neighbors(v) {
            if level[w as usize] == u32::MAX {
                level[w as usize] = next;
                queue.push_back(w);
            }
        }
    }
    level
}

/// Degeneracy ordering: repeatedly removes a minimum-degree vertex. Returns the removal
/// order (smallest-degree-first) and the graph degeneracy (the maximum degree observed
/// at removal time).
pub fn degeneracy_order(g: &Graph) -> (Vec<VertexId>, usize) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.vertex_count();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    // Min-heap over (current degree, vertex) with lazy deletion of stale entries.
    let mut heap: BinaryHeap<Reverse<(usize, VertexId)>> =
        (0..n).map(|v| Reverse((deg[v], v as VertexId))).collect();
    while let Some(Reverse((d, v))) = heap.pop() {
        if removed[v as usize] || deg[v as usize] != d {
            continue; // stale entry
        }
        removed[v as usize] = true;
        degeneracy = degeneracy.max(d);
        order.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                deg[w as usize] -= 1;
                heap.push(Reverse((deg[w as usize], w)));
            }
        }
    }
    (order, degeneracy)
}

/// Counts triangles in `g` (each triangle counted once).
pub fn triangle_count(g: &Graph) -> usize {
    let mut count = 0usize;
    for v in g.vertices() {
        let nv = g.neighbors(v);
        for (i, &a) in nv.iter().enumerate() {
            if a <= v {
                continue;
            }
            for &b in &nv[i + 1..] {
                if b > a && g.has_edge(a, b) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn triangle_with_tail() -> Graph {
        // 0-1-2 triangle, 2-3-4 path tail.
        graph_from_edges(&[0; 5], &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    #[test]
    fn two_core_excludes_tree_fringe() {
        let g = triangle_with_tail();
        let core = two_core(&g);
        assert_eq!(core, vec![true, true, true, false, false]);
    }

    #[test]
    fn two_core_of_tree_is_empty() {
        let g = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (1, 3)]);
        assert!(two_core(&g).iter().all(|&b| !b));
    }

    #[test]
    fn k_core_cascades() {
        // A 4-clique with a pendant: the 3-core is the clique only.
        let g = graph_from_edges(
            &[0; 5],
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)],
        );
        let core3 = k_core(&g, 3);
        assert_eq!(core3, vec![true, true, true, true, false]);
        let core5 = k_core(&g, 5);
        assert!(core5.iter().all(|&b| !b));
    }

    #[test]
    fn connected_components_counts() {
        let g = graph_from_edges(&[0; 5], &[(0, 1), (2, 3)]);
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
        assert!(!is_connected(&g));
        assert!(is_connected(&triangle_with_tail()));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = crate::GraphBuilder::new().build();
        assert!(is_connected(&g));
    }

    #[test]
    fn bfs_levels_from_root() {
        let g = triangle_with_tail();
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels, vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn bfs_levels_unreachable() {
        let g = graph_from_edges(&[0; 3], &[(0, 1)]);
        let levels = bfs_levels(&g, 0);
        assert_eq!(levels[2], u32::MAX);
    }

    #[test]
    fn degeneracy_of_clique_and_tree() {
        let clique = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let (order, d) = degeneracy_order(&clique);
        assert_eq!(order.len(), 4);
        assert_eq!(d, 3);
        let tree = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3)]);
        let (_, d) = degeneracy_order(&tree);
        assert_eq!(d, 1);
    }

    #[test]
    fn degeneracy_order_is_a_permutation() {
        let g = triangle_with_tail();
        let (mut order, _) = degeneracy_order(&g);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&triangle_with_tail()), 1);
        let k4 = graph_from_edges(&[0; 4], &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&k4), 4);
        let path = graph_from_edges(&[0; 3], &[(0, 1), (1, 2)]);
        assert_eq!(triangle_count(&path), 0);
    }
}
