//! Random graph and query generators.
//!
//! These are the primitives used by `gup-workloads` to synthesize data graphs with the
//! same scale/shape as the paper's datasets and to extract query graphs "in the same
//! manner as Sun et al.": a random walk on the data graph followed by taking the
//! subgraph induced by the visited vertices (paper §4.1).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{Label, VertexId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters for the labeled power-law data-graph generator.
#[derive(Clone, Debug)]
pub struct PowerLawConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Edges added per new vertex (Barabási–Albert style preferential attachment).
    pub edges_per_vertex: usize,
    /// Number of distinct labels.
    pub labels: usize,
    /// Skew of the label distribution: 0.0 = uniform, larger = more skewed (Zipf-like).
    pub label_skew: f64,
    /// Fraction of extra random edges added after attachment (introduces cycles and
    /// cross-community edges), relative to the attachment edge count.
    pub extra_edge_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            vertices: 1000,
            edges_per_vertex: 4,
            labels: 20,
            label_skew: 1.0,
            extra_edge_fraction: 0.05,
            seed: 1,
        }
    }
}

/// Generates a labeled scale-free graph via preferential attachment plus a sprinkle of
/// random edges. Deterministic for a given config.
pub fn power_law_graph(cfg: &PowerLawConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.vertices.max(1);
    let m = cfg.edges_per_vertex.max(1);
    let labels = assign_labels(n, cfg.labels.max(1), cfg.label_skew, &mut rng);
    let mut builder = GraphBuilder::with_capacity(n, n * m);
    for &l in &labels {
        builder.add_vertex(l);
    }
    // Preferential attachment: `targets` holds one entry per edge endpoint so sampling
    // uniformly from it is degree-proportional sampling.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let seed_size = (m + 1).min(n);
    for i in 0..seed_size {
        for j in (i + 1)..seed_size {
            builder.add_edge(i as VertexId, j as VertexId);
            targets.push(i as VertexId);
            targets.push(j as VertexId);
        }
    }
    for v in seed_size..n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
        let mut attempts = 0;
        while chosen.len() < m && attempts < 10 * m {
            attempts += 1;
            let t = if targets.is_empty() {
                rng.gen_range(0..v) as VertexId
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if t != v as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            builder.add_edge(v as VertexId, t);
            targets.push(v as VertexId);
            targets.push(t);
        }
    }
    // Extra random edges.
    let extra = ((n * m) as f64 * cfg.extra_edge_fraction) as usize;
    for _ in 0..extra {
        let a = rng.gen_range(0..n) as VertexId;
        let b = rng.gen_range(0..n) as VertexId;
        if a != b {
            builder.add_edge(a, b);
        }
    }
    builder.build()
}

/// Parameters for the Erdős–Rényi generator (used mostly in tests and property-based
/// testing where uniform randomness is preferable).
#[derive(Clone, Debug)]
pub struct ErdosRenyiConfig {
    /// Number of vertices.
    pub vertices: usize,
    /// Independent edge probability.
    pub edge_probability: f64,
    /// Number of distinct labels (assigned uniformly).
    pub labels: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a labeled Erdős–Rényi graph.
pub fn erdos_renyi_graph(cfg: &ErdosRenyiConfig) -> Graph {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.vertices;
    let mut builder = GraphBuilder::with_capacity(n, (n * n / 4).max(1));
    for _ in 0..n {
        builder.add_vertex(rng.gen_range(0..cfg.labels.max(1)) as Label);
    }
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(cfg.edge_probability.clamp(0.0, 1.0)) {
                builder.add_edge(a as VertexId, b as VertexId);
            }
        }
    }
    builder.build()
}

fn assign_labels(n: usize, label_count: usize, skew: f64, rng: &mut SmallRng) -> Vec<Label> {
    // Zipf-like label weights: weight(l) ∝ 1 / (l + 1)^skew.
    let weights: Vec<f64> = (0..label_count)
        .map(|l| 1.0 / ((l + 1) as f64).powf(skew.max(0.0)))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut x = rng.gen::<f64>() * total;
        let mut chosen = label_count - 1;
        for (l, w) in weights.iter().enumerate() {
            if x < *w {
                chosen = l;
                break;
            }
            x -= w;
        }
        labels.push(chosen as Label);
    }
    labels
}

/// Extracts a connected query graph from `data` by random walk, mirroring the
/// methodology of the paper's evaluation (§4.1): perform a random walk until
/// `target_vertices` distinct vertices have been visited, then return the subgraph
/// induced by the visited vertices.
///
/// Returns `None` if the walk gets stuck before reaching the target size (isolated
/// start vertex or tiny component).
pub fn random_walk_query(
    data: &Graph,
    target_vertices: usize,
    rng: &mut SmallRng,
) -> Option<Graph> {
    if data.vertex_count() == 0 || target_vertices == 0 {
        return None;
    }
    let start = rng.gen_range(0..data.vertex_count()) as VertexId;
    if data.degree(start) == 0 {
        return None;
    }
    let mut visited: Vec<VertexId> = vec![start];
    let mut visited_set = std::collections::HashSet::new();
    visited_set.insert(start);
    let mut current = start;
    let mut steps = 0usize;
    let max_steps = target_vertices * 200;
    while visited.len() < target_vertices && steps < max_steps {
        steps += 1;
        let nbrs = data.neighbors(current);
        if nbrs.is_empty() {
            break;
        }
        let next = nbrs[rng.gen_range(0..nbrs.len())];
        if visited_set.insert(next) {
            visited.push(next);
        }
        current = next;
        // Occasionally restart from a random visited vertex to avoid getting stuck in a
        // low-degree region; this keeps the induced subgraph connected.
        if rng.gen_bool(0.1) {
            current = *visited.choose(rng).expect("visited is non-empty");
        }
    }
    if visited.len() < target_vertices {
        return None;
    }
    Some(data.induced_subgraph(&visited))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;

    #[test]
    fn power_law_graph_is_deterministic() {
        let cfg = PowerLawConfig {
            vertices: 200,
            edges_per_vertex: 3,
            labels: 8,
            ..Default::default()
        };
        let g1 = power_law_graph(&cfg);
        let g2 = power_law_graph(&cfg);
        assert_eq!(g1, g2);
        assert_eq!(g1.vertex_count(), 200);
        assert!(g1.edge_count() > 200);
        assert!(g1.label_count() <= 8);
    }

    #[test]
    fn power_law_graph_has_skewed_degrees() {
        let g = power_law_graph(&PowerLawConfig {
            vertices: 500,
            edges_per_vertex: 2,
            ..Default::default()
        });
        assert!(g.max_degree() > 3 * g.average_degree() as usize);
    }

    #[test]
    fn power_law_label_skew_concentrates_mass() {
        let g = power_law_graph(&PowerLawConfig {
            vertices: 1000,
            labels: 10,
            label_skew: 1.5,
            ..Default::default()
        });
        // Label 0 must be the most frequent under Zipf skew.
        let f0 = g.label_frequency(0);
        for l in 1..10 {
            assert!(f0 >= g.label_frequency(l));
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let empty = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 10,
            edge_probability: 0.0,
            labels: 3,
            seed: 7,
        });
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 10,
            edge_probability: 1.0,
            labels: 3,
            seed: 7,
        });
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_deterministic_per_seed() {
        let cfg = ErdosRenyiConfig {
            vertices: 30,
            edge_probability: 0.2,
            labels: 4,
            seed: 42,
        };
        assert_eq!(erdos_renyi_graph(&cfg), erdos_renyi_graph(&cfg));
    }

    #[test]
    fn random_walk_query_is_connected_and_sized() {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 300,
            edges_per_vertex: 4,
            labels: 5,
            ..Default::default()
        });
        let mut rng = SmallRng::seed_from_u64(9);
        let mut produced = 0;
        for _ in 0..20 {
            if let Some(q) = random_walk_query(&data, 8, &mut rng) {
                assert_eq!(q.vertex_count(), 8);
                assert!(is_connected(&q));
                assert!(q.edge_count() >= 7);
                produced += 1;
            }
        }
        assert!(
            produced > 0,
            "the generator should succeed on a dense-enough graph"
        );
    }

    #[test]
    fn random_walk_query_fails_gracefully() {
        let empty = GraphBuilder::new().build();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(random_walk_query(&empty, 4, &mut rng).is_none());
        // A graph of isolated vertices can never seed a walk.
        let mut b = GraphBuilder::new();
        b.add_vertices(5, 0);
        let isolated = b.build();
        assert!(random_walk_query(&isolated, 2, &mut rng).is_none());
    }
}
