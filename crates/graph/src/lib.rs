//! # gup-graph
//!
//! Labeled-graph substrate for the GuP subgraph-matching reproduction.
//!
//! The paper (GuP, SIGMOD 2023) operates on *vertex-labeled simple undirected graphs*.
//! This crate provides everything the matching layers need from the data side:
//!
//! * [`Graph`] — an immutable CSR (compressed sparse row) representation with a label
//!   index, suitable both for multi-million-edge data graphs and for tiny query graphs.
//! * [`GraphBuilder`] — incremental construction with de-duplication of parallel edges
//!   and removal of self loops (the paper assumes simple graphs).
//! * [`QueryGraph`] — a thin wrapper over [`Graph`] that validates the properties the
//!   matcher relies on (connectivity, ≤ [`MAX_QUERY_VERTICES`] vertices for bitset
//!   masks) and exposes forward/backward neighbor views under a matching order.
//! * [`PreparedData`] — an immutable, `Arc`-shareable per-data-graph index (label
//!   inverted index, a flat arena of per-vertex neighborhood-label-frequency
//!   signatures, degree/label stats and a max-NLF bound) built once and reused by
//!   every query of a session.
//! * [`QVSet`] — a width-generic query-vertex bitset (`W` 64-bit words, `W = 1` by
//!   default) used throughout the matcher for conflict masks, bounding sets, and
//!   nogood domains (O(1) set operations for any fixed width, as assumed by the
//!   paper's complexity analysis). [`Qv64`]/[`Qv128`]/[`Qv256`] name the supported
//!   instantiations.
//! * Text I/O ([`io`]) in the common `t/v/e` format used by the subgraph-matching
//!   community, versioned/checksummed binary persistence of prepared indexes
//!   ([`index_io`]), random generators ([`generate`]) used by the workload crate, and the
//!   small graph algorithms the matcher needs ([`algo`]: 2-core, connected components,
//!   degeneracy order).
//!
//! ## Quick example
//!
//! ```
//! use gup_graph::{GraphBuilder, QueryGraph};
//!
//! // A triangle where two vertices share label 0.
//! let mut b = GraphBuilder::new();
//! let a = b.add_vertex(0);
//! let c = b.add_vertex(0);
//! let d = b.add_vertex(1);
//! b.add_edge(a, c);
//! b.add_edge(c, d);
//! b.add_edge(d, a);
//! let g = b.build();
//! assert_eq!(g.vertex_count(), 3);
//! assert_eq!(g.edge_count(), 3);
//! assert!(g.has_edge(a, d));
//!
//! // Any connected graph with at most 256 vertices can be used as a query.
//! let q = QueryGraph::new(g.clone()).unwrap();
//! assert_eq!(q.vertex_count(), 3);
//! ```

pub mod algo;
pub mod builder;
pub mod deadline;
pub mod delta;
pub mod fixtures;
pub mod generate;
pub mod graph;
pub mod index_io;
pub mod io;
pub mod prepared;
pub mod query;
pub mod sink;
pub mod stats;
pub mod types;

pub use builder::GraphBuilder;
pub use deadline::{DeadlineExceeded, DeadlineSampler};
pub use delta::{DeltaEffects, DeltaError, GraphDelta};
pub use graph::Graph;
pub use index_io::{load_index, save_index, IndexIoError};
pub use prepared::{PrepareError, PreparedData};
pub use query::{QueryGraph, QueryGraphError};
pub use sink::{
    CallbackSink, CollectAll, CountOnly, EmbeddingReservation, EmbeddingSink, FirstK, SinkControl,
};
pub use types::{words_for, Label, QVSet, Qv128, Qv256, Qv64, VertexId, MAX_QUERY_VERTICES};
