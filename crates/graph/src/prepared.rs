//! Prepared (indexed) data graphs for batched query workloads.
//!
//! The evaluation of the paper runs *query sets* — hundreds of queries against one
//! data graph (§4.1) — and a production deployment looks the same: the data graph is
//! long-lived, queries are cheap and many. [`PreparedData`] is the once-per-data-graph
//! half of that split: an immutable bundle of the graph plus every per-vertex index
//! the matching layers would otherwise re-derive on each query:
//!
//! * the CSR graph itself with its label inverted index ([`Graph`]),
//! * a flat CSR-style arena of per-vertex **neighborhood-label-frequency signatures**
//!   (sparse, label-sorted), so the NLF filter becomes a two-pointer signature
//!   comparison instead of a neighbor rescan with per-candidate allocation,
//! * degree / label statistics and a per-label **max-NLF bound** (the highest count
//!   of that label in any vertex's neighborhood), which rejects unsatisfiable query
//!   vertices before any candidate is scanned.
//!
//! `PreparedData` is immutable after construction and designed to be wrapped in an
//! [`Arc`](std::sync::Arc) and shared across threads running concurrent queries; the
//! session layer in the `gup` crate builds on exactly that.
//!
//! ```
//! use gup_graph::fixtures::paper_example;
//! use gup_graph::PreparedData;
//!
//! let (_query, data) = paper_example();
//! let prepared = PreparedData::new(data);
//! // v0 (label A) has two label-B neighbors in Fig. 1.
//! let (labels, counts) = prepared.signature(0);
//! assert!(labels.contains(&1));
//! assert!(prepared.signature_covers(0, &[1], &[1]));
//! assert!(!prepared.signature_covers(0, &[1], &[9]));
//! ```

use crate::deadline::Stopwatch;
use crate::types::{Label, VertexId};
use crate::Graph;
use std::time::Duration;

/// Errors surfaced while building a [`PreparedData`] index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrepareError {
    /// The signature arena would need more than `u32::MAX` entries, so its `u32`
    /// offsets cannot address it. Graphs that large must shard before preparing;
    /// silently truncating the offsets (the pre-fix behavior) would build — and
    /// persist — a corrupt index.
    SignatureArenaTooLarge {
        /// Number of `(label, count)` entries the arena would need.
        entries: usize,
    },
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::SignatureArenaTooLarge { entries } => write!(
                f,
                "signature arena needs {entries} entries, which exceeds the u32 offset range"
            ),
        }
    }
}

impl std::error::Error for PrepareError {}

/// Converts an arena length into a `u32` signature offset, rejecting graphs whose
/// distinct-neighbor-label entries would overflow the offset type.
fn checked_sig_offset(len: usize) -> Result<u32, PrepareError> {
    u32::try_from(len).map_err(|_| PrepareError::SignatureArenaTooLarge { entries: len })
}

/// An immutable, `Arc`-shareable index of a data graph, built once and reused by
/// every query of a session. See the [module docs](self) for what it contains.
#[derive(Clone, Debug)]
pub struct PreparedData {
    graph: Graph,
    /// `sig_offsets[v]..sig_offsets[v + 1]` indexes vertex `v`'s slice of the
    /// signature arena. Entries within a slice are sorted by label.
    sig_offsets: Vec<u32>,
    sig_labels: Vec<Label>,
    sig_counts: Vec<u32>,
    /// For each label `l`: the maximum, over all vertices, of the number of
    /// label-`l` neighbors. A query vertex demanding more can have no candidate.
    max_nlf: Vec<u32>,
    max_degree: usize,
    prep_time: Duration,
}

/// Equality ignores [`PreparedData::prep_time`] (a measurement, not part of the
/// index): two prepared indexes are equal iff their graphs and every derived
/// array agree. This is what the persistence round-trip guarantee
/// (`load(save(p)) == p`) is stated in terms of.
impl PartialEq for PreparedData {
    fn eq(&self, other: &Self) -> bool {
        self.graph == other.graph
            && self.sig_offsets == other.sig_offsets
            && self.sig_labels == other.sig_labels
            && self.sig_counts == other.sig_counts
            && self.max_nlf == other.max_nlf
            && self.max_degree == other.max_degree
    }
}

impl Eq for PreparedData {}

impl PreparedData {
    /// Builds the prepared index, taking ownership of the data graph. The build is a
    /// single pass over the adjacency lists — `O(|V| + |E|)` plus a sort of each
    /// vertex's (small) distinct-neighbor-label set.
    ///
    /// # Panics
    ///
    /// Panics if the signature arena would overflow its `u32` offsets (more than
    /// `u32::MAX` distinct `(vertex, neighbor-label)` pairs); use
    /// [`PreparedData::try_new`] to get a [`PrepareError`] instead.
    pub fn new(graph: Graph) -> Self {
        match Self::try_new(graph) {
            Ok(prepared) => prepared,
            Err(e) => panic!("preparing data graph failed: {e}"),
        }
    }

    /// Fallible variant of [`PreparedData::new`]: surfaces a typed [`PrepareError`]
    /// instead of panicking when the graph cannot be indexed (e.g. the signature
    /// arena would overflow its `u32` offsets).
    pub fn try_new(graph: Graph) -> Result<Self, PrepareError> {
        let watch = Stopwatch::started();
        let n = graph.vertex_count();
        let label_count = graph.label_count();
        let mut sig_offsets = Vec::with_capacity(n + 1);
        let mut sig_labels = Vec::new();
        let mut sig_counts = Vec::new();
        let mut max_nlf = vec![0u32; label_count];
        // Dense per-label scratch, reset via the `touched` list so the pass stays
        // O(deg) per vertex even with many labels.
        let mut counts = vec![0u32; label_count];
        let mut touched: Vec<Label> = Vec::new();
        sig_offsets.push(0);
        let mut max_degree = 0usize;
        for v in graph.vertices() {
            max_degree = max_degree.max(graph.degree(v));
            for &w in graph.neighbors(v) {
                let l = graph.label(w);
                if counts[l as usize] == 0 {
                    touched.push(l);
                }
                counts[l as usize] += 1;
            }
            touched.sort_unstable();
            for &l in &touched {
                let c = counts[l as usize];
                sig_labels.push(l);
                sig_counts.push(c);
                max_nlf[l as usize] = max_nlf[l as usize].max(c);
                counts[l as usize] = 0;
            }
            touched.clear();
            sig_offsets.push(checked_sig_offset(sig_labels.len())?);
        }
        Ok(PreparedData {
            graph,
            sig_offsets,
            sig_labels,
            sig_counts,
            max_nlf,
            max_degree,
            prep_time: watch.elapsed(),
        })
    }

    /// Reassembles a prepared index from already-validated parts. Used by the
    /// on-disk loader ([`crate::index_io`]), which performs the structural
    /// validation before calling this; `prep_time` records whatever it cost to
    /// obtain the parts (e.g. the load wall time).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        graph: Graph,
        sig_offsets: Vec<u32>,
        sig_labels: Vec<Label>,
        sig_counts: Vec<u32>,
        max_nlf: Vec<u32>,
        max_degree: usize,
        prep_time: Duration,
    ) -> Self {
        PreparedData {
            graph,
            sig_offsets,
            sig_labels,
            sig_counts,
            max_nlf,
            max_degree,
            prep_time,
        }
    }

    /// Raw index arrays `(sig_offsets, sig_labels, sig_counts, max_nlf)` for the
    /// on-disk index writer ([`crate::index_io`]).
    pub(crate) fn sig_parts(&self) -> (&[u32], &[Label], &[u32], &[u32]) {
        (
            &self.sig_offsets,
            &self.sig_labels,
            &self.sig_counts,
            &self.max_nlf,
        )
    }

    /// Convenience for legacy `(query, data)` entry points: clones `graph` and
    /// prepares it. One-shot callers pay the clone; batched callers should build a
    /// `PreparedData` once and share it.
    pub fn from_graph(graph: &Graph) -> Self {
        PreparedData::new(graph.clone())
    }

    /// The underlying data graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Sparse neighborhood-label-frequency signature of vertex `v`: parallel slices
    /// of (sorted, distinct) labels and their neighbor counts.
    #[inline]
    pub fn signature(&self, v: VertexId) -> (&[Label], &[u32]) {
        let lo = self.sig_offsets[v as usize] as usize;
        let hi = self.sig_offsets[v as usize + 1] as usize;
        (&self.sig_labels[lo..hi], &self.sig_counts[lo..hi])
    }

    /// The NLF test as a signature comparison: `true` iff for every `(label,
    /// count)` requirement (parallel slices, labels sorted ascending and distinct),
    /// vertex `v` has at least `count` neighbors with that label. Allocation-free
    /// (statically pinned by the region marker below; dynamically by
    /// `tests/filter_alloc.rs`); a two-pointer merge over two label-sorted slices.
    // gup-lint: region(no_alloc)
    pub fn signature_covers(&self, v: VertexId, req_labels: &[Label], req_counts: &[u32]) -> bool {
        let (labels, counts) = self.signature(v);
        let mut i = 0usize;
        for (&l, &c) in req_labels.iter().zip(req_counts) {
            if c == 0 {
                // "At least 0 neighbors" is trivially satisfied even for labels
                // absent from the signature (signatures store only positive counts).
                continue;
            }
            while i < labels.len() && labels[i] < l {
                i += 1;
            }
            if i >= labels.len() || labels[i] != l || counts[i] < c {
                return false;
            }
        }
        true
    }
    // gup-lint: end_region

    /// The highest number of label-`l` neighbors any vertex has (0 for labels absent
    /// from every neighborhood). A query vertex that needs more label-`l` neighbors
    /// than this bound has no candidate anywhere in the graph.
    #[inline]
    pub fn max_nlf(&self, l: Label) -> u32 {
        self.max_nlf.get(l as usize).copied().unwrap_or(0)
    }

    /// Maximum vertex degree of the data graph.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Wall-clock time spent building this index (graph construction excluded).
    /// Batch reports expose it once, amortized over the query set.
    #[inline]
    pub fn prep_time(&self) -> Duration {
        self.prep_time
    }

    /// Approximate heap footprint of the *index only* — the signature arena and the
    /// statistics, excluding the graph itself. This is what preparing costs on top
    /// of holding the graph; memory reports account for it separately.
    pub fn index_bytes(&self) -> usize {
        self.sig_offsets.capacity() * std::mem::size_of::<u32>()
            + self.sig_labels.capacity() * std::mem::size_of::<Label>()
            + self.sig_counts.capacity() * std::mem::size_of::<u32>()
            + self.max_nlf.capacity() * std::mem::size_of::<u32>()
    }

    /// Approximate total heap footprint: the graph plus the prepared index.
    pub fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes() + self.index_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::fixtures;

    #[test]
    fn signatures_match_dense_nlf() {
        let (_q, data) = fixtures::paper_example();
        let prepared = PreparedData::new(data.clone());
        for v in data.vertices() {
            let dense = data.neighborhood_label_frequency(v);
            let (labels, counts) = prepared.signature(v);
            // Sparse slices are sorted, distinct, and agree with the dense profile.
            assert!(labels.windows(2).all(|w| w[0] < w[1]));
            let mut rebuilt = vec![0u32; dense.len()];
            for (&l, &c) in labels.iter().zip(counts) {
                assert!(c > 0);
                rebuilt[l as usize] = c;
            }
            assert_eq!(rebuilt, dense, "vertex {v}");
        }
    }

    #[test]
    fn signature_covers_agrees_with_counting() {
        let (_q, data) = fixtures::paper_example();
        let prepared = PreparedData::new(data.clone());
        for v in data.vertices() {
            let dense = data.neighborhood_label_frequency(v);
            for l in 0..data.label_count() as Label {
                let have = dense[l as usize];
                if have > 0 {
                    assert!(prepared.signature_covers(v, &[l], &[have]));
                }
                assert!(!prepared.signature_covers(v, &[l], &[have + 1]));
            }
        }
        // Trivial requirements: empty lists and zero counts (even for labels the
        // vertex has no neighbor of) are always covered.
        assert!(prepared.signature_covers(0, &[], &[]));
        for v in data.vertices() {
            for l in 0..data.label_count() as Label + 2 {
                assert!(prepared.signature_covers(v, &[l], &[0]), "v={v} l={l}");
            }
        }
    }

    #[test]
    fn max_nlf_bound_is_tight() {
        let (_q, data) = fixtures::paper_example();
        let prepared = PreparedData::new(data.clone());
        for l in 0..data.label_count() as Label {
            let expected = data
                .vertices()
                .map(|v| data.labeled_degree(v, l) as u32)
                .max()
                .unwrap_or(0);
            assert_eq!(prepared.max_nlf(l), expected, "label {l}");
        }
        // Out-of-range labels are simply 0, not a panic.
        assert_eq!(prepared.max_nlf(999), 0);
    }

    #[test]
    fn stats_and_bytes() {
        let g = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        let prepared = PreparedData::from_graph(&g);
        assert_eq!(prepared.max_degree(), 3);
        assert!(prepared.index_bytes() > 0);
        assert!(prepared.heap_bytes() > prepared.index_bytes());
        assert_eq!(prepared.graph().vertex_count(), 4);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn sig_offset_overflow_is_a_typed_error() {
        // The arena length feeds a u32 offset: the last addressable length is
        // u32::MAX, one past it must surface a typed error (pre-fix, `as u32`
        // silently wrapped it to 0 and built a corrupt arena).
        assert_eq!(checked_sig_offset(u32::MAX as usize), Ok(u32::MAX));
        let entries = u32::MAX as usize + 1;
        let err = checked_sig_offset(entries).unwrap_err();
        assert_eq!(err, PrepareError::SignatureArenaTooLarge { entries });
        assert!(format!("{err}").contains("u32 offset range"));
    }

    #[test]
    fn try_new_matches_new() {
        let (_q, data) = fixtures::paper_example();
        let a = PreparedData::new(data.clone());
        let b = PreparedData::try_new(data).expect("paper example prepares");
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_prepares() {
        let g = crate::GraphBuilder::new().build();
        let prepared = PreparedData::new(g);
        assert_eq!(prepared.max_degree(), 0);
        assert_eq!(prepared.max_nlf(0), 0);
    }
}
