//! Versioned on-disk persistence for [`PreparedData`] (ROADMAP item 5).
//!
//! A production deployment pays the prepare cost once *ever*, not once per
//! process: `gup-match --save-index` persists the prepared index and
//! `--index` loads it on the next start, skipping both text parsing and the
//! `O(|V| + |E|)` signature build. The index is already flat CSR arenas, so the
//! format is a direct little-endian dump of them — no pointers, no compression,
//! mmap-friendly in layout even though the loader currently reads into owned
//! vectors (the workspace has no mmap dependency).
//!
//! ## File layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GUPI"
//! 4       4     format version (u32, currently 1)
//! 8       8     checksum (u64): FNV-1a-64 over every byte from offset 16 to EOF
//! 16      —     payload:
//!               u64 vertex_count, u64 edge_count, u64 max_degree,
//!               then 7 length-prefixed sections in fixed order —
//!               offsets (u64 count, count × u64)      CSR adjacency offsets
//!               neighbors (u64 count, count × u32)    flat adjacency array
//!               labels (u64 count, count × u32)       vertex labels
//!               sig_offsets (u64 count, count × u32)  signature-arena offsets
//!               sig_labels (u64 count, count × u32)   signature labels
//!               sig_counts (u64 count, count × u32)   signature counts
//!               max_nlf (u64 count, count × u32)      per-label max-NLF bound
//! ```
//!
//! ## Versioning and integrity policy
//!
//! * The version is bumped on **any** layout change; the loader rejects every
//!   version other than its own ([`FORMAT_VERSION`]) with
//!   [`IndexIoError::UnsupportedVersion`] — old binaries never mis-parse new
//!   files and vice versa. Re-preparing from the text graph is always possible,
//!   so there is no migration machinery.
//! * The checksum covers the whole payload; a flipped bit anywhere yields
//!   [`IndexIoError::ChecksumMismatch`] before any parsing happens.
//! * After the checksum, the loader still validates every structural invariant
//!   the matcher relies on (monotonic offsets, sorted loop-free symmetric
//!   adjacency, consistent section lengths), so even a hand-crafted file with a
//!   valid checksum cannot produce an index that would panic or mis-match.
//!   Semantic agreement between the signature arena and the graph is *not*
//!   re-derived (that would re-do the prepare work the format exists to skip);
//!   the checksum is the guard against corruption there.
//!
//! The loader is panic-free by construction and gup-lint's `panic_freedom`
//! rule statically gates this module alongside `crates/core` and
//! `crates/serve`.
//!
//! ```
//! use gup_graph::fixtures::paper_example;
//! use gup_graph::{index_io, PreparedData};
//!
//! let (_query, data) = paper_example();
//! let prepared = PreparedData::new(data);
//! let bytes = index_io::write_index_bytes(&prepared);
//! let loaded = index_io::load_index_bytes(&bytes).unwrap();
//! assert_eq!(loaded, prepared);
//! ```

use crate::deadline::Stopwatch;
use crate::prepared::PreparedData;
use crate::types::{Label, VertexId};
use crate::Graph;
use std::path::Path;

/// Magic bytes opening every index file.
pub const MAGIC: [u8; 4] = *b"GUPI";

/// Current (and only supported) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Byte offset where the checksummed payload starts (magic + version + checksum).
pub const HEADER_BYTES: usize = 16;

/// Errors surfaced while writing or reading a persisted index.
#[derive(Debug)]
#[non_exhaustive]
pub enum IndexIoError {
    /// Underlying filesystem I/O failure.
    Io(std::io::Error),
    /// The file does not start with the [`MAGIC`] bytes — not an index file.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// The one version this build reads.
        supported: u32,
    },
    /// The payload does not hash to the checksum recorded in the header.
    ChecksumMismatch {
        /// Checksum stored in the file header.
        stored: u64,
        /// Checksum computed over the payload that was read.
        computed: u64,
    },
    /// The file ends before the named section is complete.
    Truncated {
        /// Section (or header field) that was cut short.
        section: &'static str,
    },
    /// A section's length prefix claims more bytes than the file holds.
    SectionOverrun {
        /// Section whose declared length overruns the payload.
        section: &'static str,
    },
    /// A structural invariant of the index does not hold (e.g. non-monotonic
    /// offsets, an out-of-range neighbor, inconsistent section lengths).
    Invalid {
        /// Section in which the violation was detected.
        section: &'static str,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl std::fmt::Display for IndexIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexIoError::Io(e) => write!(f, "index I/O error: {e}"),
            IndexIoError::BadMagic { found } => {
                write!(f, "not a GuP index file (magic bytes {found:?})")
            }
            IndexIoError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported index format version {found} (this build reads version {supported})"
            ),
            IndexIoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "index checksum mismatch: header records {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            IndexIoError::Truncated { section } => {
                write!(f, "index file truncated in section '{section}'")
            }
            IndexIoError::SectionOverrun { section } => write!(
                f,
                "index section '{section}' declares more bytes than the file holds"
            ),
            IndexIoError::Invalid { section, reason } => {
                write!(f, "invalid index section '{section}': {reason}")
            }
        }
    }
}

impl std::error::Error for IndexIoError {}

impl From<std::io::Error> for IndexIoError {
    fn from(e: std::io::Error) -> Self {
        IndexIoError::Io(e)
    }
}

/// FNV-1a 64-bit hash over 8-byte little-endian words (the final partial word
/// zero-padded) — the checksum recorded in the index header. Word-wise rather
/// than byte-wise keeps the verification pass an order of magnitude cheaper
/// than the preparation it replaces; any flipped bit still changes its word.
/// Exposed so external tooling (and the corruption tests) can reseal a payload.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for word in &mut chunks {
        h ^= le_u64(word);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        h ^= le_u64(tail); // le_u64 zero-pads short input
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn invalid(section: &'static str, reason: impl Into<String>) -> IndexIoError {
    IndexIoError::Invalid {
        section,
        reason: reason.into(),
    }
}

// --- writing ---------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32_section(out: &mut Vec<u8>, values: &[u32]) {
    push_u64(out, values.len() as u64);
    for &v in values {
        push_u32(out, v);
    }
}

/// Serializes a prepared index into the on-disk byte format (header included).
pub fn write_index_bytes(prepared: &PreparedData) -> Vec<u8> {
    let graph = prepared.graph();
    let (sig_offsets, sig_labels, sig_counts, max_nlf) = prepared.sig_parts();
    let mut payload = Vec::with_capacity(
        3 * 8
            + 7 * 8
            + graph.csr_offsets().len() * 8
            + graph.csr_neighbors().len() * 4
            + graph.labels().len() * 4
            + sig_offsets.len() * 4
            + sig_labels.len() * 4
            + sig_counts.len() * 4
            + max_nlf.len() * 4,
    );
    push_u64(&mut payload, graph.vertex_count() as u64);
    push_u64(&mut payload, graph.edge_count() as u64);
    push_u64(&mut payload, prepared.max_degree() as u64);
    push_u64(&mut payload, graph.csr_offsets().len() as u64);
    for &o in graph.csr_offsets() {
        push_u64(&mut payload, o as u64);
    }
    push_u32_section(&mut payload, graph.csr_neighbors());
    push_u32_section(&mut payload, graph.labels());
    push_u32_section(&mut payload, sig_offsets);
    push_u32_section(&mut payload, sig_labels);
    push_u32_section(&mut payload, sig_counts);
    push_u32_section(&mut payload, max_nlf);

    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, FORMAT_VERSION);
    push_u64(&mut out, checksum(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Saves a prepared index to `path` in the versioned binary format.
pub fn save_index<P: AsRef<Path>>(prepared: &PreparedData, path: P) -> Result<(), IndexIoError> {
    std::fs::write(path, write_index_bytes(prepared))?;
    Ok(())
}

// --- reading ---------------------------------------------------------------

/// Bounds-checked little-endian reader over the payload. Every read names the
/// section it serves so errors point at the right part of the file.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    fn take(&mut self, len: usize, section: &'static str) -> Result<&'a [u8], IndexIoError> {
        if len > self.remaining() {
            return Err(IndexIoError::Truncated { section });
        }
        let start = self.pos;
        self.pos += len;
        Ok(self.bytes.get(start..self.pos).unwrap_or(&[]))
    }

    fn u64(&mut self, section: &'static str) -> Result<u64, IndexIoError> {
        Ok(le_u64(self.take(8, section)?))
    }

    /// Reads one length-prefixed section of `u32` values. A length prefix whose
    /// byte size exceeds the remaining payload is a [`IndexIoError::SectionOverrun`]
    /// (distinguished from plain truncation so corruption reports are precise).
    fn u32_section(&mut self, section: &'static str) -> Result<Vec<u32>, IndexIoError> {
        let count = self.len_prefix(4, section)?;
        let raw = self.take(count * 4, section)?;
        Ok(raw.chunks_exact(4).map(le_u32).collect())
    }

    /// Reads one length-prefixed section of `u64` values.
    fn u64_section(&mut self, section: &'static str) -> Result<Vec<u64>, IndexIoError> {
        let count = self.len_prefix(8, section)?;
        let raw = self.take(count * 8, section)?;
        Ok(raw.chunks_exact(8).map(le_u64).collect())
    }

    /// Reads a section's element count and checks `count * elem_bytes` fits in
    /// the remaining payload before anything is allocated.
    fn len_prefix(
        &mut self,
        elem_bytes: usize,
        section: &'static str,
    ) -> Result<usize, IndexIoError> {
        let count = self.u64(section)?;
        let count: usize = count
            .try_into()
            .map_err(|_| IndexIoError::SectionOverrun { section })?;
        let byte_len = count
            .checked_mul(elem_bytes)
            .ok_or(IndexIoError::SectionOverrun { section })?;
        if byte_len > self.remaining() {
            return Err(IndexIoError::SectionOverrun { section });
        }
        Ok(count)
    }
}

fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u32::from_le_bytes(a)
}

fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    for (d, s) in a.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from_le_bytes(a)
}

fn to_usize(v: u64, section: &'static str) -> Result<usize, IndexIoError> {
    v.try_into()
        .map_err(|_| invalid(section, format!("value {v} does not fit in usize")))
}

/// Parses a prepared index from in-memory bytes in the on-disk format,
/// verifying the header, the checksum, and every structural invariant.
pub fn load_index_bytes(bytes: &[u8]) -> Result<PreparedData, IndexIoError> {
    let watch = Stopwatch::started();

    // Header: magic, version, checksum — each rejected before the next is read.
    let mut header = Cursor::new(bytes);
    let magic = header.take(4, "magic")?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        for (d, s) in found.iter_mut().zip(magic) {
            *d = *s;
        }
        return Err(IndexIoError::BadMagic { found });
    }
    let version = le_u32(header.take(4, "version")?);
    if version != FORMAT_VERSION {
        return Err(IndexIoError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let stored = header.u64("checksum")?;
    let payload = bytes.get(HEADER_BYTES..).unwrap_or(&[]);
    let computed = checksum(payload);
    if stored != computed {
        return Err(IndexIoError::ChecksumMismatch { stored, computed });
    }

    // Payload sections, fixed order.
    let mut cur = Cursor::new(payload);
    let n = to_usize(cur.u64("vertex_count")?, "vertex_count")?;
    let edge_count = to_usize(cur.u64("edge_count")?, "edge_count")?;
    let max_degree = to_usize(cur.u64("max_degree")?, "max_degree")?;
    let offsets_raw = cur.u64_section("offsets")?;
    let neighbors = cur.u32_section("neighbors")?;
    let labels = cur.u32_section("labels")?;
    let sig_offsets = cur.u32_section("sig_offsets")?;
    let sig_labels = cur.u32_section("sig_labels")?;
    let sig_counts = cur.u32_section("sig_counts")?;
    let max_nlf = cur.u32_section("max_nlf")?;
    if cur.remaining() != 0 {
        return Err(invalid(
            "trailer",
            format!("{} unexpected trailing bytes", cur.remaining()),
        ));
    }

    // Structural validation: everything the matcher's unchecked slicing relies on.
    if labels.len() != n {
        return Err(invalid(
            "labels",
            format!("{} labels for {n} vertices", labels.len()),
        ));
    }
    if offsets_raw.len() != n + 1 {
        return Err(invalid(
            "offsets",
            format!(
                "{} offsets for {n} vertices (need {})",
                offsets_raw.len(),
                n + 1
            ),
        ));
    }
    let mut offsets = Vec::with_capacity(offsets_raw.len());
    for &o in &offsets_raw {
        offsets.push(to_usize(o, "offsets")?);
    }
    validate_csr_offsets(&offsets, neighbors.len(), "offsets")?;
    if neighbors.len() % 2 != 0 || edge_count != neighbors.len() / 2 {
        return Err(invalid(
            "neighbors",
            format!(
                "edge count {edge_count} disagrees with {} adjacency entries",
                neighbors.len()
            ),
        ));
    }
    validate_adjacency(&offsets, &neighbors, n)?;
    let declared_max_degree = offsets
        .windows(2)
        .map(|w| w[1].saturating_sub(w[0]))
        .max()
        .unwrap_or(0);
    if max_degree != declared_max_degree {
        return Err(invalid(
            "max_degree",
            format!("recorded {max_degree}, adjacency implies {declared_max_degree}"),
        ));
    }

    if sig_offsets.len() != n + 1 {
        return Err(invalid(
            "sig_offsets",
            format!(
                "{} offsets for {n} vertices (need {})",
                sig_offsets.len(),
                n + 1
            ),
        ));
    }
    if sig_counts.len() != sig_labels.len() {
        return Err(invalid(
            "sig_counts",
            format!(
                "{} counts for {} signature labels",
                sig_counts.len(),
                sig_labels.len()
            ),
        ));
    }
    let sig_offsets_usize: Vec<usize> = sig_offsets.iter().map(|&o| o as usize).collect();
    validate_csr_offsets(&sig_offsets_usize, sig_labels.len(), "sig_offsets")?;
    validate_signatures(&sig_offsets_usize, &sig_labels, &sig_counts)?;

    // The label index is derived, not stored: `from_csr` rebuilds it. Its size is
    // the max label + 1, so bound the stored labels by what max_nlf declares.
    let label_count = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    if max_nlf.len() != label_count {
        return Err(invalid(
            "max_nlf",
            format!("{} max-NLF bounds for {label_count} labels", max_nlf.len()),
        ));
    }
    if let Some(&l) = sig_labels.iter().find(|&&l| (l as usize) >= label_count) {
        return Err(invalid(
            "sig_labels",
            format!("signature label {l} out of range {label_count}"),
        ));
    }

    let graph = Graph::from_csr(offsets, neighbors, labels, edge_count);
    Ok(PreparedData::from_parts(
        graph,
        sig_offsets,
        sig_labels,
        sig_counts,
        max_nlf,
        max_degree,
        watch.elapsed(),
    ))
}

/// Loads a prepared index from `path`, verifying header, checksum, and
/// structure. The returned index's [`PreparedData::prep_time`] records the load
/// wall time — the warm-start cost that replaces the cold prepare.
pub fn load_index<P: AsRef<Path>>(path: P) -> Result<PreparedData, IndexIoError> {
    let bytes = std::fs::read(path)?;
    load_index_bytes(&bytes)
}

/// CSR offset array validation: starts at 0, non-decreasing, ends exactly at
/// the target array's length.
fn validate_csr_offsets(
    offsets: &[usize],
    target_len: usize,
    section: &'static str,
) -> Result<(), IndexIoError> {
    if offsets.first() != Some(&0) {
        return Err(invalid(section, "first offset is not 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid(
            section,
            "offsets are not monotonically non-decreasing",
        ));
    }
    if offsets.last().copied() != Some(target_len) {
        return Err(invalid(
            section,
            format!(
                "last offset {} does not match section length {target_len}",
                offsets.last().copied().unwrap_or(0)
            ),
        ));
    }
    Ok(())
}

/// Adjacency validation: every list sorted strictly ascending (no duplicates),
/// no self loops, endpoints in range, and every edge present in both
/// directions (the matcher's binary searches assume symmetry).
///
/// Symmetry is checked by building the transpose with a counting sort and
/// comparing it with the original — O(n + m) with sequential access, an order
/// of magnitude cheaper than per-edge binary searches on large indexes (the
/// loader must stay cheaper than the preparation pass it replaces).
fn validate_adjacency(
    offsets: &[usize],
    neighbors: &[VertexId],
    n: usize,
) -> Result<(), IndexIoError> {
    let list = |v: usize| -> &[VertexId] {
        let lo = offsets.get(v).copied().unwrap_or(0);
        let hi = offsets.get(v + 1).copied().unwrap_or(lo);
        neighbors.get(lo..hi).unwrap_or(&[])
    };
    for v in 0..n {
        let adj = list(v);
        if adj.windows(2).any(|w| w[0] >= w[1]) {
            return Err(invalid(
                "neighbors",
                format!("adjacency of vertex {v} is not sorted strictly ascending"),
            ));
        }
        for &w in adj {
            if w as usize >= n {
                return Err(invalid(
                    "neighbors",
                    format!("vertex {v} lists out-of-range neighbor {w}"),
                ));
            }
            if w as usize == v {
                return Err(invalid(
                    "neighbors",
                    format!("vertex {v} lists a self loop"),
                ));
            }
        }
    }
    // A sorted-per-list adjacency is symmetric iff it equals its own transpose:
    // appending `v` (ascending) to each neighbor's bucket yields the transpose
    // with every bucket already sorted, so one array comparison decides it.
    let mut cursor = vec![0usize; n];
    for &w in neighbors {
        if let Some(c) = cursor.get_mut(w as usize) {
            *c += 1;
        }
    }
    let mut total = 0usize;
    for (v, c) in cursor.iter_mut().enumerate() {
        let indegree = *c;
        *c = total;
        total = total.saturating_add(indegree);
        let degree = list(v).len();
        if indegree != degree {
            return Err(invalid(
                "neighbors",
                format!("vertex {v} has degree {degree} but is listed {indegree} times"),
            ));
        }
    }
    let mut transpose = vec![0 as VertexId; neighbors.len()];
    for v in 0..n {
        for &w in list(v) {
            if let Some(c) = cursor.get_mut(w as usize) {
                if let Some(slot) = transpose.get_mut(*c) {
                    *slot = v as VertexId;
                }
                *c += 1;
            }
        }
    }
    if transpose != neighbors {
        // The mismatch pinpoints one asymmetric edge for the error message.
        for v in 0..n {
            for &w in list(v) {
                if list(w as usize).binary_search(&(v as VertexId)).is_err() {
                    return Err(invalid(
                        "neighbors",
                        format!("edge ({v}, {w}) is not symmetric"),
                    ));
                }
            }
        }
        return Err(invalid("neighbors", "adjacency is not symmetric"));
    }
    Ok(())
}

/// Signature arena validation: per-vertex label slices sorted strictly
/// ascending with positive counts (signatures store only positive counts).
fn validate_signatures(
    sig_offsets: &[usize],
    sig_labels: &[Label],
    sig_counts: &[u32],
) -> Result<(), IndexIoError> {
    for (v, w) in sig_offsets.windows(2).enumerate() {
        let slice = sig_labels.get(w[0]..w[1]).unwrap_or(&[]);
        if slice.windows(2).any(|p| p[0] >= p[1]) {
            return Err(invalid(
                "sig_labels",
                format!("signature of vertex {v} is not sorted strictly ascending"),
            ));
        }
    }
    if sig_counts.contains(&0) {
        return Err(invalid("sig_counts", "signature stores a zero count"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::fixtures;

    fn prepared_fixture() -> PreparedData {
        let (_q, data) = fixtures::paper_example();
        PreparedData::new(data)
    }

    #[test]
    fn roundtrip_in_memory() {
        let prepared = prepared_fixture();
        let bytes = write_index_bytes(&prepared);
        let loaded = load_index_bytes(&bytes).expect("roundtrip loads");
        assert_eq!(loaded, prepared);
    }

    #[test]
    fn roundtrip_empty_graph() {
        let prepared = PreparedData::new(crate::GraphBuilder::new().build());
        let loaded = load_index_bytes(&write_index_bytes(&prepared)).expect("empty loads");
        assert_eq!(loaded, prepared);
    }

    #[test]
    fn roundtrip_through_file() {
        let prepared = prepared_fixture();
        let path = std::env::temp_dir().join(format!("gup_index_io_{}.gupi", std::process::id()));
        save_index(&prepared, &path).expect("save");
        let loaded = load_index(&path);
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.expect("load"), prepared);
    }

    #[test]
    fn load_records_wall_time_not_prepare_time() {
        let prepared = prepared_fixture();
        let loaded = load_index_bytes(&write_index_bytes(&prepared)).expect("loads");
        // Equality ignores prep_time; the loaded one must still carry a
        // measurement of its own (possibly sub-microsecond, but tracked).
        assert_eq!(loaded, prepared);
        let _ = loaded.prep_time();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = write_index_bytes(&prepared_fixture());
        bytes[0] = b'X';
        assert!(matches!(
            load_index_bytes(&bytes),
            Err(IndexIoError::BadMagic { .. })
        ));
        let mut bytes = write_index_bytes(&prepared_fixture());
        bytes[4] = FORMAT_VERSION as u8 + 1;
        assert!(matches!(
            load_index_bytes(&bytes),
            Err(IndexIoError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));
    }

    #[test]
    fn rejects_missing_file() {
        let err = load_index("/nonexistent/gup.gupi").expect_err("missing file");
        assert!(matches!(err, IndexIoError::Io(_)));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let prepared = prepared_fixture();
        let mut bytes = write_index_bytes(&prepared);
        bytes.push(0);
        // The trailing byte also breaks the checksum; reseal to reach the parser.
        let fixed = checksum(&bytes[HEADER_BYTES..]);
        bytes[8..16].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            load_index_bytes(&bytes),
            Err(IndexIoError::Invalid {
                section: "trailer",
                ..
            })
        ));
    }

    #[test]
    fn rejects_asymmetric_adjacency() {
        // Hand-build CSR parts where 0 lists 1 but 1 does not list 0, then
        // serialize via a legitimately prepared graph and splice. Simpler: craft
        // the payload through a prepared graph, then corrupt one neighbor entry
        // and reseal the checksum so only structural validation can catch it.
        let g = graph_from_edges(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let prepared = PreparedData::new(g);
        let mut bytes = write_index_bytes(&prepared);
        // Payload layout: 3 u64s, offsets (u64 count + 4 u64), then the
        // neighbors count (u64) and the first neighbor (u32). Rewrite the first
        // neighbor (vertex 0's single neighbor, id 1) to id 2 — still in range
        // and sorted, but edge (0,2) is not symmetric.
        let first_neighbor = HEADER_BYTES + 3 * 8 + 8 + 4 * 8 + 8;
        bytes[first_neighbor..first_neighbor + 4].copy_from_slice(&2u32.to_le_bytes());
        let fixed = checksum(&bytes[HEADER_BYTES..]);
        bytes[8..16].copy_from_slice(&fixed.to_le_bytes());
        let err = load_index_bytes(&bytes).expect_err("asymmetric adjacency");
        assert!(
            matches!(
                err,
                IndexIoError::Invalid {
                    section: "neighbors",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            format!("{}", IndexIoError::BadMagic { found: *b"abcd" }),
            format!(
                "{}",
                IndexIoError::UnsupportedVersion {
                    found: 9,
                    supported: FORMAT_VERSION
                }
            ),
            format!(
                "{}",
                IndexIoError::ChecksumMismatch {
                    stored: 1,
                    computed: 2
                }
            ),
            format!("{}", IndexIoError::Truncated { section: "labels" }),
            format!("{}", IndexIoError::SectionOverrun { section: "labels" }),
            format!("{}", invalid("offsets", "first offset is not 0")),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
        assert!(format!("{}", IndexIoError::Truncated { section: "labels" }).contains("labels"));
    }

    #[test]
    fn checksum_is_fnv1a() {
        // Pinned reference values keep the on-disk format stable across refactors.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
