//! Core scalar types shared across the workspace.
//!
//! Data-graph vertex ids and labels are `u32` to halve memory traffic versus `usize`
//! (data graphs in the paper go up to ~3.8 M vertices / 16.5 M edges, well within
//! `u32`).  Query-vertex sets are fixed-width bitsets because the matcher relies on
//! O(1) set operations for its complexity bounds (§3.6 of the paper). The width is a
//! **const generic**: `QVSet<W>` stores `W` 64-bit words, and the engine is
//! monomorphized per width, so the one-word fast path ([`Qv64`]) compiles to exactly
//! the single-`u64` arithmetic the paper assumes while [`Qv128`]/[`Qv256`] open the
//! door to large template queries (65–256 vertices).

/// Identifier of a vertex in a data graph or a query graph.
pub type VertexId = u32;

/// Vertex label. Labels are dense small integers (the loaders remap arbitrary label
/// strings/ids into a dense range).
pub type Label = u32;

/// Maximum number of query vertices supported by any bitset width ([`Qv256`]).
/// Queries beyond this are rejected at the API boundary
/// (`QueryGraphError::TooLarge`); widths beyond 256 are a recorded follow-on
/// (ROADMAP "Open items").
pub const MAX_QUERY_VERTICES: usize = 256;

/// Number of 64-bit words needed to hold a set of `n` query vertices (at least 1).
#[inline]
pub const fn words_for(n: usize) -> usize {
    let w = n.div_ceil(64);
    if w == 0 {
        1
    } else {
        w
    }
}

/// A set of query vertices represented as a `W`-word bitmask (64 vertices per word).
///
/// Used for conflict masks, deadend masks, bounding sets, and nogood-guard domains.
/// All operations are O(W) with `W` a compile-time constant — O(1) for any fixed
/// width, matching the paper's assumption that "a bit vector of length |V_Q| takes
/// O(1) space and O(1) time for set operations". The default width `W = 1` (the
/// [`Qv64`] alias) is the zero-cost fast path: every loop below is over a
/// length-known-at-compile-time array and unrolls to the same single-`u64`
/// instructions the pre-generic implementation emitted.
///
/// # Bounds
///
/// Members must be `< Self::CAPACITY` (`64 * W`). The constructors
/// ([`QVSet::singleton`], [`QVSet::all_below`]) enforce this in **every** build
/// profile — a wrapped shift in a release build would silently alias vertex
/// `CAPACITY` with vertex `CAPACITY - 64`. The hot-path mutators
/// (`insert`/`with`/`without`/`remove`) only `debug_assert!` it; they are safe
/// because every index reaching them is a query-vertex id, and `QueryGraph`
/// construction plus the per-width validation in `Gcs`/`OrderedQuery` reject
/// queries wider than the instantiated bitset at the API boundary.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct QVSet<const W: usize = 1>([u64; W]);

/// One-word query-vertex set: queries of at most 64 vertices (every workload in the
/// paper). This is the default width and the zero-cost fast path.
pub type Qv64 = QVSet<1>;

/// Two-word query-vertex set: queries of at most 128 vertices.
pub type Qv128 = QVSet<2>;

/// Four-word query-vertex set: queries of at most 256 vertices (the current
/// engine-wide ceiling, [`MAX_QUERY_VERTICES`]).
pub type Qv256 = QVSet<4>;

impl<const W: usize> QVSet<W> {
    /// Number of query vertices this width can represent.
    pub const CAPACITY: usize = 64 * W;

    /// The empty set.
    pub const EMPTY: QVSet<W> = QVSet([0; W]);

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        QVSet([0; W])
    }

    /// Creates a set containing the single query vertex `i`.
    ///
    /// # Panics
    /// When `i >= Self::CAPACITY`, in release builds too (a wrapped shift or an
    /// out-of-bounds word index would silently produce the wrong set).
    #[inline]
    pub fn singleton(i: usize) -> Self {
        assert!(
            i < Self::CAPACITY,
            "query vertex {i} out of range (max {})",
            Self::CAPACITY
        );
        let mut words = [0u64; W];
        words[i >> 6] = 1u64 << (i & 63);
        QVSet(words)
    }

    /// Creates a set containing all query vertices `0..n`.
    ///
    /// # Panics
    /// When `n > Self::CAPACITY`, in release builds too.
    #[inline]
    pub fn all_below(n: usize) -> Self {
        assert!(
            n <= Self::CAPACITY,
            "query size {n} out of range (max {})",
            Self::CAPACITY
        );
        let mut words = [0u64; W];
        let mut w = 0;
        while w * 64 < n {
            let remaining = n - w * 64;
            words[w] = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
            w += 1;
        }
        QVSet(words)
    }

    /// Raw word representation (`words()[i >> 6] >> (i & 63) & 1` is membership).
    #[inline]
    pub const fn words(self) -> [u64; W] {
        self.0
    }

    /// Builds a set from a raw word representation.
    #[inline]
    pub const fn from_words(words: [u64; W]) -> Self {
        QVSet(words)
    }

    /// Returns `true` when the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        let mut w = 0;
        while w < W {
            if self.0[w] != 0 {
                return false;
            }
            w += 1;
        }
        true
    }

    /// Number of query vertices in the set.
    #[inline]
    pub const fn len(self) -> usize {
        let mut n = 0;
        let mut w = 0;
        while w < W {
            n += self.0[w].count_ones() as usize;
            w += 1;
        }
        n
    }

    /// Adds query vertex `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < Self::CAPACITY);
        self.0[i >> 6] |= 1u64 << (i & 63);
    }

    /// Removes query vertex `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < Self::CAPACITY);
        self.0[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        if i >= Self::CAPACITY {
            return false;
        }
        (self.0[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: QVSet<W>) -> QVSet<W> {
        let mut words = self.0;
        let mut w = 0;
        while w < W {
            words[w] |= other.0[w];
            w += 1;
        }
        QVSet(words)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: QVSet<W>) -> QVSet<W> {
        let mut words = self.0;
        let mut w = 0;
        while w < W {
            words[w] &= other.0[w];
            w += 1;
        }
        QVSet(words)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub const fn difference(self, other: QVSet<W>) -> QVSet<W> {
        let mut words = self.0;
        let mut w = 0;
        while w < W {
            words[w] &= !other.0[w];
            w += 1;
        }
        QVSet(words)
    }

    /// Returns `self \ {i}` without mutating.
    #[inline]
    pub fn without(self, i: usize) -> QVSet<W> {
        debug_assert!(i < Self::CAPACITY);
        let mut words = self.0;
        words[i >> 6] &= !(1u64 << (i & 63));
        QVSet(words)
    }

    /// Returns `self ∪ {i}` without mutating.
    #[inline]
    pub fn with(self, i: usize) -> QVSet<W> {
        debug_assert!(i < Self::CAPACITY);
        let mut words = self.0;
        words[i >> 6] |= 1u64 << (i & 63);
        QVSet(words)
    }

    /// Subset test: is `self ⊆ other`?
    #[inline]
    pub const fn is_subset_of(self, other: QVSet<W>) -> bool {
        let mut w = 0;
        while w < W {
            if self.0[w] & !other.0[w] != 0 {
                return false;
            }
            w += 1;
        }
        true
    }

    /// Restriction to query vertices with index `< i` (the paper's `[: i]` filtering).
    #[inline]
    pub fn below(self, i: usize) -> QVSet<W> {
        self.intersection(QVSet::all_below(i))
    }

    /// Largest element of the set, if any.
    #[inline]
    pub fn max(self) -> Option<usize> {
        let mut w = W;
        while w > 0 {
            w -= 1;
            if self.0[w] != 0 {
                return Some(w * 64 + 63 - self.0[w].leading_zeros() as usize);
            }
        }
        None
    }

    /// Smallest element of the set, if any.
    #[inline]
    pub fn min(self) -> Option<usize> {
        let mut w = 0;
        while w < W {
            if self.0[w] != 0 {
                return Some(w * 64 + self.0[w].trailing_zeros() as usize);
            }
            w += 1;
        }
        None
    }

    /// Iterates over the members in ascending order.
    #[inline]
    pub fn iter(self) -> QVSetIter<W> {
        QVSetIter {
            words: self.0,
            w: 0,
        }
    }
}

impl Qv64 {
    /// Raw bit representation (one-word sets only; the generic accessor is
    /// [`QVSet::words`]).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0[0]
    }

    /// Builds a one-word set from a raw bit representation.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        QVSet([bits])
    }
}

impl<const W: usize> Default for QVSet<W> {
    fn default() -> Self {
        QVSet::EMPTY
    }
}

impl<const W: usize> std::fmt::Debug for QVSet<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "u{i}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl<const W: usize> FromIterator<usize> for QVSet<W> {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = QVSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl<const W: usize> std::ops::BitOr for QVSet<W> {
    type Output = QVSet<W>;
    #[inline]
    fn bitor(self, rhs: QVSet<W>) -> QVSet<W> {
        self.union(rhs)
    }
}

impl<const W: usize> std::ops::BitOrAssign for QVSet<W> {
    #[inline]
    fn bitor_assign(&mut self, rhs: QVSet<W>) {
        for w in 0..W {
            self.0[w] |= rhs.0[w];
        }
    }
}

impl<const W: usize> std::ops::BitAnd for QVSet<W> {
    type Output = QVSet<W>;
    #[inline]
    fn bitand(self, rhs: QVSet<W>) -> QVSet<W> {
        self.intersection(rhs)
    }
}

/// Iterator over the members of a [`QVSet`].
pub struct QVSetIter<const W: usize> {
    words: [u64; W],
    w: usize,
}

impl<const W: usize> Iterator for QVSetIter<W> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.w < W {
            let word = self.words[self.w];
            if word != 0 {
                let i = word.trailing_zeros() as usize;
                self.words[self.w] &= word - 1;
                return Some(self.w * 64 + i);
            }
            self.w += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.w..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for QVSetIter<W> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let s = Qv64::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.iter().count(), 0);
        assert!(s.is_subset_of(QVSet::new()));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = Qv64::new();
        s.insert(3);
        s.insert(17);
        s.insert(63);
        assert!(s.contains(3));
        assert!(s.contains(17));
        assert!(s.contains(63));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 3);
        s.remove(17);
        assert!(!s.contains(17));
        assert_eq!(s.len(), 2);
        // Removing an element not in the set is a no-op.
        s.remove(17);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_intersection_difference() {
        let a = Qv64::from_iter([0, 1, 2, 5]);
        let b = Qv64::from_iter([2, 5, 9]);
        assert_eq!(a.union(b), QVSet::from_iter([0, 1, 2, 5, 9]));
        assert_eq!(a.intersection(b), QVSet::from_iter([2, 5]));
        assert_eq!(a.difference(b), QVSet::from_iter([0, 1]));
        assert_eq!(b.difference(a), QVSet::from_iter([9]));
    }

    #[test]
    fn subset_and_below() {
        let a = Qv64::from_iter([1, 3, 7]);
        let b = Qv64::from_iter([0, 1, 3, 7, 8]);
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert_eq!(a.below(4), QVSet::from_iter([1, 3]));
        assert_eq!(a.below(0), QVSet::EMPTY);
        assert_eq!(b.below(64), b);
    }

    #[test]
    fn all_below_boundaries() {
        assert_eq!(Qv64::all_below(0), QVSet::EMPTY);
        assert_eq!(Qv64::all_below(1), QVSet::singleton(0));
        assert_eq!(Qv64::all_below(64).len(), 64);
        assert_eq!(Qv64::all_below(32).len(), 32);
    }

    #[test]
    fn min_max_iter_order() {
        let s = Qv64::from_iter([40, 2, 9]);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(40));
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![2, 9, 40]);
    }

    #[test]
    fn with_without_do_not_mutate() {
        let s = Qv64::from_iter([1, 2]);
        let t = s.with(5);
        let u = s.without(2);
        assert_eq!(s, QVSet::from_iter([1, 2]));
        assert_eq!(t, QVSet::from_iter([1, 2, 5]));
        assert_eq!(u, QVSet::from_iter([1]));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = Qv64::from_iter([0, 2]);
        assert_eq!(format!("{s:?}"), "{u0,u2}");
    }

    /// Regression for the release-mode shift wrap: `singleton(CAPACITY)` must panic
    /// (not silently alias a lower vertex) in **every** build profile.
    /// `debug_assert!` alone would let the word index or `1u64 << 64` wrap with
    /// `--release`.
    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_singleton_panics_in_release_too() {
        let _ = Qv64::singleton(Qv64::CAPACITY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_all_below_panics_in_release_too() {
        let _ = Qv64::all_below(Qv64::CAPACITY + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_singleton_panics_at_wide_widths_too() {
        let _ = Qv256::singleton(Qv256::CAPACITY);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_all_below_panics_at_wide_widths_too() {
        let _ = Qv128::all_below(Qv128::CAPACITY + 1);
    }

    #[test]
    fn operators_match_methods() {
        let a = Qv64::from_iter([0, 1]);
        let b = Qv64::from_iter([1, 2]);
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        let mut c = a;
        c |= b;
        assert_eq!(c, a.union(b));
    }

    #[test]
    fn multi_word_cross_word_membership() {
        let mut s = Qv256::new();
        for i in [0, 63, 64, 127, 128, 191, 192, 255] {
            s.insert(i);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.min(), Some(0));
        assert_eq!(s.max(), Some(255));
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 63, 64, 127, 128, 191, 192, 255]);
        assert_eq!(s.below(128), QVSet::from_iter([0, 63, 64, 127]));
        s.remove(128);
        assert!(!s.contains(128));
        assert!(s.contains(191));
    }

    #[test]
    fn multi_word_all_below_spans_words() {
        let s = Qv128::all_below(100);
        assert_eq!(s.len(), 100);
        assert!(s.contains(0));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.contains(99));
        assert!(!s.contains(100));
        assert_eq!(Qv128::all_below(128).len(), 128);
        assert_eq!(Qv256::all_below(64), Qv256::from_iter(0..64));
    }

    #[test]
    fn words_for_rounding() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
        assert_eq!(words_for(256), 4);
    }

    #[test]
    fn words_roundtrip_and_bits_compat() {
        let s = Qv64::from_bits(0b1011);
        assert_eq!(s.bits(), 0b1011);
        assert_eq!(s, QVSet::from_iter([0, 1, 3]));
        let wide = Qv256::from_words([1, 2, 0, 1 << 63]);
        assert_eq!(wide.words(), [1, 2, 0, 1 << 63]);
        assert_eq!(wide, QVSet::from_iter([0, 65, 255]));
    }
}
