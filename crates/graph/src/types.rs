//! Core scalar types shared across the workspace.
//!
//! Data-graph vertex ids and labels are `u32` to halve memory traffic versus `usize`
//! (data graphs in the paper go up to ~3.8 M vertices / 16.5 M edges, well within
//! `u32`).  Query-vertex sets are 64-bit bitsets because every workload in the paper
//! uses queries of at most 32 vertices; the matcher relies on O(1) set operations for
//! its complexity bounds (§3.6 of the paper).

/// Identifier of a vertex in a data graph or a query graph.
pub type VertexId = u32;

/// Vertex label. Labels are dense small integers (the loaders remap arbitrary label
/// strings/ids into a dense range).
pub type Label = u32;

/// Maximum number of query vertices supported by the bitset-based masks.
pub const MAX_QUERY_VERTICES: usize = 64;

/// A set of query vertices represented as a 64-bit bitmask.
///
/// Used for conflict masks, deadend masks, bounding sets, and nogood-guard domains.
/// All operations are O(1), matching the paper's assumption that "a bit vector of
/// length |V_Q| takes O(1) space and O(1) time for set operations".
///
/// # Bounds
///
/// Members must be `< MAX_QUERY_VERTICES`. The constructors ([`QVSet::singleton`],
/// [`QVSet::all_below`]) enforce this in **every** build profile — a wrapped shift in
/// a release build would silently alias vertex 64 with vertex 0. The hot-path
/// mutators (`insert`/`with`/`without`/`remove`) only `debug_assert!` it; they are
/// safe because every index reaching them is a query-vertex id, and `QueryGraph`
/// construction rejects queries with more than `MAX_QUERY_VERTICES` vertices at the
/// API boundary (`QueryGraphError::TooLarge`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QVSet(u64);

impl QVSet {
    /// The empty set.
    pub const EMPTY: QVSet = QVSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn new() -> Self {
        QVSet(0)
    }

    /// Creates a set containing the single query vertex `i`.
    ///
    /// # Panics
    /// When `i >= MAX_QUERY_VERTICES`, in release builds too (a wrapped shift would
    /// silently produce the wrong set).
    #[inline]
    pub fn singleton(i: usize) -> Self {
        assert!(
            i < MAX_QUERY_VERTICES,
            "query vertex {i} out of range (max {MAX_QUERY_VERTICES})"
        );
        QVSet(1u64 << i)
    }

    /// Creates a set containing all query vertices `0..n`.
    ///
    /// # Panics
    /// When `n > MAX_QUERY_VERTICES`, in release builds too.
    #[inline]
    pub fn all_below(n: usize) -> Self {
        assert!(
            n <= MAX_QUERY_VERTICES,
            "query size {n} out of range (max {MAX_QUERY_VERTICES})"
        );
        if n >= 64 {
            QVSet(u64::MAX)
        } else {
            QVSet((1u64 << n) - 1)
        }
    }

    /// Raw bit representation.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Builds a set from a raw bit representation.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        QVSet(bits)
    }

    /// Returns `true` when the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of query vertices in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Adds query vertex `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < MAX_QUERY_VERTICES);
        self.0 |= 1u64 << i;
    }

    /// Removes query vertex `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < MAX_QUERY_VERTICES);
        self.0 &= !(1u64 << i);
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Set union.
    #[inline]
    pub const fn union(self, other: QVSet) -> QVSet {
        QVSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub const fn intersection(self, other: QVSet) -> QVSet {
        QVSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub const fn difference(self, other: QVSet) -> QVSet {
        QVSet(self.0 & !other.0)
    }

    /// Returns `self \ {i}` without mutating.
    #[inline]
    pub fn without(self, i: usize) -> QVSet {
        debug_assert!(i < MAX_QUERY_VERTICES);
        QVSet(self.0 & !(1u64 << i))
    }

    /// Returns `self ∪ {i}` without mutating.
    #[inline]
    pub fn with(self, i: usize) -> QVSet {
        debug_assert!(i < MAX_QUERY_VERTICES);
        QVSet(self.0 | (1u64 << i))
    }

    /// Subset test: is `self ⊆ other`?
    #[inline]
    pub const fn is_subset_of(self, other: QVSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Restriction to query vertices with index `< i` (the paper's `[: i]` filtering).
    #[inline]
    pub fn below(self, i: usize) -> QVSet {
        QVSet(self.0 & QVSet::all_below(i).0)
    }

    /// Largest element of the set, if any.
    #[inline]
    pub fn max(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// Smallest element of the set, if any.
    #[inline]
    pub fn min(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterates over the members in ascending order.
    #[inline]
    pub fn iter(self) -> QVSetIter {
        QVSetIter(self.0)
    }
}

impl std::fmt::Debug for QVSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "u{i}")?;
            first = false;
        }
        f.write_str("}")
    }
}

impl FromIterator<usize> for QVSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = QVSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

impl std::ops::BitOr for QVSet {
    type Output = QVSet;
    #[inline]
    fn bitor(self, rhs: QVSet) -> QVSet {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for QVSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: QVSet) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for QVSet {
    type Output = QVSet;
    #[inline]
    fn bitand(self, rhs: QVSet) -> QVSet {
        self.intersection(rhs)
    }
}

/// Iterator over the members of a [`QVSet`].
pub struct QVSetIter(u64);

impl Iterator for QVSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for QVSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let s = QVSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.max(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.iter().count(), 0);
        assert!(s.is_subset_of(QVSet::new()));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = QVSet::new();
        s.insert(3);
        s.insert(17);
        s.insert(63);
        assert!(s.contains(3));
        assert!(s.contains(17));
        assert!(s.contains(63));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 3);
        s.remove(17);
        assert!(!s.contains(17));
        assert_eq!(s.len(), 2);
        // Removing an element not in the set is a no-op.
        s.remove(17);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union_intersection_difference() {
        let a = QVSet::from_iter([0, 1, 2, 5]);
        let b = QVSet::from_iter([2, 5, 9]);
        assert_eq!(a.union(b), QVSet::from_iter([0, 1, 2, 5, 9]));
        assert_eq!(a.intersection(b), QVSet::from_iter([2, 5]));
        assert_eq!(a.difference(b), QVSet::from_iter([0, 1]));
        assert_eq!(b.difference(a), QVSet::from_iter([9]));
    }

    #[test]
    fn subset_and_below() {
        let a = QVSet::from_iter([1, 3, 7]);
        let b = QVSet::from_iter([0, 1, 3, 7, 8]);
        assert!(a.is_subset_of(b));
        assert!(!b.is_subset_of(a));
        assert_eq!(a.below(4), QVSet::from_iter([1, 3]));
        assert_eq!(a.below(0), QVSet::EMPTY);
        assert_eq!(b.below(64), b);
    }

    #[test]
    fn all_below_boundaries() {
        assert_eq!(QVSet::all_below(0), QVSet::EMPTY);
        assert_eq!(QVSet::all_below(1), QVSet::singleton(0));
        assert_eq!(QVSet::all_below(64).len(), 64);
        assert_eq!(QVSet::all_below(32).len(), 32);
    }

    #[test]
    fn min_max_iter_order() {
        let s = QVSet::from_iter([40, 2, 9]);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(40));
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![2, 9, 40]);
    }

    #[test]
    fn with_without_do_not_mutate() {
        let s = QVSet::from_iter([1, 2]);
        let t = s.with(5);
        let u = s.without(2);
        assert_eq!(s, QVSet::from_iter([1, 2]));
        assert_eq!(t, QVSet::from_iter([1, 2, 5]));
        assert_eq!(u, QVSet::from_iter([1]));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = QVSet::from_iter([0, 2]);
        assert_eq!(format!("{s:?}"), "{u0,u2}");
    }

    /// Regression for the release-mode shift wrap: `singleton(64)` must panic (not
    /// silently alias vertex 0) in **every** build profile. `debug_assert!` alone
    /// would let `1u64 << 64` wrap to `1` with `--release`.
    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_singleton_panics_in_release_too() {
        let _ = QVSet::singleton(MAX_QUERY_VERTICES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_all_below_panics_in_release_too() {
        let _ = QVSet::all_below(MAX_QUERY_VERTICES + 1);
    }

    #[test]
    fn operators_match_methods() {
        let a = QVSet::from_iter([0, 1]);
        let b = QVSet::from_iter([1, 2]);
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        let mut c = a;
        c |= b;
        assert_eq!(c, a.union(b));
    }
}
