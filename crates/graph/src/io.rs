//! Text I/O in the `t/v/e` format used by the subgraph-matching community.
//!
//! The format (also used by the DAF / RapidMatch / SubgraphMatching repositories the
//! paper compares against) is line-oriented:
//!
//! ```text
//! t <num-vertices> <num-edges>
//! v <vertex-id> <label> [<degree>]
//! e <src> <dst> [<edge-label>]
//! ```
//!
//! Vertex ids must be `0..num-vertices`; the optional degree / edge-label columns are
//! ignored. `#`-prefixed lines and blank lines are skipped.
//!
//! The parser is strict about the simple-graph contract the matcher relies on
//! (and that a persisted index would otherwise bake in):
//!
//! * exactly one `t` header, before any `v`/`e` line — a second header is a
//!   [`GraphParseError::DuplicateHeader`] (it used to silently reset the builder);
//! * the declared edge count must match the number of `e` lines
//!   ([`GraphParseError::EdgeCountMismatch`]);
//! * each undirected edge must be listed exactly once, in either orientation
//!   ([`GraphParseError::DuplicateEdge`]), and self loops are rejected
//!   ([`GraphParseError::SelfLoop`]) — the paper assumes simple graphs, and
//!   silently dropping such lines would let the edge count lie.
//!
//! [`write_graph`] emits the canonical form (each edge once, `a < b`), so every
//! written graph parses back.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{Label, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced while parsing the text graph format.
#[derive(Debug)]
pub enum GraphParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A second `t` header appeared mid-file (it would silently discard every
    /// vertex and edge read so far).
    DuplicateHeader {
        /// 1-based line number of the second header.
        line: usize,
    },
    /// The number of `e` lines does not match the count declared on the `t` header.
    EdgeCountMismatch {
        /// Edge count declared on the `t` header.
        declared: usize,
        /// Number of `e` lines actually present.
        found: usize,
    },
    /// An `e` line connects a vertex to itself (the format describes simple graphs).
    SelfLoop {
        /// 1-based line number of the offending line.
        line: usize,
        /// The vertex carrying the loop.
        vertex: usize,
    },
    /// The same undirected edge was listed twice (in either orientation).
    DuplicateEdge {
        /// 1-based line number of the second listing.
        line: usize,
        /// Source vertex as written on the duplicate line.
        src: usize,
        /// Destination vertex as written on the duplicate line.
        dst: usize,
    },
}

impl std::fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphParseError::Io(e) => write!(f, "I/O error while reading graph: {e}"),
            GraphParseError::Malformed { line, message } => {
                write!(f, "malformed graph file at line {line}: {message}")
            }
            GraphParseError::DuplicateHeader { line } => {
                write!(f, "duplicate 't' header at line {line}")
            }
            GraphParseError::EdgeCountMismatch { declared, found } => write!(
                f,
                "header declares {declared} edges but the file lists {found}"
            ),
            GraphParseError::SelfLoop { line, vertex } => {
                write!(f, "self loop on vertex {vertex} at line {line}")
            }
            GraphParseError::DuplicateEdge { line, src, dst } => {
                write!(f, "duplicate edge ({src}, {dst}) at line {line}")
            }
        }
    }
}

impl std::error::Error for GraphParseError {}

impl From<std::io::Error> for GraphParseError {
    fn from(e: std::io::Error) -> Self {
        GraphParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> GraphParseError {
    GraphParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Parses a graph from any reader in the `t/v/e` format.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, GraphParseError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_vertices = 0usize;
    let mut declared_edges = 0usize;
    let mut edges_listed = 0usize;
    let mut seen_edges: std::collections::HashSet<(VertexId, VertexId)> =
        std::collections::HashSet::new();
    let mut labels_seen = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("t") => {
                if builder.is_some() {
                    return Err(GraphParseError::DuplicateHeader { line: lineno });
                }
                let nv: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing vertex count"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "vertex count is not an integer"))?;
                let ne: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing edge count"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "edge count is not an integer"))?;
                let mut b = GraphBuilder::with_capacity(nv, ne);
                b.add_vertices(nv, 0);
                declared_vertices = nv;
                declared_edges = ne;
                builder = Some(b);
            }
            Some("v") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed(lineno, "'v' line before 't' header"))?;
                let id: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing vertex id"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "vertex id is not an integer"))?;
                let label: Label = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing vertex label"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "vertex label is not an integer"))?;
                if id >= declared_vertices {
                    return Err(malformed(
                        lineno,
                        format!("vertex id {id} out of declared range {declared_vertices}"),
                    ));
                }
                b.set_label(id as VertexId, label);
                labels_seen += 1;
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed(lineno, "'e' line before 't' header"))?;
                let src: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing edge source"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "edge source is not an integer"))?;
                let dst: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing edge destination"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "edge destination is not an integer"))?;
                if src >= declared_vertices || dst >= declared_vertices {
                    return Err(malformed(lineno, "edge endpoint out of range"));
                }
                if src == dst {
                    return Err(GraphParseError::SelfLoop {
                        line: lineno,
                        vertex: src,
                    });
                }
                let key = (src.min(dst) as VertexId, src.max(dst) as VertexId);
                if !seen_edges.insert(key) {
                    return Err(GraphParseError::DuplicateEdge {
                        line: lineno,
                        src,
                        dst,
                    });
                }
                edges_listed += 1;
                b.add_edge(src as VertexId, dst as VertexId);
            }
            Some(other) => {
                return Err(malformed(lineno, format!("unknown record type '{other}'")));
            }
            None => unreachable!("empty lines are skipped above"),
        }
    }
    let builder = builder.ok_or_else(|| malformed(0, "no 't' header found"))?;
    if edges_listed != declared_edges {
        return Err(GraphParseError::EdgeCountMismatch {
            declared: declared_edges,
            found: edges_listed,
        });
    }
    let _ = labels_seen; // vertices without an explicit 'v' line keep label 0
    Ok(builder.build())
}

/// Parses a graph from a string in the `t/v/e` format.
pub fn parse_graph(text: &str) -> Result<Graph, GraphParseError> {
    read_graph(text.as_bytes())
}

/// Loads a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, GraphParseError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

/// Serializes a graph into the `t/v/e` format.
pub fn write_graph<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "t {} {}", g.vertex_count(), g.edge_count())?;
    for v in g.vertices() {
        writeln!(writer, "v {} {} {}", v, g.label(v), g.degree(v))?;
    }
    for (a, b) in g.edges() {
        writeln!(writer, "e {a} {b}")?;
    }
    Ok(())
}

/// Serializes a graph into a `String` in the `t/v/e` format.
pub fn graph_to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format output is ASCII")
}

/// Saves a graph to a file path.
pub fn save_graph<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_graph(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    const SAMPLE: &str = "\
# a triangle plus an isolated vertex
t 4 3
v 0 5 2
v 1 5 2
v 2 7 2
v 3 9 0

e 0 1
e 1 2
e 2 0
";

    #[test]
    fn parse_sample() {
        let g = parse_graph(SAMPLE).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label(0), 5);
        assert_eq!(g.label(2), 7);
        assert_eq!(g.label(3), 9);
        assert!(g.has_edge(0, 2));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn roundtrip_through_text() {
        let g = graph_from_edges(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let text = graph_to_string(&g);
        let back = parse_graph(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn vertices_without_v_lines_default_to_label_zero() {
        let g = parse_graph("t 2 1\ne 0 1\n").unwrap();
        assert_eq!(g.label(0), 0);
        assert_eq!(g.label(1), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn error_on_missing_header() {
        let err = parse_graph("v 0 1\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 1, .. }));
        let err = parse_graph("").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 0, .. }));
    }

    #[test]
    fn error_on_out_of_range_ids() {
        let err = parse_graph("t 2 1\nv 5 0\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 2, .. }));
        let err = parse_graph("t 2 1\ne 0 7\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn error_on_garbage() {
        let err = parse_graph("t 2 1\nx 1 2\n").unwrap_err();
        match err {
            GraphParseError::Malformed { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unknown record type"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_graph("t x y\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn error_on_duplicate_header() {
        // Pre-fix, the second 't' silently discarded the triangle read so far.
        let err = parse_graph("t 3 1\ne 0 1\nt 3 0\n").unwrap_err();
        assert!(matches!(err, GraphParseError::DuplicateHeader { line: 3 }));
    }

    #[test]
    fn error_on_edge_count_mismatch() {
        // Pre-fix, the declared count was parsed into `_ne` and never checked.
        let err = parse_graph("t 3 2\ne 0 1\n").unwrap_err();
        assert!(matches!(
            err,
            GraphParseError::EdgeCountMismatch {
                declared: 2,
                found: 1
            }
        ));
        let err = parse_graph("t 3 0\ne 0 1\n").unwrap_err();
        assert!(matches!(
            err,
            GraphParseError::EdgeCountMismatch {
                declared: 0,
                found: 1
            }
        ));
    }

    #[test]
    fn error_on_self_loop() {
        let err = parse_graph("t 2 1\ne 1 1\n").unwrap_err();
        assert!(matches!(
            err,
            GraphParseError::SelfLoop { line: 2, vertex: 1 }
        ));
    }

    #[test]
    fn error_on_duplicate_edge_either_orientation() {
        let err = parse_graph("t 2 2\ne 0 1\ne 0 1\n").unwrap_err();
        assert!(matches!(
            err,
            GraphParseError::DuplicateEdge {
                line: 3,
                src: 0,
                dst: 1
            }
        ));
        // The reversed orientation names the same undirected edge.
        let err = parse_graph("t 2 2\ne 0 1\ne 1 0\n").unwrap_err();
        assert!(matches!(
            err,
            GraphParseError::DuplicateEdge {
                line: 3,
                src: 1,
                dst: 0
            }
        ));
    }

    #[test]
    fn strict_error_display_mentions_specifics() {
        let err = parse_graph("t 3 2\ne 0 1\n").unwrap_err();
        assert!(format!("{err}").contains("declares 2 edges"));
        let err = parse_graph("t 2 1\ne 1 1\n").unwrap_err();
        assert!(format!("{err}").contains("self loop"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gup_graph_io_test_{}.graph", std::process::id()));
        let g = graph_from_edges(&[3, 3, 4], &[(0, 1), (1, 2)]);
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, back);
    }

    #[test]
    fn display_of_errors_mentions_line() {
        let err = parse_graph("t 1 0\nv bad 0\n").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 2"));
    }
}
