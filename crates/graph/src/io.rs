//! Text I/O in the `t/v/e` format used by the subgraph-matching community.
//!
//! The format (also used by the DAF / RapidMatch / SubgraphMatching repositories the
//! paper compares against) is line-oriented:
//!
//! ```text
//! t <num-vertices> <num-edges>
//! v <vertex-id> <label> [<degree>]
//! e <src> <dst> [<edge-label>]
//! ```
//!
//! Vertex ids must be `0..num-vertices`; the optional degree / edge-label columns are
//! ignored. `#`-prefixed lines and blank lines are skipped.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{Label, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced while parsing the text graph format.
#[derive(Debug)]
pub enum GraphParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl std::fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphParseError::Io(e) => write!(f, "I/O error while reading graph: {e}"),
            GraphParseError::Malformed { line, message } => {
                write!(f, "malformed graph file at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphParseError {}

impl From<std::io::Error> for GraphParseError {
    fn from(e: std::io::Error) -> Self {
        GraphParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> GraphParseError {
    GraphParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Parses a graph from any reader in the `t/v/e` format.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, GraphParseError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_vertices = 0usize;
    let mut labels_seen = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("t") => {
                let nv: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing vertex count"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "vertex count is not an integer"))?;
                let _ne: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing edge count"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "edge count is not an integer"))?;
                let mut b = GraphBuilder::with_capacity(nv, _ne);
                b.add_vertices(nv, 0);
                declared_vertices = nv;
                builder = Some(b);
            }
            Some("v") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed(lineno, "'v' line before 't' header"))?;
                let id: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing vertex id"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "vertex id is not an integer"))?;
                let label: Label = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing vertex label"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "vertex label is not an integer"))?;
                if id >= declared_vertices {
                    return Err(malformed(
                        lineno,
                        format!("vertex id {id} out of declared range {declared_vertices}"),
                    ));
                }
                b.set_label(id as VertexId, label);
                labels_seen += 1;
            }
            Some("e") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| malformed(lineno, "'e' line before 't' header"))?;
                let src: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing edge source"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "edge source is not an integer"))?;
                let dst: usize = parts
                    .next()
                    .ok_or_else(|| malformed(lineno, "missing edge destination"))?
                    .parse()
                    .map_err(|_| malformed(lineno, "edge destination is not an integer"))?;
                if src >= declared_vertices || dst >= declared_vertices {
                    return Err(malformed(lineno, "edge endpoint out of range"));
                }
                b.add_edge(src as VertexId, dst as VertexId);
            }
            Some(other) => {
                return Err(malformed(lineno, format!("unknown record type '{other}'")));
            }
            None => unreachable!("empty lines are skipped above"),
        }
    }
    let builder = builder.ok_or_else(|| malformed(0, "no 't' header found"))?;
    let _ = labels_seen; // vertices without an explicit 'v' line keep label 0
    Ok(builder.build())
}

/// Parses a graph from a string in the `t/v/e` format.
pub fn parse_graph(text: &str) -> Result<Graph, GraphParseError> {
    read_graph(text.as_bytes())
}

/// Loads a graph from a file path.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, GraphParseError> {
    let file = std::fs::File::open(path)?;
    read_graph(file)
}

/// Serializes a graph into the `t/v/e` format.
pub fn write_graph<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "t {} {}", g.vertex_count(), g.edge_count())?;
    for v in g.vertices() {
        writeln!(writer, "v {} {} {}", v, g.label(v), g.degree(v))?;
    }
    for (a, b) in g.edges() {
        writeln!(writer, "e {a} {b}")?;
    }
    Ok(())
}

/// Serializes a graph into a `String` in the `t/v/e` format.
pub fn graph_to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format output is ASCII")
}

/// Saves a graph to a file path.
pub fn save_graph<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_graph(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    const SAMPLE: &str = "\
# a triangle plus an isolated vertex
t 4 3
v 0 5 2
v 1 5 2
v 2 7 2
v 3 9 0

e 0 1
e 1 2
e 2 0
";

    #[test]
    fn parse_sample() {
        let g = parse_graph(SAMPLE).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label(0), 5);
        assert_eq!(g.label(2), 7);
        assert_eq!(g.label(3), 9);
        assert!(g.has_edge(0, 2));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn roundtrip_through_text() {
        let g = graph_from_edges(&[0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let text = graph_to_string(&g);
        let back = parse_graph(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn vertices_without_v_lines_default_to_label_zero() {
        let g = parse_graph("t 2 1\ne 0 1\n").unwrap();
        assert_eq!(g.label(0), 0);
        assert_eq!(g.label(1), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn error_on_missing_header() {
        let err = parse_graph("v 0 1\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 1, .. }));
        let err = parse_graph("").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 0, .. }));
    }

    #[test]
    fn error_on_out_of_range_ids() {
        let err = parse_graph("t 2 1\nv 5 0\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 2, .. }));
        let err = parse_graph("t 2 1\ne 0 7\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 2, .. }));
    }

    #[test]
    fn error_on_garbage() {
        let err = parse_graph("t 2 1\nx 1 2\n").unwrap_err();
        match err {
            GraphParseError::Malformed { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unknown record type"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_graph("t x y\n").unwrap_err();
        assert!(matches!(err, GraphParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("gup_graph_io_test_{}.graph", std::process::id()));
        let g = graph_from_edges(&[3, 3, 4], &[(0, 1), (1, 2)]);
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g, back);
    }

    #[test]
    fn display_of_errors_mentions_line() {
        let err = parse_graph("t 1 0\nv bad 0\n").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 2"));
    }
}
