//! A hand-rolled, lossy Rust lexer: good enough to separate *code* from
//! *comments* and *literal contents*, which is all the downstream passes need.
//!
//! The lexer produces a masked copy of the source in which every comment byte
//! and every string/char-literal byte is replaced by a space (newlines are
//! preserved, so byte offsets and line numbers survive). The token-local rules
//! match their patterns against the masked code, so an occurrence of
//! `Instant::now()` inside a doc comment, a string literal, or a raw string
//! can never produce a finding — and directives are parsed from the extracted
//! comments only. The [`crate::scope`] pass builds on the same guarantee: its
//! brace matching and statement splitting run over the masked code, so a `{`
//! or `;` inside a string can never desynchronize a scope tree.
//!
//! Handled: line comments, nested block comments, string literals with escape
//! sequences, byte strings, raw (byte) strings with arbitrary `#` fences, char
//! and byte-char literals, and the char-vs-lifetime ambiguity (`'a'` vs `<'a>`).
//! Not handled (not needed): float-vs-field disambiguation, macro tokenization.

/// One comment extracted from the source, in source order.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the comment's first byte.
    pub line: usize,
    /// Text *inside* the comment markers (no `//`, `/*`, `*/`), untrimmed.
    pub text: String,
    /// `true` when only whitespace precedes the comment on its starting line —
    /// i.e. the comment owns the line (directive scoping cares).
    pub own_line: bool,
}

/// The lexer's output: masked code plus the extracted comments.
#[derive(Clone, Debug)]
pub struct Lexed {
    /// The source with comments and literal contents blanked to spaces; same
    /// byte length and identical newline positions as the input.
    pub code: String,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
    /// `lines[i]` is the masked code of 1-based line `i + 1`.
    pub lines: Vec<String>,
    /// `test_line[i]` is `true` when 1-based line `i + 1` lies inside a
    /// `#[cfg(test)]` / `#[test]` item (the attribute and the item body).
    pub test_line: Vec<bool>,
}

/// Lexes `src` into masked code and comments. Never fails: on malformed input
/// (an unterminated literal or comment) the rest of the file is treated as that
/// literal/comment, which is exactly what rustc's recovery would report anyway.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    // Whether any non-whitespace *code* byte has appeared on the current line.
    let mut line_has_code = false;
    let mut i = 0usize;

    macro_rules! emit {
        ($b:expr) => {{
            let b: u8 = $b;
            code.push(b);
            if b == b'\n' {
                line += 1;
                line_has_code = false;
            } else if !b.is_ascii_whitespace() {
                line_has_code = true;
            }
        }};
    }
    macro_rules! blank {
        ($b:expr) => {{
            let b: u8 = $b;
            if b == b'\n' {
                code.push(b'\n');
                line += 1;
                line_has_code = false;
            } else {
                code.push(b' ');
            }
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start_line = line;
            let own_line = !line_has_code;
            let mut text = Vec::new();
            blank!(b'/');
            blank!(b'/');
            i += 2;
            while i < bytes.len() && bytes[i] != b'\n' {
                text.push(bytes[i]);
                blank!(bytes[i]);
                i += 1;
            }
            comments.push(Comment {
                line: start_line,
                text: String::from_utf8_lossy(&text).into_owned(),
                own_line,
            });
            continue;
        }
        // Block comment (nested).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start_line = line;
            let own_line = !line_has_code;
            let mut text = Vec::new();
            let mut depth = 1usize;
            blank!(b'/');
            blank!(b'*');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    text.extend_from_slice(b"/*");
                    blank!(b'/');
                    blank!(b'*');
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    if depth > 0 {
                        text.extend_from_slice(b"*/");
                    }
                    blank!(b'*');
                    blank!(b'/');
                    i += 2;
                } else {
                    text.push(bytes[i]);
                    blank!(bytes[i]);
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text: String::from_utf8_lossy(&text).into_owned(),
                own_line,
            });
            continue;
        }
        // Raw string (r"…", r#"…"#, br#"…"#, …): only when the prefix letter is
        // not the tail of an identifier.
        if (b == b'r' || b == b'b') && !prev_is_ident(&code) {
            if let Some((prefix_len, hashes)) = raw_string_at(bytes, i) {
                for _ in 0..prefix_len {
                    blank!(bytes[i]);
                    i += 1;
                }
                // Contents until `"` followed by `hashes` hashes.
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    if bytes[i] == b'"' && hash_run(bytes, i + 1) >= hashes {
                        blank!(bytes[i]);
                        i += 1;
                        for _ in 0..hashes {
                            blank!(bytes[i]);
                            i += 1;
                        }
                        break;
                    }
                    blank!(bytes[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Byte string b"…": delegate to the plain-string path below.
        if b == b'b' && bytes.get(i + 1) == Some(&b'"') && !prev_is_ident(&code) {
            blank!(b'b');
            i += 1;
            // Falls through to the string case on the next iteration.
            continue;
        }
        // String literal.
        if b == b'"' {
            blank!(b'"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    blank!(bytes[i]);
                    blank!(bytes[i + 1]);
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    blank!(b'"');
                    i += 1;
                    break;
                }
                blank!(bytes[i]);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: `'` starts a char literal when the next byte
        // is a backslash, or when the byte after next is the closing quote.
        if b == b'\'' {
            let next = bytes.get(i + 1).copied();
            let is_char = match next {
                Some(b'\\') => true,
                Some(_) => bytes.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                blank!(b'\'');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        blank!(bytes[i]);
                        blank!(bytes[i + 1]);
                        i += 2;
                        continue;
                    }
                    if bytes[i] == b'\'' {
                        blank!(b'\'');
                        i += 1;
                        break;
                    }
                    blank!(bytes[i]);
                    i += 1;
                }
                continue;
            }
            // A lifetime or loop label: plain code.
            emit!(b'\'');
            i += 1;
            continue;
        }
        emit!(b);
        i += 1;
    }

    let code = String::from_utf8_lossy(&code).into_owned();
    let lines: Vec<String> = code.split('\n').map(str::to_string).collect();
    let test_line = mark_test_lines(&code, lines.len());
    Lexed {
        code,
        comments,
        lines,
        test_line,
    }
}

fn prev_is_ident(code: &[u8]) -> bool {
    code.last()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
}

/// If a raw (byte) string starts at `i`, returns `(prefix length, hash count)`
/// where the prefix covers `r`/`br` plus the hashes plus the opening quote.
fn raw_string_at(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let hashes = hash_run(bytes, j);
    j += hashes;
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    Some((j + 1 - i, hashes))
}

fn hash_run(bytes: &[u8], mut i: usize) -> usize {
    let start = i;
    while bytes.get(i) == Some(&b'#') {
        i += 1;
    }
    i - start
}

/// Marks the lines covered by `#[cfg(test)]` / `#[test]` items: the attribute
/// itself, any further attributes, and the following item through its matching
/// closing brace (or terminating semicolon for brace-less items).
fn mark_test_lines(code: &str, line_count: usize) -> Vec<bool> {
    let bytes = code.as_bytes();
    let mut test = vec![false; line_count.max(1)];
    let mut i = 0usize;
    while let Some(found) = find_from(code, i, "#[") {
        let (attr_end, attr_text) = match attribute_at(bytes, found) {
            Some(parsed) => parsed,
            None => {
                i = found + 2;
                continue;
            }
        };
        if !is_test_attribute(&attr_text) {
            i = attr_end;
            continue;
        }
        let start_line = line_of(bytes, found);
        let end = item_end(bytes, attr_end);
        let end_line = line_of(bytes, end.min(bytes.len().saturating_sub(1)));
        for entry in test
            .iter_mut()
            .take(end_line.min(line_count))
            .skip(start_line - 1)
        {
            *entry = true;
        }
        i = end;
    }
    test
}

fn find_from(haystack: &str, from: usize, needle: &str) -> Option<usize> {
    haystack
        .get(from..)
        .and_then(|tail| tail.find(needle).map(|p| from + p))
}

/// Parses the attribute starting at `i` (which points at `#`). Returns the byte
/// index just past the closing `]` and the attribute's inner text.
fn attribute_at(bytes: &[u8], i: usize) -> Option<(usize, String)> {
    let mut j = i + 2;
    let mut depth = 1usize;
    let start = j;
    while j < bytes.len() {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let text = String::from_utf8_lossy(&bytes[start..j]).into_owned();
                    return Some((j + 1, text));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// `#[test]`, `#[cfg(test)]`, and `#[cfg(all(test, …))]` count; `#[cfg(not(test))]`
/// does not (that attribute marks *non*-test code).
fn is_test_attribute(text: &str) -> bool {
    let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    compact == "test"
        || compact.starts_with("cfg(test")
        || compact.starts_with("cfg(all(test")
        || compact.starts_with("cfg(any(test")
}

/// Scans past further attributes, then to the end of the next item: the matching
/// `}` of its first top-level brace, or a `;` reached before any brace opens.
fn item_end(bytes: &[u8], mut i: usize) -> usize {
    // Skip whitespace and stacked attributes.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i + 1 < bytes.len() && bytes[i] == b'#' && bytes[i + 1] == b'[' {
            match attribute_at(bytes, i) {
                Some((end, _)) => i = end,
                None => return bytes.len(),
            }
        } else {
            break;
        }
    }
    let mut round = 0usize;
    let mut brace = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => round += 1,
            b')' | b']' => round = round.saturating_sub(1),
            b'{' => brace += 1,
            b'}' => {
                brace = brace.saturating_sub(1);
                if brace == 0 {
                    return i + 1;
                }
            }
            b';' if round == 0 && brace == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

fn line_of(bytes: &[u8], i: usize) -> usize {
    1 + bytes[..i.min(bytes.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_masked_and_extracted() {
        let lexed = lex("let x = 1; // trailing note\n// own line\nlet y = 2;\n");
        assert!(!lexed.code.contains("trailing"));
        assert!(lexed.code.contains("let x = 1;"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].text.trim(), "own line");
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let lexed = lex("a /* outer /* inner */ still outer */ b\n");
        assert!(lexed.code.contains('a'));
        assert!(lexed.code.contains('b'));
        assert!(!lexed.code.contains("inner"));
        assert!(!lexed.code.contains("outer"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn string_contents_are_masked_including_comment_lookalikes() {
        let lexed = lex(r#"let s = "// not a comment /* nope */"; let t = 1;"#);
        assert!(lexed.code.contains("let t = 1;"));
        assert!(!lexed.code.contains("not a comment"));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lexed = lex(r#"let s = "quote \" // inside"; let u = 2;"#);
        assert!(lexed.code.contains("let u = 2;"));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes_are_masked() {
        let src = "let s = r#\"Instant::now() \"quoted\" .unwrap()\"#; code();\n";
        let lexed = lex(src);
        assert!(!lexed.code.contains("Instant::now"));
        assert!(!lexed.code.contains("unwrap"));
        assert!(lexed.code.contains("code();"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_masked() {
        let lexed = lex("let a = b\"panic!\"; let b2 = br##\"unreachable!\"##; f();\n");
        assert!(!lexed.code.contains("panic!"));
        assert!(!lexed.code.contains("unreachable!"));
        assert!(lexed.code.contains("f();"));
    }

    #[test]
    fn char_literals_masked_but_lifetimes_kept() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\''; 'x' }\n");
        assert!(lexed.code.contains("fn f<'a>(x: &'a str)"));
        // The masked char contents must not have opened a string state: the
        // function body's closing brace survives.
        assert!(lexed.code.contains('}'));
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let lexed = lex("let parser = 1; let s = \"x\";\n");
        assert!(lexed.code.contains("let parser = 1;"));
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert!(!lexed.test_line[0]);
        assert!(lexed.test_line[1]);
        assert!(lexed.test_line[2]);
        assert!(lexed.test_line[3]);
        assert!(lexed.test_line[4]);
        assert!(!lexed.test_line[5]);
    }

    #[test]
    fn test_attribute_on_fn_is_marked() {
        let src = "fn live() {}\n#[test]\nfn check() {\n    assert!(true);\n}\nfn more() {}\n";
        let lexed = lex(src);
        assert!(!lexed.test_line[0]);
        assert!(lexed.test_line[1] && lexed.test_line[2] && lexed.test_line[3]);
        assert!(lexed.test_line[4]);
        assert!(!lexed.test_line[5]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { body(); }\n";
        let lexed = lex(src);
        assert!(!lexed.test_line[0]);
        assert!(!lexed.test_line[1]);
    }

    #[test]
    fn stacked_attributes_extend_the_test_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() {} }\nfn live() {}\n";
        let lexed = lex(src);
        assert!(lexed.test_line[0] && lexed.test_line[1] && lexed.test_line[2]);
        assert!(!lexed.test_line[3]);
    }

    #[test]
    fn braceless_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn live() {}\n";
        let lexed = lex(src);
        assert!(lexed.test_line[0] && lexed.test_line[1]);
        assert!(!lexed.test_line[2]);
    }

    #[test]
    fn masking_preserves_line_numbers() {
        let src = "a\n/* two\nline */\nb\n";
        let lexed = lex(src);
        assert_eq!(lexed.lines.len(), src.split('\n').count());
        assert_eq!(lexed.lines[3], "b");
    }
}
