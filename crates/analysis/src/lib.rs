//! `gup_analysis`: the workspace invariant analyzer behind `gup-lint`.
//!
//! The repo's correctness story rests on cross-cutting invariants the compiler
//! cannot see: per-query time budgets must flow through the shared
//! work-bounded [`DeadlineSampler`] instead of ad-hoc `Instant::now()` checks
//! (three separate PRs fixed deadline-enforcement holes caused by exactly that
//! anti-pattern), the enumeration hot paths must stay allocation-free, the
//! serving daemon must not panic, relaxed atomics need stated reasons, and
//! `unsafe` needs `SAFETY:` comments. This crate makes those invariants
//! machine-checked: a hand-rolled comment/string/raw-string-aware lexer (no
//! `syn` — the build environment has no registry access, and the shim-honest
//! route is a lexer we fully own) feeds a small rule engine.
//!
//! Rules (ids as used in `allow` annotations):
//!
//! | id | invariant |
//! |----|-----------|
//! | `clock_discipline` | no raw `Instant::now()` / `SystemTime::now()` outside `gup_graph::deadline`, benches, examples, and tests |
//! | `no_alloc` | no allocating constructs inside `region(no_alloc)` marker pairs |
//! | `panic_freedom` | no `.unwrap()` / `.expect()` / `panic!` / `unreachable!` in `crates/serve` and `crates/core` non-test code |
//! | `relaxed_ordering` | every `Ordering::Relaxed` carries an adjacent justification comment |
//! | `unsafe_hygiene` | every `unsafe` carries an adjacent `SAFETY:` comment |
//! | `lock_order` | nested lock acquisitions follow the declared [`rules::LOCK_MANIFESTS`] hierarchy; no same-name re-acquisition while a guard is live |
//! | `guard_across_blocking` | no lock guard held across blocking I/O (the connection-writer lock is the one blessed exception for writes) |
//! | `admission_discipline` | no unbounded `mpsc::channel` or per-loop-iteration `thread::spawn` in the serving layer |
//!
//! R1–R5 are token-local. R6–R8 are scope-aware: the [`scope`] pass builds
//! per-function scope trees with tracked lock-guard lifetimes (let-bound
//! guards to block close or `drop`, statement temporaries to the statement
//! end, edition-2021 scrutinee temporaries through their block), and the rules
//! reason over guard-span overlap.
//!
//! Every rule has an inline escape hatch (an allow annotation naming the rule
//! plus a mandatory reason — see [`rules`] for the grammar); `tests/lint_clean.rs`
//! runs the analyzer over the whole workspace and asserts zero findings, so
//! tier-1 `cargo test` fails on any regression. The [`corpus`] module seeds
//! one known violation per rule so a silently-dead rule also fails tier-1.
//!
//! [`DeadlineSampler`]: ../gup_graph/deadline/struct.DeadlineSampler.html

pub mod corpus;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use rules::{analyze_source, rule_doc, severity, Finding, RuleDoc};

use std::path::{Path, PathBuf};

/// The workspace directories the analyzer walks (relative to the root).
pub const WALK_ROOTS: [&str; 4] = ["crates", "src", "examples", "tests"];

/// Directory names that are never descended into.
pub const SKIP_DIRS: [&str; 3] = ["vendor", "target", ".git"];

/// Collects every `.rs` file under the walked roots, sorted by path, skipping
/// [`SKIP_DIRS`] at any depth.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            visit(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn visit(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|&skip| name == skip) {
                continue;
            }
            visit(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Analyzes every workspace source file under `root` and returns all findings,
/// sorted by path and line. Unreadable files become an `io` error.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        let rel = relative_path(root, &path);
        findings.extend(analyze_source(&rel, &src));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// `path` relative to `root`, with forward slashes (rule scoping matches on
/// this form).
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Renders findings as a JSON array (objects with `path`, `line`, `rule`,
/// `severity`, `message`, `rule_doc`) for tooling. Hand-rolled: the vendored
/// serde is a no-op shim.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"path\": ");
        json_string(&mut out, &f.path);
        out.push_str(", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": ");
        json_string(&mut out, f.rule);
        out.push_str(", \"severity\": ");
        json_string(&mut out, severity(f.rule));
        out.push_str(", \"message\": ");
        json_string(&mut out, &f.message);
        out.push_str(", \"rule_doc\": ");
        json_string(&mut out, rule_doc(f.rule).map_or("", |d| d.summary));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let findings = vec![Finding {
            path: "a/b.rs".to_string(),
            line: 3,
            rule: rules::PANIC_FREEDOM,
            message: "say \"no\"\nplease".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\"path\": \"a/b.rs\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"rule_doc\": \"panicking constructs"));
    }

    #[test]
    fn json_severity_tracks_the_rule() {
        let findings = vec![Finding {
            path: "crates/serve/src/server.rs".to_string(),
            line: 1,
            rule: rules::LOCK_ORDER,
            message: "inverted".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\"severity\": \"critical\""));
        assert!(json.contains("\"rule_doc\": \"nested lock acquisition"));
    }

    #[test]
    fn empty_findings_render_an_empty_array() {
        assert_eq!(findings_to_json(&[]), "[]");
    }

    #[test]
    fn relative_path_uses_forward_slashes() {
        let root = Path::new("/ws");
        let file = Path::new("/ws/crates/core/src/lib.rs");
        assert_eq!(relative_path(root, file), "crates/core/src/lib.rs");
    }
}
