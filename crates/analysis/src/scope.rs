//! The scope pass: per-function scope trees with tracked lock-guard lifetimes.
//!
//! Runs over the lexer's masked code (comments and literal contents blanked),
//! so every brace, `fn`, and `.lock()` it sees is real code. For each function
//! it records:
//!
//! * every **guard span** — an acquisition of `.lock()`, `.read()`, or
//!   `.write()` (exactly empty-argument calls, which distinguishes lock
//!   acquisition from `io::Read::read(buf)` / `io::Write::write(buf)`) with the
//!   byte range over which the returned guard is live, and
//! * every **loop body** byte span (`for` / `while` / `loop`), which the
//!   admission rule uses to spot per-iteration spawns.
//!
//! Guard lifetimes follow the three shapes that matter in practice:
//!
//! 1. **Let-bound** (`let g = x.lock();`, chains through `unwrap` / `expect` /
//!    `unwrap_or_else` / `?` still bind the guard): live until the enclosing
//!    block closes, or until an explicit `drop(g)`. A `let _ = …` binding drops
//!    immediately and is treated as a statement temporary.
//! 2. **Statement temporary** (`x.lock().retain(…);`, or a `let` whose chain
//!    consumes the guard, like `session.read().clone()`): live to the end of
//!    the statement.
//! 3. **Scrutinee temporary** (`if let Some(t) = d.lock().pop_back() { … }`,
//!    `match x.lock() { … }`, `while let …`): under edition-2021 temporary
//!    lifetime rules the guard lives through the whole block, so the span
//!    extends to the block's closing brace. (An attached `else` arm is not
//!    covered — a conservative under-approximation.)
//!
//! Known limitation, by design: the analysis is per-function and name-based.
//! A lock acquired behind a helper call is invisible, and two guards on
//! differently-indexed instances of the same field (`deques[i]` / `deques[j]`)
//! share a name. Both are documented in DESIGN.md's lock-hierarchy section;
//! the allow grammar covers the rare false positive.

use crate::lexer::Lexed;

/// Which accessor produced the guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireKind {
    /// `.lock()` on a mutex.
    Lock,
    /// `.read()` on a rwlock.
    Read,
    /// `.write()` on a rwlock.
    Write,
}

/// One live lock-guard range inside a function.
#[derive(Clone, Debug)]
pub struct GuardSpan {
    /// The lock's name: the last plain path segment of the receiver
    /// (`shared.watchers.lock()` → `watchers`, `self.deques[me].lock()` →
    /// `deques`).
    pub lock: String,
    /// The accessor that produced the guard.
    pub kind: AcquireKind,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// Byte offset (into the masked code) of the acquisition's `.`.
    pub acquired: usize,
    /// Byte offset at which the guard dies (exclusive).
    pub released: usize,
    /// The let binding holding the guard, when there is one.
    pub binding: Option<String>,
}

impl GuardSpan {
    /// `true` when `pos` lies strictly inside the guard's live range.
    pub fn covers(&self, pos: usize) -> bool {
        pos > self.acquired && pos < self.released
    }
}

/// One function's scope summary.
#[derive(Clone, Debug)]
pub struct FunctionScope {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte range of the body, opening brace to just past the closing brace.
    pub body: (usize, usize),
    /// Every guard span, in acquisition order.
    pub guards: Vec<GuardSpan>,
    /// Byte ranges of `for` / `while` / `loop` bodies (including nested ones).
    pub loops: Vec<(usize, usize)>,
}

impl FunctionScope {
    /// `true` when `pos` lies inside one of the function's loop bodies.
    pub fn in_loop(&self, pos: usize) -> bool {
        self.loops.iter().any(|&(lo, hi)| pos > lo && pos < hi)
    }
}

/// Byte offsets at which each 1-based line starts.
pub fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte offset `pos`.
pub fn line_at(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

/// Builds the scope summary of every function in the lexed file.
pub fn function_scopes(lexed: &Lexed) -> Vec<FunctionScope> {
    let code = lexed.code.as_bytes();
    let starts = line_starts(&lexed.code);
    let heads = function_heads(code);
    let mut scopes = Vec::with_capacity(heads.len());
    for &(fn_pos, open, close) in &heads {
        // A nested fn's body is analyzed as its own function; carve it out of
        // the parent's walk so its guards are not double-attributed.
        let inner: Vec<(usize, usize)> = heads
            .iter()
            .filter(|&&(p, o, c)| p != fn_pos && o > open && c <= close)
            .map(|&(_, o, c)| (o, c))
            .collect();
        let name = ident_after_fn(code, fn_pos);
        let mut scope = FunctionScope {
            name,
            line: line_at(&starts, fn_pos),
            body: (open, close),
            guards: Vec::new(),
            loops: Vec::new(),
        };
        walk_body(code, &starts, open, close, &inner, &mut scope);
        shorten_dropped_guards(code, &mut scope);
        scopes.push(scope);
    }
    scopes
}

/// Every `fn` in the file as `(fn_keyword_pos, body_open, body_close)`.
/// Brace-less signatures (trait methods) are skipped.
fn function_heads(code: &[u8]) -> Vec<(usize, usize, usize)> {
    let mut heads = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        if code[i] == b'f'
            && code[i + 1] == b'n'
            && (i == 0 || !is_ident(code[i - 1]))
            && code.get(i + 2).is_some_and(|&b| !is_ident(b))
            && !ident_after_fn(code, i).is_empty()
        {
            if let Some(open) = body_open(code, i + 2) {
                let close = matching_close(code, open);
                heads.push((i, open, close));
            }
        }
        i += 1;
    }
    heads
}

/// From just past `fn`, finds the body's opening brace: the first `{` outside
/// parens/brackets. Returns `None` when a `;` ends the signature first.
fn body_open(code: &[u8], mut i: usize) -> Option<usize> {
    let mut depth = 0i32;
    while i < code.len() {
        match code[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth <= 0 => return Some(i),
            b';' if depth <= 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Byte just past the `}` matching the `{` at `open` (or end of file).
fn matching_close(code: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() {
        match code[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

fn ident_after_fn(code: &[u8], fn_pos: usize) -> String {
    let mut i = fn_pos + 2;
    while i < code.len() && code[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < code.len() && is_ident(code[i]) {
        i += 1;
    }
    String::from_utf8_lossy(&code[start..i]).into_owned()
}

/// One entry of the block stack during the body walk.
struct Block {
    open: usize,
    is_loop: bool,
    /// Indices into `scope.guards` of let-bound guards awaiting this block's
    /// close for their release point.
    pending: Vec<usize>,
}

fn walk_body(
    code: &[u8],
    starts: &[usize],
    open: usize,
    close: usize,
    skip: &[(usize, usize)],
    scope: &mut FunctionScope,
) {
    let mut stack: Vec<Block> = vec![Block {
        open,
        is_loop: false,
        pending: Vec::new(),
    }];
    let mut stmt_start = open + 1;
    let mut paren = 0i32;
    let mut i = open + 1;
    while i < close && !stack.is_empty() {
        if let Some(&(_, inner_close)) = skip.iter().find(|&&(o, _)| o == i) {
            i = inner_close;
            continue;
        }
        match code[i] {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' => {
                let header = header_text(code, stmt_start, i);
                stack.push(Block {
                    open: i,
                    is_loop: header_is_loop(&header),
                    pending: Vec::new(),
                });
                stmt_start = i + 1;
                paren = 0;
            }
            b'}' => {
                if let Some(block) = stack.pop() {
                    for guard_idx in block.pending {
                        scope.guards[guard_idx].released = i;
                    }
                    if block.is_loop {
                        scope.loops.push((block.open, i + 1));
                    }
                }
                stmt_start = i + 1;
                paren = 0;
            }
            b';' if paren <= 0 => {
                stmt_start = i + 1;
                paren = 0;
            }
            b'.' => {
                if let Some((kind, pat_len)) = acquisition_at(code, i) {
                    let lock = receiver_name(code, i);
                    if !lock.is_empty() {
                        let after = i + pat_len;
                        let header = header_text(code, stmt_start, i);
                        let guard = GuardSpan {
                            lock,
                            kind,
                            line: line_at(starts, i),
                            acquired: i,
                            released: close, // refined below
                            binding: None,
                        };
                        record_guard(code, after, close, &header, guard, &mut stack, scope);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Anything still pending dies with the function body.
    for block in stack {
        for guard_idx in block.pending {
            scope.guards[guard_idx].released = close.saturating_sub(1);
        }
    }
}

/// Classifies the new guard's lifetime and stores it.
fn record_guard(
    code: &[u8],
    after: usize,
    fn_close: usize,
    header: &str,
    mut guard: GuardSpan,
    stack: &mut [Block],
    scope: &mut FunctionScope,
) {
    let header = strip_leading_else(header);
    let binding = header_let_binding(header);
    let bound = binding.is_some() && chain_keeps_guard(code, after, fn_close);
    match binding {
        Some(name) if bound && name != "_" => {
            guard.binding = Some(name);
            let idx = scope.guards.len();
            scope.guards.push(guard);
            if let Some(block) = stack.last_mut() {
                block.pending.push(idx);
            }
        }
        _ => {
            guard.released = statement_end(code, after, fn_close);
            scope.guards.push(guard);
        }
    }
}

/// Matches `.lock()`, `.read()`, `.write()` at `i` (which points at the `.`).
/// The empty argument list is part of the pattern: `read(buf)` / `write(buf)`
/// are I/O, not acquisition.
fn acquisition_at(code: &[u8], i: usize) -> Option<(AcquireKind, usize)> {
    for (pat, kind) in [
        (&b".lock()"[..], AcquireKind::Lock),
        (&b".read()"[..], AcquireKind::Read),
        (&b".write()"[..], AcquireKind::Write),
    ] {
        if code[i..].starts_with(pat) {
            return Some((kind, pat.len()));
        }
    }
    None
}

/// The name of the lock behind the receiver chain ending at the `.` at `dot`:
/// walks back over whitespace (chains may break across lines), one balanced
/// index/call group, and path separators, and returns the nearest plain
/// identifier. `self.deques[me]` → `deques`; `shared.watchers` → `watchers`.
fn receiver_name(code: &[u8], dot: usize) -> String {
    let mut i = dot;
    loop {
        while i > 0 && code[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return String::new();
        }
        match code[i - 1] {
            b']' => i = balanced_back(code, i, b'[', b']'),
            b')' => i = balanced_back(code, i, b'(', b')'),
            b'.' => i -= 1,
            b if is_ident(b) => {
                let end = i;
                while i > 0 && is_ident(code[i - 1]) {
                    i -= 1;
                }
                let name = String::from_utf8_lossy(&code[i..end]).into_owned();
                if name.bytes().all(|b| b.is_ascii_digit()) {
                    // A float-ish `1.lock()` cannot happen; digits mean we
                    // walked into a literal — give up.
                    return String::new();
                }
                return name;
            }
            _ => return String::new(),
        }
    }
}

/// Steps back over one balanced `open…close` group; `i` points just past the
/// closing byte. Returns the index of the opening byte.
fn balanced_back(code: &[u8], i: usize, open: u8, close: u8) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        if code[j] == close {
            depth += 1;
        } else if code[j] == open {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    0
}

fn header_text(code: &[u8], stmt_start: usize, upto: usize) -> String {
    let lo = stmt_start.min(upto);
    String::from_utf8_lossy(&code[lo..upto]).trim().to_string()
}

fn strip_leading_else(header: &str) -> &str {
    let mut h = header.trim_start();
    while let Some(rest) = h.strip_prefix("else") {
        if rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            break;
        }
        h = rest.trim_start();
    }
    h
}

/// When the statement header is a `let` (not `if let` / `while let`), the
/// bound identifier (with `mut` stripped). `None` otherwise.
fn header_let_binding(header: &str) -> Option<String> {
    let rest = header.strip_prefix("let")?;
    if rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
        return None; // an identifier starting with "let"
    }
    let mut rest = rest.trim_start();
    if let Some(after_mut) = rest.strip_prefix("mut") {
        if !after_mut.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            rest = after_mut.trim_start();
        }
    }
    let ident: String = rest
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

fn header_is_loop(header: &str) -> bool {
    for kw in ["for", "while", "loop"] {
        if let Some(rest) = header.strip_prefix(kw) {
            if !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
                return true;
            }
        }
    }
    // Labeled loops: `'outer: loop {`.
    if let Some((label, rest)) = header.split_once(':') {
        if label.starts_with('\'') && !label.contains(char::is_whitespace) {
            return header_is_loop(rest.trim_start());
        }
    }
    false
}

/// Whether the method chain continuing at `i` still yields the guard: chains
/// through `unwrap()` / `expect(…)` / `unwrap_or_else(…)` and `?` keep it; any
/// other continuation (`.clone()`, `.len()`, `.pop_back()`, field access)
/// consumes it into a statement temporary.
fn chain_keeps_guard(code: &[u8], mut i: usize, limit: usize) -> bool {
    loop {
        while i < limit && code[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= limit {
            return true;
        }
        match code[i] {
            b'?' => i += 1,
            b'.' => {
                let start = i + 1;
                let mut j = start;
                while j < limit && is_ident(code[j]) {
                    j += 1;
                }
                let method = &code[start..j];
                let keeps = matches!(method, b"unwrap" | b"expect" | b"unwrap_or_else");
                if !keeps {
                    return false;
                }
                while j < limit && code[j].is_ascii_whitespace() {
                    j += 1;
                }
                if code.get(j) == Some(&b'(') {
                    i = skip_balanced(code, j, limit);
                } else {
                    return false;
                }
            }
            _ => return true, // `;`, `,`, `)`, an operator: the chain ended
        }
    }
}

/// Skips a balanced `(`/`[`/`{` group starting at `i`; returns the index just
/// past the closing byte.
fn skip_balanced(code: &[u8], i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < limit {
        match code[j] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    limit
}

/// End of the statement whose temporary scope holds a non-let-bound guard:
/// the next `;` (or block-closing `}`) at chain depth, with a `{` opening at
/// depth extending the temporary through that block (the edition-2021
/// scrutinee rule for `if let` / `while let` / `match` heads).
fn statement_end(code: &[u8], mut i: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    while i < limit {
        match code[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    return i; // the statement's expression ended inside a call
                }
                depth -= 1;
            }
            b'{' if depth <= 0 => return matching_close(code, i),
            b'}' if depth <= 0 => return i,
            b';' if depth <= 0 => return i,
            _ => {}
        }
        i += 1;
    }
    limit
}

/// Shortens let-bound guards at an explicit `drop(binding)` / `mem::drop(binding)`.
fn shorten_dropped_guards(code: &[u8], scope: &mut FunctionScope) {
    for guard in &mut scope.guards {
        let Some(binding) = &guard.binding else {
            continue;
        };
        let lo = guard.acquired;
        let hi = guard.released.min(code.len());
        let region = &code[lo..hi];
        let needle = format!("drop({binding})");
        let spaced = format!("drop({binding} )");
        for probe in [needle.as_bytes(), spaced.as_bytes()] {
            if let Some(at) = find_sub(region, probe) {
                let abs = lo + at;
                // `drop` must be a call, not the tail of an identifier.
                if abs == 0 || !is_ident(code[abs - 1]) {
                    guard.released = guard.released.min(abs);
                }
            }
        }
    }
}

fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes(src: &str) -> Vec<FunctionScope> {
        function_scopes(&lex(src))
    }

    fn guard<'a>(scope: &'a FunctionScope, lock: &str) -> &'a GuardSpan {
        scope
            .guards
            .iter()
            .find(|g| g.lock == lock)
            .unwrap_or_else(|| panic!("no guard on `{lock}` in {:?}", scope.guards))
    }

    fn line_span(src: &str, scope: &FunctionScope, g: &GuardSpan) -> (usize, usize) {
        let starts = line_starts(src);
        let _ = scope;
        (line_at(&starts, g.acquired), line_at(&starts, g.released))
    }

    #[test]
    fn let_bound_guard_lives_to_block_close() {
        let src = "fn f(x: &M) {\n\
                   let g = x.lock();\n\
                   use_it(&g);\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "f");
        let g = guard(&s[0], "x");
        assert_eq!(g.kind, AcquireKind::Lock);
        assert_eq!(g.binding.as_deref(), Some("g"));
        let (from, to) = line_span(src, &s[0], g);
        assert_eq!(from, 2);
        assert_eq!(to, 5, "guard must live to the function's closing brace");
    }

    #[test]
    fn inner_block_guard_dies_at_inner_close() {
        let src = "fn f(x: &M) {\n\
                   {\n\
                   let g = x.lock();\n\
                   }\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "x");
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 4, "inner-block guard must die at the inner brace");
    }

    #[test]
    fn explicit_drop_ends_the_guard() {
        let src = "fn f(x: &M) {\n\
                   let g = x.lock();\n\
                   use_it(&g);\n\
                   drop(g);\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "x");
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 4, "drop(g) must end the guard on its line");
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = "fn f(s: &Shared) {\n\
                   s.watchers.lock().retain(|w| w.id != 0);\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "watchers");
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 2);
    }

    #[test]
    fn let_with_consuming_chain_is_a_statement_temporary() {
        let src = "fn f(s: &Shared) {\n\
                   let session = s.session.read().clone();\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "session");
        assert_eq!(g.kind, AcquireKind::Read);
        assert!(g.binding.is_none());
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 2, "`.clone()` consumed the guard at the statement end");
    }

    #[test]
    fn chains_through_unwrap_family_still_bind() {
        let src = "fn f(r: &Mutex<R>) {\n\
                   let g = r.lock().unwrap_or_else(|e| e.into_inner());\n\
                   use_it(&g);\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "r");
        assert_eq!(g.binding.as_deref(), Some("g"));
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 4);
    }

    #[test]
    fn if_let_scrutinee_lives_through_the_block() {
        let src = "fn f(d: &Mutex<VecDeque<u32>>) {\n\
                   if let Some(t) = d.lock().pop_back() {\n\
                   consume(t);\n\
                   }\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "d");
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 4, "edition-2021 scrutinee temporary spans the if block");
    }

    #[test]
    fn underscore_let_is_a_statement_temporary() {
        let src = "fn f(x: &M) {\n\
                   let _ = x.lock();\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "x");
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 2);
    }

    #[test]
    fn underscore_prefixed_let_binds_to_block() {
        let src = "fn f(s: &Shared) {\n\
                   let _mutation = s.mutation.lock();\n\
                   work();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "mutation");
        assert_eq!(g.binding.as_deref(), Some("_mutation"));
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 4, "an `_`-prefixed binding still holds to block close");
    }

    #[test]
    fn receiver_name_skips_index_groups_and_multiline_chains() {
        let src = "fn f(&self, me: usize, s: &Shared) {\n\
                   self.deques[me % self.deques.len()].lock().push_back(1);\n\
                   s\n\
                   .watchers\n\
                   .lock()\n\
                   .retain(|w| w.id != 0);\n\
                   }\n";
        let s = scopes(src);
        assert!(s[0].guards.iter().any(|g| g.lock == "deques"));
        assert!(s[0].guards.iter().any(|g| g.lock == "watchers"));
    }

    #[test]
    fn io_read_write_with_arguments_are_not_acquisitions() {
        let src = "fn f(r: &mut impl Read, w: &mut impl Write, buf: &mut [u8]) {\n\
                   r.read(buf).ok();\n\
                   w.write(buf).ok();\n\
                   w.write_fmt(format_args!(\"x\")).ok();\n\
                   }\n";
        let s = scopes(src);
        assert!(s[0].guards.is_empty(), "{:?}", s[0].guards);
    }

    #[test]
    fn loop_bodies_are_recorded_and_queried() {
        let src = "fn f(n: usize) {\n\
                   setup();\n\
                   for i in 0..n {\n\
                   step(i);\n\
                   }\n\
                   while more() {\n\
                   again();\n\
                   }\n\
                   loop {\n\
                   break;\n\
                   }\n\
                   }\n";
        let s = scopes(src);
        assert_eq!(s[0].loops.len(), 3);
        let starts = line_starts(src);
        let inside = |line: usize| {
            let pos = starts[line - 1] + 1;
            s[0].in_loop(pos)
        };
        assert!(!inside(2));
        assert!(inside(4));
        assert!(inside(7));
        assert!(inside(10));
    }

    #[test]
    fn closure_blocks_are_not_loops() {
        let src = "fn f(items: &[u32]) {\n\
                   let v: Vec<u32> = items.iter().map(|i| {\n\
                   i + 1\n\
                   }).collect();\n\
                   }\n";
        let s = scopes(src);
        assert!(s[0].loops.is_empty());
    }

    #[test]
    fn nested_fn_guards_are_not_attributed_to_the_parent() {
        let src = "fn outer(x: &M) {\n\
                   fn inner(y: &M) {\n\
                   let g = y.lock();\n\
                   }\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let outer = s.iter().find(|f| f.name == "outer").unwrap();
        let inner = s.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.guards.is_empty());
        assert_eq!(inner.guards.len(), 1);
    }

    #[test]
    fn overlap_is_detected_between_outer_and_inner_guards() {
        let src = "fn f(s: &Shared) {\n\
                   let a = s.mutation.lock();\n\
                   let b = s.watchers.lock();\n\
                   work();\n\
                   }\n";
        let s = scopes(src);
        let a = guard(&s[0], "mutation");
        let b = guard(&s[0], "watchers");
        assert!(a.covers(b.acquired));
        assert!(!b.covers(a.acquired));
    }

    #[test]
    fn sibling_statement_temporaries_do_not_overlap() {
        let src = "fn f(s: &Shared) {\n\
                   s.watchers.lock().retain(|w| w.id != 0);\n\
                   s.watchers.lock().retain(|w| w.id != 1);\n\
                   }\n";
        let s = scopes(src);
        assert_eq!(s[0].guards.len(), 2);
        let (a, b) = (&s[0].guards[0], &s[0].guards[1]);
        assert!(!a.covers(b.acquired));
    }

    #[test]
    fn trait_signatures_without_bodies_are_skipped() {
        let src = "trait T {\n\
                   fn sig(&self) -> u32;\n\
                   fn with_body(&self) -> u32 { 1 }\n\
                   }\n";
        let s = scopes(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "with_body");
    }

    #[test]
    fn match_scrutinee_guard_spans_the_match_block() {
        let src = "fn f(r: &Mutex<Receiver<u32>>) {\n\
                   let job = {\n\
                   let receiver = r.lock().unwrap_or_else(|e| e.into_inner());\n\
                   match receiver.recv_timeout(t) {\n\
                   Ok(job) => Some(job),\n\
                   Err(_) => None,\n\
                   }\n\
                   };\n\
                   after();\n\
                   }\n";
        let s = scopes(src);
        let g = guard(&s[0], "r");
        let (_, to) = line_span(src, &s[0], g);
        assert_eq!(to, 8, "the let-bound receiver dies at its block close");
    }
}
