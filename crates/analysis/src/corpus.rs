//! The seeded-violation corpus: one known-bad snippet per rule.
//!
//! A rule that silently stops firing is worse than no rule — the clean-sweep
//! check in `tests/lint_clean.rs` would keep passing while the invariant goes
//! unenforced. Each [`CorpusCase`] here is a minimal violation that its rule
//! (and *only* its rule) must flag; the self-tests below and the mirrored
//! assertions in `tests/lint_clean.rs` make a dead rule fail tier-1 by name.
//!
//! Paths are chosen to pin rule scoping too: the R3 case uses
//! `crates/graph/src/delta.rs` so dropping the delta applier from the panic
//! scope is itself a corpus failure.

use crate::rules::{
    ADMISSION_DISCIPLINE, CLOCK_DISCIPLINE, GUARD_ACROSS_BLOCKING, LOCK_ORDER, NO_ALLOC,
    PANIC_FREEDOM, RELAXED_ORDERING, UNSAFE_HYGIENE,
};

/// One seeded violation: analyzing `src` as `path` must produce at least one
/// finding, all of them for `rule`.
#[derive(Clone, Copy, Debug)]
pub struct CorpusCase {
    /// The rule the snippet violates.
    pub rule: &'static str,
    /// The workspace-relative path the snippet is analyzed as (drives scoping).
    pub path: &'static str,
    /// The violating source.
    pub src: &'static str,
}

/// The corpus, one case per rule in rule order.
pub const CORPUS: [CorpusCase; 8] = [
    CorpusCase {
        rule: CLOCK_DISCIPLINE,
        path: "crates/core/src/search.rs",
        src: "fn f() -> Instant { Instant::now() }\n",
    },
    CorpusCase {
        rule: NO_ALLOC,
        path: "crates/graph/src/sink.rs",
        src: "fn f() {\n\
              // gup-lint: region(no_alloc)\n\
              let v: Vec<u32> = Vec::new();\n\
              // gup-lint: end_region\n\
              drop(v);\n\
              }\n",
    },
    CorpusCase {
        // The path doubles as the scope pin for the PR 10 extension: delta.rs
        // is held to the same panic-freedom bar as index_io.rs.
        rule: PANIC_FREEDOM,
        path: "crates/graph/src/delta.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    },
    CorpusCase {
        rule: RELAXED_ORDERING,
        path: "crates/graph/src/stats.rs",
        src: "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
    },
    CorpusCase {
        rule: UNSAFE_HYGIENE,
        path: "crates/graph/src/simd.rs",
        src: "fn f(p: *const u32) -> u32 { unsafe { *p } }\n",
    },
    CorpusCase {
        // watchers (rank 2) held while taking mutation (rank 0): inverted.
        rule: LOCK_ORDER,
        path: "crates/serve/src/server.rs",
        src: "fn f(shared: &Shared) {\n\
              let watchers = shared.watchers.lock();\n\
              let guard = shared.mutation.lock();\n\
              drop(guard);\n\
              drop(watchers);\n\
              }\n",
    },
    CorpusCase {
        // The PR 10 seed bug in miniature: the watchers registry lock held
        // across a socket write.
        rule: GUARD_ACROSS_BLOCKING,
        path: "crates/serve/src/server.rs",
        src: "fn f(shared: &Shared, out: &mut TcpStream) {\n\
              let watchers = shared.watchers.lock();\n\
              let _ = writeln!(out, \"x\");\n\
              drop(watchers);\n\
              }\n",
    },
    CorpusCase {
        // Both shapes at once: an unbounded channel, and a per-iteration spawn.
        rule: ADMISSION_DISCIPLINE,
        path: "crates/serve/src/server.rs",
        src: "fn f() {\n\
              let (tx, rx) = std::sync::mpsc::channel::<u64>();\n\
              for job in rx.iter() {\n\
              let tx2 = tx.clone();\n\
              std::thread::spawn(move || drop((tx2, job)));\n\
              }\n\
              }\n",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{analyze_source, RULES};

    #[test]
    fn every_corpus_case_fires_its_rule_and_only_its_rule() {
        for case in CORPUS {
            let findings = analyze_source(case.path, case.src);
            assert!(
                !findings.is_empty(),
                "corpus case for `{}` produced no findings — the rule went dead",
                case.rule
            );
            for f in &findings {
                assert_eq!(
                    f.rule, case.rule,
                    "corpus case for `{}` also fired `{}`: {}",
                    case.rule, f.rule, f.message
                );
            }
        }
    }

    #[test]
    fn the_corpus_covers_every_rule() {
        for rule in RULES {
            assert!(
                CORPUS.iter().any(|c| c.rule == rule),
                "no corpus case for `{rule}`"
            );
        }
        assert_eq!(CORPUS.len(), RULES.len());
    }

    #[test]
    fn corpus_violations_are_suppressible_with_allows() {
        // The allow grammar must beat every rule, including the scope-aware
        // ones: prepend an own-line allow above each violating line.
        let case = CORPUS
            .iter()
            .find(|c| c.rule == GUARD_ACROSS_BLOCKING)
            .expect("corpus has an R7 case");
        let patched = case.src.replace(
            "let _ = writeln!",
            "// gup-lint: allow(guard_across_blocking) test: bounded by the fixture\n\
             let _ = writeln!",
        );
        assert!(
            analyze_source(case.path, &patched).is_empty(),
            "allow did not suppress the R7 corpus case"
        );
    }
}
