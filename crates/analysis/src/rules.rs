//! The rule engine: five invariant rules plus the directive grammar.
//!
//! Rules run over the lexer's masked code (comments and literal contents
//! blanked), so pattern matches are always real code tokens. Directives are
//! parsed from extracted comments whose trimmed text *starts with* the
//! `gup-lint:` prefix — prose that merely mentions the grammar never counts.
//!
//! Directive grammar (each as its own comment, or trailing on the target line):
//!
//! * allow — `gup-lint: allow(<rule>) <reason>`: suppresses `<rule>` on the
//!   directive's line and, for a comment that owns its line, on the next line
//!   containing code. The reason is mandatory; an allow without one is itself a
//!   finding.
//! * region open — `gup-lint: region(no_alloc)`: starts a region in which the
//!   allocating constructs named by [`NO_ALLOC_PATTERNS`] are denied.
//! * region close — `gup-lint: end_region`.

use crate::lexer::{lex, Comment, Lexed};

/// Rule identifiers, as written inside `allow(...)`.
pub const RULES: [&str; 5] = [
    CLOCK_DISCIPLINE,
    NO_ALLOC,
    PANIC_FREEDOM,
    RELAXED_ORDERING,
    UNSAFE_HYGIENE,
];

/// R1: raw clock reads outside the deadline module.
pub const CLOCK_DISCIPLINE: &str = "clock_discipline";
/// R2: allocating constructs inside a `region(no_alloc)` marker pair.
pub const NO_ALLOC: &str = "no_alloc";
/// R3: panicking constructs in daemon/core non-test code.
pub const PANIC_FREEDOM: &str = "panic_freedom";
/// R4: `Ordering::Relaxed` without an adjacent justification.
pub const RELAXED_ORDERING: &str = "relaxed_ordering";
/// R5: `unsafe` without an adjacent `SAFETY:` comment.
pub const UNSAFE_HYGIENE: &str = "unsafe_hygiene";

/// Pseudo-rule for malformed directives (bad rule name, missing reason,
/// unbalanced region markers). Not allowable — fix the directive instead.
pub const DIRECTIVE: &str = "directive";

/// The allocating constructs denied inside a `no_alloc` region. Textual and
/// local by design: calls into allocating helpers are pinned by the dynamic
/// allocator tests; this rule keeps *direct* allocations out of the marked
/// hot paths.
pub const NO_ALLOC_PATTERNS: [&str; 10] = [
    "Vec::new",
    "vec!",
    ".to_vec",
    ".clone()",
    "format!",
    "Box::new",
    "String::new",
    ".to_owned",
    ".to_string",
    "with_capacity",
];

const CLOCK_PATTERNS: [&str; 2] = ["Instant::now", "SystemTime::now"];
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// One rule violation (or directive error) at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`] or [`DIRECTIVE`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to `path` (workspace-relative, forward slashes).
#[derive(Clone, Copy, Debug)]
struct Scope {
    clock: bool,
    panic: bool,
}

fn scope_of(path: &str) -> Scope {
    // R1 allowlist: the deadline module itself (the one blessed home of raw
    // clock reads), benches, examples, and test sources — measurement and
    // fixture code legitimately reads the clock.
    let clock = !(path == "crates/graph/src/deadline.rs"
        || path.starts_with("crates/bench/")
        || path.starts_with("examples/")
        || path.starts_with("tests/")
        || path.contains("/examples/")
        || path.contains("/benches/")
        || path.contains("/tests/"));
    // R3 scope: the serving daemon, the core engine, the continuous-matching
    // layer, and the index loader (a poisoned mutex, a "can't happen", or a
    // corrupt byte on disk must degrade, not kill the process — the loader
    // parses untrusted files, and gup_stream runs inside the live server).
    let panic = path.starts_with("crates/serve/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/stream/src/")
        || path == "crates/graph/src/index_io.rs";
    Scope { clock, panic }
}

/// A parsed `allow` directive.
struct Allow {
    rule: &'static str,
    /// Lines it suppresses (the directive line, plus the next code line for a
    /// comment that owns its line).
    lines: Vec<usize>,
}

/// Analyzes one source file. `path` is the workspace-relative path used for
/// rule scoping and reporting.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let scope = scope_of(path);
    let mut findings = Vec::new();
    let (allows, regions) = parse_directives(path, &lexed, &mut findings);

    let suppressed = |rule: &str, line: usize| {
        allows
            .iter()
            .any(|a| a.rule == rule && a.lines.contains(&line))
    };
    let in_test = |line: usize| lexed.test_line.get(line - 1).copied().unwrap_or(false);

    for (idx, code_line) in lexed.lines.iter().enumerate() {
        let line = idx + 1;
        if in_test(line) {
            continue;
        }
        if scope.clock {
            for pat in CLOCK_PATTERNS {
                if has_token(code_line, pat) && !suppressed(CLOCK_DISCIPLINE, line) {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: CLOCK_DISCIPLINE,
                        message: format!(
                            "raw `{pat}()` call: route deadlines and timing through \
                             `gup_graph::deadline` (DeadlineSampler / Stopwatch / \
                             deadline_after) instead of reading the clock directly"
                        ),
                    });
                }
            }
        }
        if scope.panic {
            for pat in PANIC_PATTERNS {
                if has_token(code_line, pat) && !suppressed(PANIC_FREEDOM, line) {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: PANIC_FREEDOM,
                        message: format!(
                            "`{pat}` in daemon/core non-test code: convert to a typed \
                             error or graceful degradation, or annotate why it cannot fire",
                            pat = pat.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        if has_token(code_line, "Ordering::Relaxed")
            && !suppressed(RELAXED_ORDERING, line)
            && !relaxed_is_justified(&lexed, line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: RELAXED_ORDERING,
                message: "`Ordering::Relaxed` without an adjacent justification comment \
                          (a comment mentioning \"relaxed\" on this line, or directly above \
                          the contiguous Relaxed cluster)"
                    .to_string(),
            });
        }
        if has_token(code_line, "unsafe")
            && !suppressed(UNSAFE_HYGIENE, line)
            && !unsafe_is_justified(&lexed, line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: UNSAFE_HYGIENE,
                message: "`unsafe` without a `// SAFETY:` comment on the same line or \
                          directly above"
                    .to_string(),
            });
        }
    }

    // R2: allocating constructs inside marked regions (test lines included —
    // a region marker in test code still means what it says).
    for &(open, close) in &regions {
        for line in (open + 1)..close {
            let code_line = match lexed.lines.get(line - 1) {
                Some(l) => l,
                None => break,
            };
            for pat in NO_ALLOC_PATTERNS {
                if has_token(code_line, pat) && !suppressed(NO_ALLOC, line) {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: NO_ALLOC,
                        message: format!(
                            "allocating construct `{pat}` inside a no_alloc region \
                             (opened at line {open})"
                        ),
                    });
                }
            }
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Parses every `gup-lint:` directive out of the comments: allows (with their
/// suppression lines) and balanced no_alloc regions. Malformed directives
/// become [`DIRECTIVE`] findings.
fn parse_directives(
    path: &str,
    lexed: &Lexed,
    findings: &mut Vec<Finding>,
) -> (Vec<Allow>, Vec<(usize, usize)>) {
    let mut allows = Vec::new();
    let mut regions = Vec::new();
    let mut open_region: Option<usize> = None;
    for comment in &lexed.comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("gup-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(args) = rest.strip_prefix("allow(") {
            match parse_allow(args) {
                Ok((rule, reason)) => {
                    if reason.is_empty() {
                        findings.push(directive_finding(
                            path,
                            comment.line,
                            format!("allow({rule}) requires a reason after the closing paren"),
                        ));
                    } else {
                        allows.push(Allow {
                            rule,
                            lines: allow_lines(lexed, comment),
                        });
                    }
                }
                Err(msg) => findings.push(directive_finding(path, comment.line, msg)),
            }
        } else if rest == "region(no_alloc)" {
            if let Some(open) = open_region {
                findings.push(directive_finding(
                    path,
                    comment.line,
                    format!("region(no_alloc) opened inside the region opened at line {open}"),
                ));
            } else {
                open_region = Some(comment.line);
            }
        } else if rest == "end_region" {
            match open_region.take() {
                Some(open) => regions.push((open, comment.line)),
                None => findings.push(directive_finding(
                    path,
                    comment.line,
                    "end_region without an open region".to_string(),
                )),
            }
        } else {
            findings.push(directive_finding(
                path,
                comment.line,
                format!("unknown directive `{rest}`"),
            ));
        }
    }
    if let Some(open) = open_region {
        findings.push(directive_finding(
            path,
            open,
            "region(no_alloc) is never closed".to_string(),
        ));
    }
    (allows, regions)
}

fn directive_finding(path: &str, line: usize, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        rule: DIRECTIVE,
        message,
    }
}

fn parse_allow(args: &str) -> Result<(&'static str, &str), String> {
    let Some(close) = args.find(')') else {
        return Err("allow( without a closing paren".to_string());
    };
    let name = args[..close].trim();
    let reason = args[close + 1..].trim();
    match RULES.iter().find(|&&r| r == name) {
        Some(&rule) => Ok((rule, reason)),
        None => Err(format!(
            "unknown rule `{name}` (expected one of: {})",
            RULES.join(", ")
        )),
    }
}

/// The lines an allow suppresses: its own line, plus — when the comment owns
/// its line — the next line that contains code.
fn allow_lines(lexed: &Lexed, comment: &Comment) -> Vec<usize> {
    let mut lines = vec![comment.line];
    if comment.own_line {
        for (idx, code_line) in lexed.lines.iter().enumerate().skip(comment.line) {
            if !code_line.trim().is_empty() {
                lines.push(idx + 1);
                break;
            }
        }
    }
    lines
}

/// `true` when `pattern` occurs in `code_line` as a token (not as the tail or
/// head of a longer identifier).
fn has_token(code_line: &str, pattern: &str) -> bool {
    let bytes = code_line.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code_line
        .get(from..)
        .and_then(|tail| tail.find(pattern).map(|p| from + p))
    {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + pattern.len();
        let pattern_ends_ident = pattern.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let after_ok = !pattern_ends_ident || after >= bytes.len() || !is_ident_byte(bytes[after]);
        let before_ident_ok = !pattern
            .as_bytes()
            .first()
            .is_some_and(|&b| is_ident_byte(b))
            || before_ok;
        if before_ident_ok && after_ok {
            return true;
        }
        from = pos + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// R4 justification: a comment mentioning "relaxed" (case-insensitive) on the
/// finding's line, or above the contiguous cluster of `Ordering::Relaxed`
/// lines the finding belongs to (intervening blank/comment-only lines are
/// skipped; the upward scan is bounded).
fn relaxed_is_justified(lexed: &Lexed, line: usize) -> bool {
    let mentions = |l: usize| {
        lexed
            .comments
            .iter()
            .any(|c| c.line == l && c.text.to_ascii_lowercase().contains("relaxed"))
    };
    if mentions(line) {
        return true;
    }
    let mut l = line;
    for _ in 0..15 {
        if l <= 1 {
            break;
        }
        l -= 1;
        if mentions(l) {
            return true;
        }
        let code_line = match lexed.lines.get(l - 1) {
            Some(cl) => cl,
            None => break,
        };
        let has_code = !code_line.trim().is_empty();
        // Stop at the first code line outside the Relaxed cluster.
        if has_code && !code_line.contains("Ordering::Relaxed") {
            break;
        }
    }
    false
}

/// R5 justification: a comment containing `SAFETY:` on the same line or one of
/// the three lines directly above.
fn unsafe_is_justified(lexed: &Lexed, line: usize) -> bool {
    lexed
        .comments
        .iter()
        .any(|c| c.line + 3 >= line && c.line <= line && c.text.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_of(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src)
    }

    fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- R1 ----------------------------------------------------------------

    #[test]
    fn clock_discipline_fires_on_raw_instant_now() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let found = findings_of("crates/core/src/search.rs", src);
        assert_eq!(rules_fired(&found), vec![CLOCK_DISCIPLINE]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn clock_discipline_fires_on_system_time_now() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }\n";
        let found = findings_of("crates/serve/src/server.rs", src);
        assert_eq!(rules_fired(&found), vec![CLOCK_DISCIPLINE]);
    }

    #[test]
    fn clock_discipline_allowlists_the_deadline_module_and_test_paths() {
        let src = "fn f() { let t = Instant::now(); }\n";
        for path in [
            "crates/graph/src/deadline.rs",
            "crates/bench/src/harness.rs",
            "examples/serve_load.rs",
            "tests/batch_deadline.rs",
            "crates/bench/benches/end_to_end.rs",
        ] {
            assert!(findings_of(path, src).is_empty(), "path {path}");
        }
    }

    #[test]
    fn clock_discipline_skips_cfg_test_regions() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n";
        assert!(findings_of("crates/core/src/search.rs", src).is_empty());
    }

    #[test]
    fn clock_discipline_skips_comments_and_strings() {
        let src = "// Instant::now() would be wrong here\nfn f() { let s = \"Instant::now()\"; }\n";
        assert!(findings_of("crates/core/src/search.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_line() {
        let src =
            "fn f() { let t = Instant::now(); } // gup-lint: allow(clock_discipline) CLI timing\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_own_line_suppresses_next_code_line() {
        let src = "// gup-lint: allow(clock_discipline) measurement, not enforcement\n\
                   let t = Instant::now();\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_past_the_next_code_line() {
        let src = "// gup-lint: allow(clock_discipline) only the first\n\
                   let t = Instant::now();\n\
                   let u = Instant::now();\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert_eq!(rules_fired(&found), vec![CLOCK_DISCIPLINE]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_a_directive_finding() {
        let src = "// gup-lint: allow(clock_discipline)\nlet t = Instant::now();\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert!(found.iter().any(|f| f.rule == DIRECTIVE));
        assert!(found.iter().any(|f| f.rule == CLOCK_DISCIPLINE));
    }

    #[test]
    fn allow_with_unknown_rule_is_a_directive_finding() {
        let src = "// gup-lint: allow(no_such_rule) whatever\nfn f() {}\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
    }

    #[test]
    fn prose_mentioning_the_grammar_is_not_a_directive() {
        let src = "/// The marker `gup-lint: allow(panic_freedom) reason` suppresses a finding.\nfn f() {}\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R2 ----------------------------------------------------------------

    #[test]
    fn no_alloc_region_denies_allocating_constructs() {
        let src = "fn f() {\n\
                   // gup-lint: region(no_alloc)\n\
                   let v = Vec::new();\n\
                   let w = x.to_vec();\n\
                   let y = z.clone();\n\
                   let s = format!(\"x\");\n\
                   let b = Box::new(1);\n\
                   // gup-lint: end_region\n\
                   let fine = Vec::new();\n\
                   }\n";
        let found = findings_of("crates/graph/src/sink.rs", src);
        assert_eq!(found.len(), 5);
        assert!(found.iter().all(|f| f.rule == NO_ALLOC));
        assert_eq!(found[0].line, 3);
        assert_eq!(found[4].line, 7);
    }

    #[test]
    fn no_alloc_allows_annotated_lines() {
        let src = "// gup-lint: region(no_alloc)\n\
                   // gup-lint: allow(no_alloc) one-time warmup, not per-embedding\n\
                   let v = Vec::new();\n\
                   let n = count + 1;\n\
                   // gup-lint: end_region\n";
        assert!(findings_of("crates/graph/src/sink.rs", src).is_empty());
    }

    #[test]
    fn unbalanced_region_markers_are_directive_findings() {
        let open_only = "// gup-lint: region(no_alloc)\nfn f() {}\n";
        let found = findings_of("crates/core/src/x.rs", open_only);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
        let close_only = "fn f() {}\n// gup-lint: end_region\n";
        let found = findings_of("crates/core/src/x.rs", close_only);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
        let nested = "// gup-lint: region(no_alloc)\n// gup-lint: region(no_alloc)\n// gup-lint: end_region\n";
        let found = findings_of("crates/core/src/x.rs", nested);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
    }

    #[test]
    fn clone_of_a_named_method_is_not_flagged_outside_parens() {
        // `.clone()` must match exactly; `.cloned()` is iterator adapter, fine.
        let src = "// gup-lint: region(no_alloc)\n\
                   let x = iter.cloned().next();\n\
                   // gup-lint: end_region\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R3 ----------------------------------------------------------------

    #[test]
    fn panic_freedom_fires_in_core_serve_stream_and_index_io_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_fired(&findings_of("crates/core/src/gcs.rs", src)),
            vec![PANIC_FREEDOM]
        );
        assert_eq!(
            rules_fired(&findings_of("crates/serve/src/server.rs", src)),
            vec![PANIC_FREEDOM]
        );
        // The continuous matcher runs inside the live server: in scope.
        assert_eq!(
            rules_fired(&findings_of("crates/stream/src/lib.rs", src)),
            vec![PANIC_FREEDOM]
        );
        // The index loader parses untrusted bytes: in scope.
        assert_eq!(
            rules_fired(&findings_of("crates/graph/src/index_io.rs", src)),
            vec![PANIC_FREEDOM]
        );
        // The rest of the graph crate is not.
        assert!(findings_of("crates/graph/src/builder.rs", src).is_empty());
        assert!(findings_of("crates/baselines/src/join.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_covers_each_construct() {
        for (snippet, label) in [
            ("x.unwrap()", ".unwrap"),
            ("x.expect(\"msg\")", ".expect"),
            ("panic!(\"boom\")", "panic!"),
            ("unreachable!()", "unreachable!"),
            ("todo!()", "todo!"),
            ("unimplemented!()", "unimplemented!"),
        ] {
            let src = format!("fn f() {{ {snippet}; }}\n");
            let found = findings_of("crates/serve/src/protocol.rs", &src);
            assert_eq!(rules_fired(&found), vec![PANIC_FREEDOM], "{label}");
        }
    }

    #[test]
    fn panic_freedom_does_not_fire_on_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_skips_test_code_and_honors_allows() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(findings_of("crates/core/src/x.rs", test_src).is_empty());
        let allowed = "fn f(x: Option<u32>) -> u32 {\n\
                       // gup-lint: allow(panic_freedom) invariant: caller checked is_some\n\
                       x.unwrap()\n\
                       }\n";
        assert!(findings_of("crates/core/src/x.rs", allowed).is_empty());
    }

    // ---- R4 ----------------------------------------------------------------

    #[test]
    fn relaxed_without_justification_fires() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let found = findings_of("crates/core/src/session.rs", src);
        assert_eq!(rules_fired(&found), vec![RELAXED_ORDERING]);
    }

    #[test]
    fn relaxed_with_same_line_comment_passes() {
        let src =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // relaxed: stats only\n";
        assert!(findings_of("crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn relaxed_comment_above_covers_a_contiguous_cluster() {
        let src = "fn f(c: &AtomicU64) {\n\
                   // Relaxed: monotonic counters read only for reporting.\n\
                   let a = c.load(Ordering::Relaxed);\n\
                   let b = c.load(Ordering::Relaxed);\n\
                   let d = c.load(Ordering::Relaxed);\n\
                   }\n";
        assert!(findings_of("crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn relaxed_cluster_justification_does_not_cross_unrelated_code() {
        let src = "fn f(c: &AtomicU64) {\n\
                   // Relaxed: fine here.\n\
                   let a = c.load(Ordering::Relaxed);\n\
                   do_something_else();\n\
                   let b = c.load(Ordering::Relaxed);\n\
                   }\n";
        let found = findings_of("crates/core/src/session.rs", src);
        assert_eq!(rules_fired(&found), vec![RELAXED_ORDERING]);
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn relaxed_in_test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R5 ----------------------------------------------------------------

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
        let found = findings_of("crates/core/src/simd.rs", src);
        assert_eq!(rules_fired(&found), vec![UNSAFE_HYGIENE]);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src = "fn f(p: *const u32) -> u32 {\n\
                   // SAFETY: caller guarantees `p` is valid and aligned.\n\
                   unsafe { *p }\n\
                   }\n";
        assert!(findings_of("crates/core/src/simd.rs", src).is_empty());
    }

    #[test]
    fn unsafe_inside_identifier_does_not_fire() {
        let src = "fn f() { let not_unsafe_here = 1; let unsafer = 2; }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- lexing trickiness end-to-end --------------------------------------

    #[test]
    fn raw_strings_and_nested_comments_cannot_fake_findings() {
        let src = "fn f() {\n\
                   let a = r#\"Instant::now() .unwrap() panic!\"#;\n\
                   /* outer /* Ordering::Relaxed */ still */\n\
                   let b = \"// unsafe { }\";\n\
                   }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn directive_inside_a_string_is_inert() {
        let src = "fn f() { let s = \"gup-lint: allow(panic_freedom) nope\"; s.len(); }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_carry_locations() {
        let src = "fn f(x: Option<u32>) {\n\
                   let t = Instant::now();\n\
                   x.unwrap();\n\
                   }\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert_eq!((found[0].line, found[0].rule), (2, CLOCK_DISCIPLINE));
        assert_eq!((found[1].line, found[1].rule), (3, PANIC_FREEDOM));
        let shown = found[0].to_string();
        assert!(shown.contains("crates/core/src/x.rs:2"));
        assert!(shown.contains("clock_discipline"));
    }
}
