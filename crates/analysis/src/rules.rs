//! The rule engine: eight invariant rules plus the directive grammar.
//!
//! Rules run over the lexer's masked code (comments and literal contents
//! blanked), so pattern matches are always real code tokens. R1–R5 are
//! token-local; R6–R8 are scope-aware — they consume the per-function guard
//! spans and loop spans built by [`crate::scope`]. Directives are parsed from
//! extracted comments whose trimmed text *starts with* the `gup-lint:` prefix
//! — prose that merely mentions the grammar never counts.
//!
//! Directive grammar (each as its own comment, or trailing on the target line):
//!
//! * allow — `gup-lint: allow(<rule>) <reason>`: suppresses `<rule>` on the
//!   directive's line and, for a comment that owns its line, on the next line
//!   containing code. The reason is mandatory; an allow without one is itself a
//!   finding.
//! * region open — `gup-lint: region(no_alloc)`: starts a region in which the
//!   allocating constructs named by [`NO_ALLOC_PATTERNS`] are denied.
//! * region close — `gup-lint: end_region`.

use crate::lexer::{lex, Comment, Lexed};
use crate::scope::{function_scopes, line_at, line_starts, AcquireKind, FunctionScope};
use std::collections::BTreeSet;

/// Rule identifiers, as written inside `allow(...)`.
pub const RULES: [&str; 8] = [
    CLOCK_DISCIPLINE,
    NO_ALLOC,
    PANIC_FREEDOM,
    RELAXED_ORDERING,
    UNSAFE_HYGIENE,
    LOCK_ORDER,
    GUARD_ACROSS_BLOCKING,
    ADMISSION_DISCIPLINE,
];

/// R1: raw clock reads outside the deadline module.
pub const CLOCK_DISCIPLINE: &str = "clock_discipline";
/// R2: allocating constructs inside a `region(no_alloc)` marker pair.
pub const NO_ALLOC: &str = "no_alloc";
/// R3: panicking constructs in daemon/core non-test code.
pub const PANIC_FREEDOM: &str = "panic_freedom";
/// R4: `Ordering::Relaxed` without an adjacent justification.
pub const RELAXED_ORDERING: &str = "relaxed_ordering";
/// R5: `unsafe` without an adjacent `SAFETY:` comment.
pub const UNSAFE_HYGIENE: &str = "unsafe_hygiene";
/// R6: nested lock acquisition violating a declared manifest order, or a
/// same-named re-acquisition while the first guard is live.
pub const LOCK_ORDER: &str = "lock_order";
/// R7: a lock guard held across a blocking I/O call.
pub const GUARD_ACROSS_BLOCKING: &str = "guard_across_blocking";
/// R8: unbounded channels or per-iteration thread spawns in the serving layer.
pub const ADMISSION_DISCIPLINE: &str = "admission_discipline";

/// Pseudo-rule for malformed directives (bad rule name, missing reason,
/// unbalanced region markers). Not allowable — fix the directive instead.
pub const DIRECTIVE: &str = "directive";

/// A rule's severity: `"critical"` for the deadlock-shaped rules (a missed
/// finding can wedge the live daemon), `"error"` for the rest. Severity is
/// informational — every finding fails the lint run regardless.
pub fn severity(rule: &str) -> &'static str {
    match rule {
        LOCK_ORDER | GUARD_ACROSS_BLOCKING => "critical",
        _ => "error",
    }
}

/// Documentation for one rule: what `--explain` prints, and the `rule_doc`
/// summary carried in JSON output.
#[derive(Clone, Copy, Debug)]
pub struct RuleDoc {
    /// The rule id ([`RULES`] or [`DIRECTIVE`]).
    pub rule: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the invariant exists.
    pub rationale: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// A worked `allow` annotation.
    pub allow_example: &'static str,
}

/// One entry per rule, in [`RULES`] order, plus the directive pseudo-rule.
pub const RULE_DOCS: [RuleDoc; 9] = [
    RuleDoc {
        rule: CLOCK_DISCIPLINE,
        summary: "raw clock reads outside gup_graph::deadline",
        rationale: "Three separate PRs fixed deadline-enforcement holes caused by ad-hoc \
                    Instant::now() checks; budgets must flow through the shared \
                    DeadlineSampler/Stopwatch so every engine agrees on the clock.",
        scope: "everywhere except crates/graph/src/deadline.rs, benches, examples, and tests",
        allow_example: "// gup-lint: allow(clock_discipline) CLI wall-clock report, not enforcement",
    },
    RuleDoc {
        rule: NO_ALLOC,
        summary: "allocating constructs inside region(no_alloc) markers",
        rationale: "The enumeration hot paths are allocation-free by design (the dynamic \
                    allocator tests pin the totals); marked regions keep direct allocations \
                    from creeping back in.",
        scope: "between `gup-lint: region(no_alloc)` and `gup-lint: end_region` markers",
        allow_example: "// gup-lint: allow(no_alloc) one-time warmup, not per-embedding",
    },
    RuleDoc {
        rule: PANIC_FREEDOM,
        summary: "panicking constructs in daemon/core non-test code",
        rationale: "A poisoned mutex, a \"can't happen\", or a corrupt byte on disk must \
                    degrade into a typed error — not kill a process serving other clients.",
        scope: "crates/serve, crates/core, crates/stream, crates/graph/src/index_io.rs, \
                crates/graph/src/delta.rs (non-test code)",
        allow_example: "// gup-lint: allow(panic_freedom) invariant: caller checked is_some",
    },
    RuleDoc {
        rule: RELAXED_ORDERING,
        summary: "Ordering::Relaxed without an adjacent justification",
        rationale: "Relaxed atomics are correct only under an argument about what they do \
                    NOT synchronize; the argument belongs next to the code.",
        scope: "all non-test code",
        allow_example: "// gup-lint: allow(relaxed_ordering) counter is advisory, see DESIGN.md",
    },
    RuleDoc {
        rule: UNSAFE_HYGIENE,
        summary: "unsafe without an adjacent SAFETY: comment",
        rationale: "Every unsafe block encodes a proof obligation; the proof sketch belongs \
                    on the block.",
        scope: "all non-test code",
        allow_example: "// gup-lint: allow(unsafe_hygiene) SAFETY argument is in the module doc",
    },
    RuleDoc {
        rule: LOCK_ORDER,
        summary: "nested lock acquisition violating the declared hierarchy",
        rationale: "gup-serve holds up to four locks at once; a single inverted pair \
                    deadlocks the daemon under load. The hierarchy is declared once \
                    (LOCK_MANIFESTS, mirrored in DESIGN.md \"Lock hierarchy\") and enforced \
                    here. Re-acquiring a same-named lock while its guard is live is \
                    self-deadlock: the vendored parking_lot locks are not reentrant.",
        scope: "files under a LOCK_MANIFESTS prefix (crates/serve, crates/core), non-test code",
        allow_example: "// gup-lint: allow(lock_order) distinct instances: deques[i] and deques[j], i != j",
    },
    RuleDoc {
        rule: GUARD_ACROSS_BLOCKING,
        summary: "lock guard held across a blocking I/O call",
        rationale: "A guard held across a socket write or channel recv turns one stalled \
                    peer into a pile-up on the lock: PR 10's seed bug held the watchers \
                    registry lock while pushing match lines to a possibly-dead client. The \
                    per-connection writer lock is the one blessed exception for \
                    write-flavored calls — serializing writes is its entire purpose.",
        scope: "all non-test code outside benches/examples/tests; findings attach to the \
                blocking call's line",
        allow_example: "// gup-lint: allow(guard_across_blocking) 50 ms recv timeout bounds the hold",
    },
    RuleDoc {
        rule: ADMISSION_DISCIPLINE,
        summary: "unbounded channels or per-iteration spawns in the serving layer",
        rationale: "Everything admitted into gup-serve must pass through the bounded \
                    sync_channel pool so overload surfaces as `busy` backpressure, not as \
                    unbounded queues or thread explosions.",
        scope: "crates/serve and src/bin/gup-serve.rs, non-test code; spawns are flagged \
                only inside loop bodies",
        allow_example: "// gup-lint: allow(admission_discipline) one thread per connection is the documented design",
    },
    RuleDoc {
        rule: DIRECTIVE,
        summary: "malformed gup-lint directive",
        rationale: "A directive that names an unknown rule, lacks a reason, or leaves a \
                    region unbalanced silently fails to do its job; fix the directive.",
        scope: "every gup-lint: comment",
        allow_example: "(not allowable — fix the directive instead)",
    },
];

/// The documentation entry for `rule`, when it exists.
pub fn rule_doc(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.rule == rule)
}

/// The allocating constructs denied inside a `no_alloc` region. Textual and
/// local by design: calls into allocating helpers are pinned by the dynamic
/// allocator tests; this rule keeps *direct* allocations out of the marked
/// hot paths.
pub const NO_ALLOC_PATTERNS: [&str; 10] = [
    "Vec::new",
    "vec!",
    ".to_vec",
    ".clone()",
    "format!",
    "Box::new",
    "String::new",
    ".to_owned",
    ".to_string",
    "with_capacity",
];

const CLOCK_PATTERNS: [&str; 2] = ["Instant::now", "SystemTime::now"];
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// One rule violation (or directive error) at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`] or [`DIRECTIVE`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to `path` (workspace-relative, forward slashes).
#[derive(Clone, Copy, Debug)]
struct Scope {
    clock: bool,
    panic: bool,
    concurrency: bool,
    admission: bool,
}

fn scope_of(path: &str) -> Scope {
    // Benches, examples, and test sources: measurement and fixture code is
    // exempt from the clock and concurrency rules — it legitimately reads the
    // clock, sleeps, and holds locks across prints.
    let measurement = path.starts_with("crates/bench/")
        || path.starts_with("examples/")
        || path.starts_with("tests/")
        || path.contains("/examples/")
        || path.contains("/benches/")
        || path.contains("/tests/");
    // R1 allowlist additionally blesses the deadline module itself — the one
    // home of raw clock reads.
    let clock = !(measurement || path == "crates/graph/src/deadline.rs");
    // R3 scope: the serving daemon, the core engine, the continuous-matching
    // layer, the index loader, and the delta applier (a poisoned mutex, a
    // "can't happen", or a corrupt byte on disk must degrade, not kill the
    // process — the loader parses untrusted files, gup_stream runs inside the
    // live server, and `delta.rs` mutates the persistent index under it).
    let panic = path.starts_with("crates/serve/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/stream/src/")
        || path == "crates/graph/src/index_io.rs"
        || path == "crates/graph/src/delta.rs";
    // R8 scope: the serving layer only — that is where admission control lives.
    let admission = path.starts_with("crates/serve/src/") || path == "src/bin/gup-serve.rs";
    Scope {
        clock,
        panic,
        concurrency: !measurement,
        admission,
    }
}

/// A declared lock hierarchy for one area of the workspace: locks must be
/// acquired in `order` (an earlier name may hold while a later one is taken,
/// never the reverse). `blessed_writer` names the one lock R7 permits across
/// *write-flavored* blocking calls — the per-connection writer mutex, whose
/// entire purpose is serializing socket writes.
#[derive(Clone, Copy, Debug)]
pub struct LockOrderManifest {
    /// Workspace-relative path prefix the manifest governs.
    pub scope: &'static str,
    /// Lock names (receiver path tails) in required acquisition order.
    pub order: &'static [&'static str],
    /// The connection-writer lock R7 blesses for write-flavored calls.
    pub blessed_writer: Option<&'static str>,
}

impl LockOrderManifest {
    fn rank(&self, lock: &str) -> Option<usize> {
        self.order.iter().position(|&l| l == lock)
    }
}

/// The workspace's declared lock hierarchies. Locks not named here are exempt
/// from ordering (but still subject to the same-name re-acquisition check).
pub const LOCK_MANIFESTS: &[LockOrderManifest] = &[
    // gup-serve: the delta/reload mutation lock is outermost, then the session
    // rwlock, then the watcher registry, then per-connection writers. DESIGN.md
    // "Lock hierarchy" documents the why.
    LockOrderManifest {
        scope: "crates/serve/src/",
        order: &["mutation", "session", "watchers", "writer"],
        blessed_writer: Some("writer"),
    },
    // The work-stealing driver: a worker may hold at most one deque-class lock
    // (`deques` by index, or its `sink` alias inside SplitHandle) and takes its
    // result `slot` and the session `cache` only standalone.
    LockOrderManifest {
        scope: "crates/core/src/",
        order: &["deques", "sink", "slot", "cache"],
        blessed_writer: None,
    },
];

/// The manifest governing `path`, when one is declared.
pub fn manifest_for(path: &str) -> Option<&'static LockOrderManifest> {
    LOCK_MANIFESTS.iter().find(|m| path.starts_with(m.scope))
}

/// R7: blocking constructs a lock guard must not be held across. The flag
/// marks write-flavored patterns, which the manifest's blessed connection-
/// writer lock may cover.
const BLOCKING_PATTERNS: [(&str, bool); 18] = [
    ("write!", true),
    ("writeln!", true),
    (".write_all(", true),
    (".write_fmt(", true),
    (".flush(", true),
    (".read_line(", false),
    (".read_until(", false),
    (".read_exact(", false),
    (".read_to_end(", false),
    (".read_to_string(", false),
    (".recv()", false),
    (".recv_timeout(", false),
    (".accept(", false),
    (".send(", false),
    (".wait(", false),
    (".join(", false),
    ("TcpStream::connect", false),
    ("thread::sleep", false),
];

/// R8: unbounded-channel constructors (anywhere in scope) and spawn calls
/// (flagged only inside loop bodies).
const UNBOUNDED_CHANNEL_PATTERNS: [&str; 2] = ["mpsc::channel", "channel("];
const SPAWN_PATTERNS: [&str; 2] = ["thread::spawn", ".spawn("];

/// A parsed `allow` directive.
struct Allow {
    rule: &'static str,
    /// Lines it suppresses (the directive line, plus the next code line for a
    /// comment that owns its line).
    lines: Vec<usize>,
}

/// Analyzes one source file. `path` is the workspace-relative path used for
/// rule scoping and reporting.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let scope = scope_of(path);
    let mut findings = Vec::new();
    let (allows, regions) = parse_directives(path, &lexed, &mut findings);

    let suppressed = |rule: &str, line: usize| {
        allows
            .iter()
            .any(|a| a.rule == rule && a.lines.contains(&line))
    };
    let in_test = |line: usize| lexed.test_line.get(line - 1).copied().unwrap_or(false);

    for (idx, code_line) in lexed.lines.iter().enumerate() {
        let line = idx + 1;
        if in_test(line) {
            continue;
        }
        if scope.clock {
            for pat in CLOCK_PATTERNS {
                if has_token(code_line, pat) && !suppressed(CLOCK_DISCIPLINE, line) {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: CLOCK_DISCIPLINE,
                        message: format!(
                            "raw `{pat}()` call: route deadlines and timing through \
                             `gup_graph::deadline` (DeadlineSampler / Stopwatch / \
                             deadline_after) instead of reading the clock directly"
                        ),
                    });
                }
            }
        }
        if scope.panic {
            for pat in PANIC_PATTERNS {
                if has_token(code_line, pat) && !suppressed(PANIC_FREEDOM, line) {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: PANIC_FREEDOM,
                        message: format!(
                            "`{pat}` in daemon/core non-test code: convert to a typed \
                             error or graceful degradation, or annotate why it cannot fire",
                            pat = pat.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        if has_token(code_line, "Ordering::Relaxed")
            && !suppressed(RELAXED_ORDERING, line)
            && !relaxed_is_justified(&lexed, line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: RELAXED_ORDERING,
                message: "`Ordering::Relaxed` without an adjacent justification comment \
                          (a comment mentioning \"relaxed\" on this line, or directly above \
                          the contiguous Relaxed cluster)"
                    .to_string(),
            });
        }
        if has_token(code_line, "unsafe")
            && !suppressed(UNSAFE_HYGIENE, line)
            && !unsafe_is_justified(&lexed, line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: UNSAFE_HYGIENE,
                message: "`unsafe` without a `// SAFETY:` comment on the same line or \
                          directly above"
                    .to_string(),
            });
        }
    }

    // R2: allocating constructs inside marked regions (test lines included —
    // a region marker in test code still means what it says).
    for &(open, close) in &regions {
        for line in (open + 1)..close {
            let code_line = match lexed.lines.get(line - 1) {
                Some(l) => l,
                None => break,
            };
            for pat in NO_ALLOC_PATTERNS {
                if has_token(code_line, pat) && !suppressed(NO_ALLOC, line) {
                    findings.push(Finding {
                        path: path.to_string(),
                        line,
                        rule: NO_ALLOC,
                        message: format!(
                            "allocating construct `{pat}` inside a no_alloc region \
                             (opened at line {open})"
                        ),
                    });
                }
            }
        }
    }

    // R6–R8: the scope-aware concurrency rules, built on the per-function
    // guard spans and loop spans from the scope pass.
    let manifest = manifest_for(path);
    if scope.concurrency || scope.admission || manifest.is_some() {
        let starts = line_starts(&lexed.code);
        let fscopes = function_scopes(&lexed);
        if let Some(manifest) = manifest {
            lock_order_findings(
                path,
                manifest,
                &fscopes,
                &suppressed,
                &in_test,
                &mut findings,
            );
        }
        if scope.concurrency {
            let blessed = manifest.and_then(|m| m.blessed_writer);
            guard_blocking_findings(
                path,
                &lexed,
                &fscopes,
                &starts,
                blessed,
                &suppressed,
                &in_test,
                &mut findings,
            );
        }
        if scope.admission {
            admission_findings(
                path,
                &lexed,
                &fscopes,
                &starts,
                &suppressed,
                &in_test,
                &mut findings,
            );
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// R6: every pair of overlapping guard spans inside one function, checked
/// against the manifest order — plus the unconditional same-name
/// re-acquisition check (self-deadlock on non-reentrant locks).
fn lock_order_findings(
    path: &str,
    manifest: &LockOrderManifest,
    fscopes: &[FunctionScope],
    suppressed: &impl Fn(&str, usize) -> bool,
    in_test: &impl Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for f in fscopes {
        for (i, outer) in f.guards.iter().enumerate() {
            if in_test(outer.line) {
                continue;
            }
            for inner in &f.guards[i + 1..] {
                if !outer.covers(inner.acquired)
                    || in_test(inner.line)
                    || suppressed(LOCK_ORDER, inner.line)
                {
                    continue;
                }
                if outer.lock == inner.lock {
                    findings.push(Finding {
                        path: path.to_string(),
                        line: inner.line,
                        rule: LOCK_ORDER,
                        message: format!(
                            "`{lock}{acc}` while the guard on `{lock}` from line {at} is \
                             still live — self-deadlock on a non-reentrant lock (drop the \
                             first guard, or annotate why these are distinct instances)",
                            lock = inner.lock,
                            acc = accessor(inner.kind),
                            at = outer.line,
                        ),
                    });
                } else if let (Some(outer_rank), Some(inner_rank)) =
                    (manifest.rank(&outer.lock), manifest.rank(&inner.lock))
                {
                    if inner_rank < outer_rank {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: inner.line,
                            rule: LOCK_ORDER,
                            message: format!(
                                "acquires `{}` while `{}` (line {}) is held, inverting the \
                                 declared lock order for {} ({})",
                                inner.lock,
                                outer.lock,
                                outer.line,
                                manifest.scope,
                                manifest.order.join(" < "),
                            ),
                        });
                    }
                }
            }
        }
    }
}

fn accessor(kind: AcquireKind) -> &'static str {
    match kind {
        AcquireKind::Lock => ".lock()",
        AcquireKind::Read => ".read()",
        AcquireKind::Write => ".write()",
    }
}

/// R7: a blocking call inside a live guard span. Findings attach to the
/// blocking call's line (that is where the allow goes). The manifest's blessed
/// writer lock is exempt for write-flavored patterns only.
#[allow(clippy::too_many_arguments)]
fn guard_blocking_findings(
    path: &str,
    lexed: &Lexed,
    fscopes: &[FunctionScope],
    starts: &[usize],
    blessed: Option<&str>,
    suppressed: &impl Fn(&str, usize) -> bool,
    in_test: &impl Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let positions: Vec<(usize, &str, bool)> = BLOCKING_PATTERNS
        .iter()
        .flat_map(|&(pat, write_flavored)| {
            token_positions(&lexed.code, pat)
                .into_iter()
                .map(move |pos| (pos, pat, write_flavored))
        })
        .collect();
    if positions.is_empty() {
        return;
    }
    // One finding per (blocking line, guard): two write! calls on one line
    // under one guard are one problem, not two.
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for f in fscopes {
        for guard in &f.guards {
            if in_test(guard.line) {
                continue;
            }
            for &(pos, pat, write_flavored) in &positions {
                if !guard.covers(pos) {
                    continue;
                }
                if write_flavored && blessed == Some(guard.lock.as_str()) {
                    continue;
                }
                let line = line_at(starts, pos);
                if in_test(line)
                    || suppressed(GUARD_ACROSS_BLOCKING, line)
                    || !seen.insert((line, guard.line, guard.lock.clone()))
                {
                    continue;
                }
                findings.push(Finding {
                    path: path.to_string(),
                    line,
                    rule: GUARD_ACROSS_BLOCKING,
                    message: format!(
                        "blocking call `{}` while the guard on `{}` (line {}) is live: \
                         release the guard first, or annotate why the hold is bounded",
                        pat.trim_start_matches('.').trim_end_matches('('),
                        guard.lock,
                        guard.line,
                    ),
                });
            }
        }
    }
}

/// R8: unbounded `mpsc::channel` constructors anywhere in the serving layer,
/// and thread spawns inside loop bodies (one thread per admitted request is
/// exactly the unbounded-work shape the sync_channel pool exists to prevent).
fn admission_findings(
    path: &str,
    lexed: &Lexed,
    fscopes: &[FunctionScope],
    starts: &[usize],
    suppressed: &impl Fn(&str, usize) -> bool,
    in_test: &impl Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let mut channel_lines = BTreeSet::new();
    for pat in UNBOUNDED_CHANNEL_PATTERNS {
        for pos in token_positions(&lexed.code, pat) {
            let line = line_at(starts, pos);
            if in_test(line)
                || suppressed(ADMISSION_DISCIPLINE, line)
                || !channel_lines.insert(line)
            {
                continue;
            }
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: ADMISSION_DISCIPLINE,
                message: "unbounded `mpsc::channel` in the serving layer: use a bounded \
                          `sync_channel` so overload surfaces as backpressure, not as an \
                          unbounded queue"
                    .to_string(),
            });
        }
    }
    let mut spawn_lines = BTreeSet::new();
    for pat in SPAWN_PATTERNS {
        for pos in token_positions(&lexed.code, pat) {
            // Attribute the spawn to the innermost enclosing function; flag it
            // only when it sits inside one of that function's loop bodies.
            let Some(f) = fscopes
                .iter()
                .filter(|f| f.body.0 < pos && pos < f.body.1)
                .max_by_key(|f| f.body.0)
            else {
                continue;
            };
            if !f.in_loop(pos) {
                continue;
            }
            let line = line_at(starts, pos);
            if in_test(line) || suppressed(ADMISSION_DISCIPLINE, line) || !spawn_lines.insert(line)
            {
                continue;
            }
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: ADMISSION_DISCIPLINE,
                message: "thread spawned per loop iteration in the serving layer: admit \
                          work through the bounded worker pool, or annotate the \
                          bounded-by-design case"
                    .to_string(),
            });
        }
    }
}

/// Every byte position at which `pattern` occurs in `code` as a token (the
/// same boundary rules as [`has_token`], over the whole masked file).
fn token_positions(code: &str, pattern: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code
        .get(from..)
        .and_then(|tail| tail.find(pattern).map(|p| from + p))
    {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + pattern.len();
        let pattern_ends_ident = pattern.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let after_ok = !pattern_ends_ident || after >= bytes.len() || !is_ident_byte(bytes[after]);
        let starts_ident = pattern
            .as_bytes()
            .first()
            .is_some_and(|&b| is_ident_byte(b));
        if (!starts_ident || before_ok) && after_ok {
            out.push(pos);
        }
        from = pos + 1;
    }
    out
}

/// Parses every `gup-lint:` directive out of the comments: allows (with their
/// suppression lines) and balanced no_alloc regions. Malformed directives
/// become [`DIRECTIVE`] findings.
fn parse_directives(
    path: &str,
    lexed: &Lexed,
    findings: &mut Vec<Finding>,
) -> (Vec<Allow>, Vec<(usize, usize)>) {
    let mut allows = Vec::new();
    let mut regions = Vec::new();
    let mut open_region: Option<usize> = None;
    for comment in &lexed.comments {
        let text = comment.text.trim();
        let Some(rest) = text.strip_prefix("gup-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(args) = rest.strip_prefix("allow(") {
            match parse_allow(args) {
                Ok((rule, reason)) => {
                    if reason.is_empty() {
                        findings.push(directive_finding(
                            path,
                            comment.line,
                            format!("allow({rule}) requires a reason after the closing paren"),
                        ));
                    } else {
                        allows.push(Allow {
                            rule,
                            lines: allow_lines(lexed, comment),
                        });
                    }
                }
                Err(msg) => findings.push(directive_finding(path, comment.line, msg)),
            }
        } else if rest == "region(no_alloc)" {
            if let Some(open) = open_region {
                findings.push(directive_finding(
                    path,
                    comment.line,
                    format!("region(no_alloc) opened inside the region opened at line {open}"),
                ));
            } else {
                open_region = Some(comment.line);
            }
        } else if rest == "end_region" {
            match open_region.take() {
                Some(open) => regions.push((open, comment.line)),
                None => findings.push(directive_finding(
                    path,
                    comment.line,
                    "end_region without an open region".to_string(),
                )),
            }
        } else {
            findings.push(directive_finding(
                path,
                comment.line,
                format!("unknown directive `{rest}`"),
            ));
        }
    }
    if let Some(open) = open_region {
        findings.push(directive_finding(
            path,
            open,
            "region(no_alloc) is never closed".to_string(),
        ));
    }
    (allows, regions)
}

fn directive_finding(path: &str, line: usize, message: String) -> Finding {
    Finding {
        path: path.to_string(),
        line,
        rule: DIRECTIVE,
        message,
    }
}

fn parse_allow(args: &str) -> Result<(&'static str, &str), String> {
    let Some(close) = args.find(')') else {
        return Err("allow( without a closing paren".to_string());
    };
    let name = args[..close].trim();
    let reason = args[close + 1..].trim();
    match RULES.iter().find(|&&r| r == name) {
        Some(&rule) => Ok((rule, reason)),
        None => Err(format!(
            "unknown rule `{name}` (expected one of: {})",
            RULES.join(", ")
        )),
    }
}

/// The lines an allow suppresses: its own line, plus — when the comment owns
/// its line — the next line that contains code.
fn allow_lines(lexed: &Lexed, comment: &Comment) -> Vec<usize> {
    let mut lines = vec![comment.line];
    if comment.own_line {
        for (idx, code_line) in lexed.lines.iter().enumerate().skip(comment.line) {
            if !code_line.trim().is_empty() {
                lines.push(idx + 1);
                break;
            }
        }
    }
    lines
}

/// `true` when `pattern` occurs in `code_line` as a token (not as the tail or
/// head of a longer identifier).
fn has_token(code_line: &str, pattern: &str) -> bool {
    let bytes = code_line.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code_line
        .get(from..)
        .and_then(|tail| tail.find(pattern).map(|p| from + p))
    {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + pattern.len();
        let pattern_ends_ident = pattern.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let after_ok = !pattern_ends_ident || after >= bytes.len() || !is_ident_byte(bytes[after]);
        let before_ident_ok = !pattern
            .as_bytes()
            .first()
            .is_some_and(|&b| is_ident_byte(b))
            || before_ok;
        if before_ident_ok && after_ok {
            return true;
        }
        from = pos + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// R4 justification: a comment mentioning "relaxed" (case-insensitive) on the
/// finding's line, or above the contiguous cluster of `Ordering::Relaxed`
/// lines the finding belongs to (intervening blank/comment-only lines are
/// skipped; the upward scan is bounded).
fn relaxed_is_justified(lexed: &Lexed, line: usize) -> bool {
    let mentions = |l: usize| {
        lexed
            .comments
            .iter()
            .any(|c| c.line == l && c.text.to_ascii_lowercase().contains("relaxed"))
    };
    if mentions(line) {
        return true;
    }
    let mut l = line;
    for _ in 0..15 {
        if l <= 1 {
            break;
        }
        l -= 1;
        if mentions(l) {
            return true;
        }
        let code_line = match lexed.lines.get(l - 1) {
            Some(cl) => cl,
            None => break,
        };
        let has_code = !code_line.trim().is_empty();
        // Stop at the first code line outside the Relaxed cluster.
        if has_code && !code_line.contains("Ordering::Relaxed") {
            break;
        }
    }
    false
}

/// R5 justification: a comment containing `SAFETY:` on the same line or one of
/// the three lines directly above.
fn unsafe_is_justified(lexed: &Lexed, line: usize) -> bool {
    lexed
        .comments
        .iter()
        .any(|c| c.line + 3 >= line && c.line <= line && c.text.contains("SAFETY:"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_of(path: &str, src: &str) -> Vec<Finding> {
        analyze_source(path, src)
    }

    fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- R1 ----------------------------------------------------------------

    #[test]
    fn clock_discipline_fires_on_raw_instant_now() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let found = findings_of("crates/core/src/search.rs", src);
        assert_eq!(rules_fired(&found), vec![CLOCK_DISCIPLINE]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn clock_discipline_fires_on_system_time_now() {
        let src = "fn f() { let t = std::time::SystemTime::now(); }\n";
        let found = findings_of("crates/serve/src/server.rs", src);
        assert_eq!(rules_fired(&found), vec![CLOCK_DISCIPLINE]);
    }

    #[test]
    fn clock_discipline_allowlists_the_deadline_module_and_test_paths() {
        let src = "fn f() { let t = Instant::now(); }\n";
        for path in [
            "crates/graph/src/deadline.rs",
            "crates/bench/src/harness.rs",
            "examples/serve_load.rs",
            "tests/batch_deadline.rs",
            "crates/bench/benches/end_to_end.rs",
        ] {
            assert!(findings_of(path, src).is_empty(), "path {path}");
        }
    }

    #[test]
    fn clock_discipline_skips_cfg_test_regions() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = Instant::now(); }\n}\n";
        assert!(findings_of("crates/core/src/search.rs", src).is_empty());
    }

    #[test]
    fn clock_discipline_skips_comments_and_strings() {
        let src = "// Instant::now() would be wrong here\nfn f() { let s = \"Instant::now()\"; }\n";
        assert!(findings_of("crates/core/src/search.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_same_line() {
        let src =
            "fn f() { let t = Instant::now(); } // gup-lint: allow(clock_discipline) CLI timing\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_own_line_suppresses_next_code_line() {
        let src = "// gup-lint: allow(clock_discipline) measurement, not enforcement\n\
                   let t = Instant::now();\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_does_not_leak_past_the_next_code_line() {
        let src = "// gup-lint: allow(clock_discipline) only the first\n\
                   let t = Instant::now();\n\
                   let u = Instant::now();\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert_eq!(rules_fired(&found), vec![CLOCK_DISCIPLINE]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn allow_without_reason_is_a_directive_finding() {
        let src = "// gup-lint: allow(clock_discipline)\nlet t = Instant::now();\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert!(found.iter().any(|f| f.rule == DIRECTIVE));
        assert!(found.iter().any(|f| f.rule == CLOCK_DISCIPLINE));
    }

    #[test]
    fn allow_with_unknown_rule_is_a_directive_finding() {
        let src = "// gup-lint: allow(no_such_rule) whatever\nfn f() {}\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
    }

    #[test]
    fn prose_mentioning_the_grammar_is_not_a_directive() {
        let src = "/// The marker `gup-lint: allow(panic_freedom) reason` suppresses a finding.\nfn f() {}\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R2 ----------------------------------------------------------------

    #[test]
    fn no_alloc_region_denies_allocating_constructs() {
        let src = "fn f() {\n\
                   // gup-lint: region(no_alloc)\n\
                   let v = Vec::new();\n\
                   let w = x.to_vec();\n\
                   let y = z.clone();\n\
                   let s = format!(\"x\");\n\
                   let b = Box::new(1);\n\
                   // gup-lint: end_region\n\
                   let fine = Vec::new();\n\
                   }\n";
        let found = findings_of("crates/graph/src/sink.rs", src);
        assert_eq!(found.len(), 5);
        assert!(found.iter().all(|f| f.rule == NO_ALLOC));
        assert_eq!(found[0].line, 3);
        assert_eq!(found[4].line, 7);
    }

    #[test]
    fn no_alloc_allows_annotated_lines() {
        let src = "// gup-lint: region(no_alloc)\n\
                   // gup-lint: allow(no_alloc) one-time warmup, not per-embedding\n\
                   let v = Vec::new();\n\
                   let n = count + 1;\n\
                   // gup-lint: end_region\n";
        assert!(findings_of("crates/graph/src/sink.rs", src).is_empty());
    }

    #[test]
    fn unbalanced_region_markers_are_directive_findings() {
        let open_only = "// gup-lint: region(no_alloc)\nfn f() {}\n";
        let found = findings_of("crates/core/src/x.rs", open_only);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
        let close_only = "fn f() {}\n// gup-lint: end_region\n";
        let found = findings_of("crates/core/src/x.rs", close_only);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
        let nested = "// gup-lint: region(no_alloc)\n// gup-lint: region(no_alloc)\n// gup-lint: end_region\n";
        let found = findings_of("crates/core/src/x.rs", nested);
        assert_eq!(rules_fired(&found), vec![DIRECTIVE]);
    }

    #[test]
    fn clone_of_a_named_method_is_not_flagged_outside_parens() {
        // `.clone()` must match exactly; `.cloned()` is iterator adapter, fine.
        let src = "// gup-lint: region(no_alloc)\n\
                   let x = iter.cloned().next();\n\
                   // gup-lint: end_region\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R3 ----------------------------------------------------------------

    #[test]
    fn panic_freedom_fires_in_core_serve_stream_and_index_io_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_fired(&findings_of("crates/core/src/gcs.rs", src)),
            vec![PANIC_FREEDOM]
        );
        assert_eq!(
            rules_fired(&findings_of("crates/serve/src/server.rs", src)),
            vec![PANIC_FREEDOM]
        );
        // The continuous matcher runs inside the live server: in scope.
        assert_eq!(
            rules_fired(&findings_of("crates/stream/src/lib.rs", src)),
            vec![PANIC_FREEDOM]
        );
        // The index loader parses untrusted bytes: in scope.
        assert_eq!(
            rules_fired(&findings_of("crates/graph/src/index_io.rs", src)),
            vec![PANIC_FREEDOM]
        );
        // The rest of the graph crate is not.
        assert!(findings_of("crates/graph/src/builder.rs", src).is_empty());
        assert!(findings_of("crates/baselines/src/join.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_covers_each_construct() {
        for (snippet, label) in [
            ("x.unwrap()", ".unwrap"),
            ("x.expect(\"msg\")", ".expect"),
            ("panic!(\"boom\")", "panic!"),
            ("unreachable!()", "unreachable!"),
            ("todo!()", "todo!"),
            ("unimplemented!()", "unimplemented!"),
        ] {
            let src = format!("fn f() {{ {snippet}; }}\n");
            let found = findings_of("crates/serve/src/protocol.rs", &src);
            assert_eq!(rules_fired(&found), vec![PANIC_FREEDOM], "{label}");
        }
    }

    #[test]
    fn panic_freedom_does_not_fire_on_unwrap_or_variants() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_freedom_skips_test_code_and_honors_allows() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(findings_of("crates/core/src/x.rs", test_src).is_empty());
        let allowed = "fn f(x: Option<u32>) -> u32 {\n\
                       // gup-lint: allow(panic_freedom) invariant: caller checked is_some\n\
                       x.unwrap()\n\
                       }\n";
        assert!(findings_of("crates/core/src/x.rs", allowed).is_empty());
    }

    // ---- R4 ----------------------------------------------------------------

    #[test]
    fn relaxed_without_justification_fires() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        let found = findings_of("crates/core/src/session.rs", src);
        assert_eq!(rules_fired(&found), vec![RELAXED_ORDERING]);
    }

    #[test]
    fn relaxed_with_same_line_comment_passes() {
        let src =
            "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); } // relaxed: stats only\n";
        assert!(findings_of("crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn relaxed_comment_above_covers_a_contiguous_cluster() {
        let src = "fn f(c: &AtomicU64) {\n\
                   // Relaxed: monotonic counters read only for reporting.\n\
                   let a = c.load(Ordering::Relaxed);\n\
                   let b = c.load(Ordering::Relaxed);\n\
                   let d = c.load(Ordering::Relaxed);\n\
                   }\n";
        assert!(findings_of("crates/core/src/session.rs", src).is_empty());
    }

    #[test]
    fn relaxed_cluster_justification_does_not_cross_unrelated_code() {
        let src = "fn f(c: &AtomicU64) {\n\
                   // Relaxed: fine here.\n\
                   let a = c.load(Ordering::Relaxed);\n\
                   do_something_else();\n\
                   let b = c.load(Ordering::Relaxed);\n\
                   }\n";
        let found = findings_of("crates/core/src/session.rs", src);
        assert_eq!(rules_fired(&found), vec![RELAXED_ORDERING]);
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn relaxed_in_test_code_is_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- R5 ----------------------------------------------------------------

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
        let found = findings_of("crates/core/src/simd.rs", src);
        assert_eq!(rules_fired(&found), vec![UNSAFE_HYGIENE]);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src = "fn f(p: *const u32) -> u32 {\n\
                   // SAFETY: caller guarantees `p` is valid and aligned.\n\
                   unsafe { *p }\n\
                   }\n";
        assert!(findings_of("crates/core/src/simd.rs", src).is_empty());
    }

    #[test]
    fn unsafe_inside_identifier_does_not_fire() {
        let src = "fn f() { let not_unsafe_here = 1; let unsafer = 2; }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    // ---- lexing trickiness end-to-end --------------------------------------

    #[test]
    fn raw_strings_and_nested_comments_cannot_fake_findings() {
        let src = "fn f() {\n\
                   let a = r#\"Instant::now() .unwrap() panic!\"#;\n\
                   /* outer /* Ordering::Relaxed */ still */\n\
                   let b = \"// unsafe { }\";\n\
                   }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn directive_inside_a_string_is_inert() {
        let src = "fn f() { let s = \"gup-lint: allow(panic_freedom) nope\"; s.len(); }\n";
        assert!(findings_of("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn findings_are_sorted_and_carry_locations() {
        let src = "fn f(x: Option<u32>) {\n\
                   let t = Instant::now();\n\
                   x.unwrap();\n\
                   }\n";
        let found = findings_of("crates/core/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert_eq!((found[0].line, found[0].rule), (2, CLOCK_DISCIPLINE));
        assert_eq!((found[1].line, found[1].rule), (3, PANIC_FREEDOM));
        let shown = found[0].to_string();
        assert!(shown.contains("crates/core/src/x.rs:2"));
        assert!(shown.contains("clock_discipline"));
    }

    // ---- R6 ----------------------------------------------------------------

    const SERVE: &str = "crates/serve/src/server.rs";

    #[test]
    fn lock_order_fires_on_inverted_nesting() {
        let src = "fn f(s: &Shared) {\n\
                   let w = s.watchers.lock();\n\
                   let m = s.mutation.lock();\n\
                   work(&w, &m);\n\
                   }\n";
        let found = findings_of(SERVE, src);
        assert_eq!(rules_fired(&found), vec![LOCK_ORDER]);
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("mutation"));
        assert!(found[0].message.contains("watchers"));
    }

    #[test]
    fn lock_order_allows_the_declared_nesting() {
        let src = "fn f(s: &Shared) {\n\
                   let _m = s.mutation.lock();\n\
                   let session = s.session.read().clone();\n\
                   let w = s.watchers.lock();\n\
                   let out = s.writer.lock();\n\
                   work(&session, &w, &out);\n\
                   }\n";
        assert!(findings_of(SERVE, src).is_empty());
    }

    #[test]
    fn lock_order_fires_on_same_name_reacquisition() {
        let src = "fn f(s: &Shared) {\n\
                   let a = s.watchers.lock();\n\
                   let b = s.watchers.lock();\n\
                   work(&a, &b);\n\
                   }\n";
        let found = findings_of(SERVE, src);
        assert_eq!(rules_fired(&found), vec![LOCK_ORDER]);
        assert!(found[0].message.contains("self-deadlock"));
    }

    #[test]
    fn lock_order_respects_drop_and_statement_temporaries() {
        // Sequential (non-overlapping) acquisitions in any order are fine.
        let src = "fn f(s: &Shared) {\n\
                   let w = s.watchers.lock();\n\
                   drop(w);\n\
                   let _m = s.mutation.lock();\n\
                   s.watchers.lock().retain(|x| x.id != 0);\n\
                   }\n";
        let found = findings_of(SERVE, src);
        // The statement temporary on line 5 runs under _m: mutation < watchers
        // is the declared order, so still clean.
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn lock_order_ignores_unranked_locks_but_not_same_names() {
        let src = "fn f(s: &Shared) {\n\
                   let q = s.queue.lock();\n\
                   let w = s.watchers.lock();\n\
                   work(&q, &w);\n\
                   }\n";
        // `queue` is not in the manifest: no ordering constraint.
        assert!(findings_of(SERVE, src).is_empty());
    }

    #[test]
    fn lock_order_honors_allows_and_test_code() {
        let allowed = "fn f(s: &Shared) {\n\
                       let w = s.watchers.lock();\n\
                       // gup-lint: allow(lock_order) distinct shard instances\n\
                       let m = s.mutation.lock();\n\
                       work(&w, &m);\n\
                       }\n";
        assert!(findings_of(SERVE, allowed).is_empty());
        let test_code = "#[cfg(test)]\nmod tests {\n\
                         fn f(s: &Shared) {\n\
                         let w = s.watchers.lock();\n\
                         let m = s.mutation.lock();\n\
                         work(&w, &m);\n\
                         }\n\
                         }\n";
        assert!(findings_of(SERVE, test_code).is_empty());
    }

    #[test]
    fn lock_order_outside_manifest_scope_is_silent() {
        let src = "fn f(s: &Shared) {\n\
                   let w = s.watchers.lock();\n\
                   let m = s.mutation.lock();\n\
                   work(&w, &m);\n\
                   }\n";
        assert!(findings_of("crates/graph/src/builder.rs", src).is_empty());
    }

    // ---- R7 ----------------------------------------------------------------

    #[test]
    fn guard_across_blocking_fires_for_each_blocking_shape() {
        for (snippet, label) in [
            ("let _ = writeln!(out, \"x\");", "writeln!"),
            ("let _ = out.flush();", "flush"),
            ("let _ = out.read_line(&mut buf);", "read_line"),
            ("let _ = rx.recv();", "recv"),
            ("let _ = rx.recv_timeout(t);", "recv_timeout"),
            ("let _ = TcpStream::connect(addr);", "connect"),
            ("thread::sleep(t);", "sleep"),
        ] {
            let src = format!(
                "fn f(s: &Shared) {{\n\
                 let w = s.watchers.lock();\n\
                 {snippet}\n\
                 use_it(&w);\n\
                 }}\n"
            );
            let found = findings_of(SERVE, &src);
            assert_eq!(rules_fired(&found), vec![GUARD_ACROSS_BLOCKING], "{label}");
            assert_eq!(found[0].line, 3, "{label}");
        }
    }

    #[test]
    fn guard_across_blocking_blesses_the_writer_for_writes_only() {
        let writes = "fn f(s: &Shared) {\n\
                      let mut w = s.writer.lock();\n\
                      let _ = writeln!(w, \"ok\");\n\
                      let _ = w.flush();\n\
                      }\n";
        assert!(findings_of(SERVE, writes).is_empty());
        // The blessing does not extend to read-flavored blocking.
        let reads = "fn f(s: &Shared, rx: &Receiver<u32>) {\n\
                     let mut w = s.writer.lock();\n\
                     let _ = rx.recv();\n\
                     let _ = writeln!(w, \"ok\");\n\
                     }\n";
        let found = findings_of(SERVE, reads);
        assert_eq!(rules_fired(&found), vec![GUARD_ACROSS_BLOCKING]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn guard_released_before_blocking_is_clean() {
        let src = "fn f(s: &Shared, out: &mut W) {\n\
                   {\n\
                   let w = s.watchers.lock();\n\
                   use_it(&w);\n\
                   }\n\
                   let _ = writeln!(out, \"x\");\n\
                   }\n";
        assert!(findings_of(SERVE, src).is_empty());
        let dropped = "fn f(s: &Shared, out: &mut W) {\n\
                       let w = s.watchers.lock();\n\
                       drop(w);\n\
                       let _ = writeln!(out, \"x\");\n\
                       }\n";
        assert!(findings_of(SERVE, dropped).is_empty());
    }

    #[test]
    fn guard_across_blocking_sees_scrutinee_temporaries() {
        // The edition-2021 footgun: the guard from the if-let scrutinee is
        // still live inside the block.
        let src = "fn f(d: &Mutex<VecDeque<u32>>, out: &mut W) {\n\
                   if let Some(t) = d.lock().pop_back() {\n\
                   let _ = writeln!(out, \"{t}\");\n\
                   }\n\
                   }\n";
        let found = findings_of(SERVE, src);
        assert_eq!(rules_fired(&found), vec![GUARD_ACROSS_BLOCKING]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn guard_across_blocking_honors_allows_and_scope() {
        let allowed = "fn f(r: &Mutex<Receiver<u32>>) {\n\
                       let rx = r.lock().unwrap_or_else(|e| e.into_inner());\n\
                       // gup-lint: allow(guard_across_blocking) 50 ms timeout bounds the hold\n\
                       let _ = rx.recv_timeout(t);\n\
                       }\n";
        assert!(findings_of(SERVE, allowed).is_empty());
        // Benches and tests are out of scope.
        let src = "fn f(s: &Shared, out: &mut W) {\n\
                   let w = s.watchers.lock();\n\
                   let _ = writeln!(out, \"x\");\n\
                   use_it(&w);\n\
                   }\n";
        assert!(findings_of("crates/bench/src/harness.rs", src).is_empty());
        assert!(findings_of("tests/serve.rs", src).is_empty());
    }

    // ---- R8 ----------------------------------------------------------------

    #[test]
    fn admission_fires_on_unbounded_channel() {
        let src = "fn f() -> (Sender<u32>, Receiver<u32>) { mpsc::channel() }\n";
        let found = findings_of(SERVE, src);
        assert_eq!(rules_fired(&found), vec![ADMISSION_DISCIPLINE]);
    }

    #[test]
    fn admission_accepts_bounded_sync_channel() {
        let src = "fn f() -> (SyncSender<u32>, Receiver<u32>) { mpsc::sync_channel(64) }\n";
        assert!(findings_of(SERVE, src).is_empty());
    }

    #[test]
    fn admission_fires_on_spawn_inside_a_loop_only() {
        let in_loop = "fn f(listener: &Listener) {\n\
                       for stream in listener.incoming() {\n\
                       std::thread::spawn(move || handle(stream));\n\
                       }\n\
                       }\n";
        let found = findings_of(SERVE, in_loop);
        assert_eq!(rules_fired(&found), vec![ADMISSION_DISCIPLINE]);
        assert_eq!(found[0].line, 3);
        // A fixed worker-pool spawn (map over a bounded range) is the blessed
        // shape: no loop, no finding.
        let pool = "fn f(n: usize) -> Vec<Handle> {\n\
                    (0..n).map(|i| std::thread::Builder::new().spawn(move || work(i))).collect()\n\
                    }\n";
        assert!(findings_of(SERVE, pool).is_empty());
    }

    #[test]
    fn admission_honors_allows_and_scope() {
        let allowed = "fn f(listener: &Listener) {\n\
                       for stream in listener.incoming() {\n\
                       // gup-lint: allow(admission_discipline) one thread per connection by design\n\
                       std::thread::spawn(move || handle(stream));\n\
                       }\n\
                       }\n";
        assert!(findings_of(SERVE, allowed).is_empty());
        // Outside the serving layer the rule is silent.
        let src = "fn f() -> (Sender<u32>, Receiver<u32>) { mpsc::channel() }\n";
        assert!(findings_of("crates/core/src/parallel.rs", src).is_empty());
    }

    // ---- severity + docs ---------------------------------------------------

    #[test]
    fn severities_and_docs_cover_every_rule() {
        for rule in RULES {
            let doc = rule_doc(rule).unwrap_or_else(|| panic!("no doc for {rule}"));
            assert_eq!(doc.rule, rule);
            assert!(!doc.summary.is_empty());
            assert!(!doc.rationale.is_empty());
            assert!(!doc.scope.is_empty());
            assert!(doc.allow_example.contains("gup-lint: allow("));
            assert!(matches!(severity(rule), "critical" | "error"));
        }
        assert_eq!(severity(LOCK_ORDER), "critical");
        assert_eq!(severity(GUARD_ACROSS_BLOCKING), "critical");
        assert_eq!(severity(PANIC_FREEDOM), "error");
        assert!(rule_doc(DIRECTIVE).is_some());
    }
}
