//! # gup-serve
//!
//! A long-lived subgraph-match server over the prepared-data [`Session`] API.
//!
//! The paper's serving shape — one long-lived data graph, queries arriving from
//! many clients — is exactly what [`gup::session`] amortizes for: the data-graph
//! index is built once and shared by every query. This crate puts a network front
//! end on that model:
//!
//! * **Wire protocol** ([`protocol`]): line-delimited text. A client sends a
//!   command line (`query count …`, `query first k …`, `reload`, `healthz`,
//!   `stats`, `quit`, `shutdown`), query and reload commands followed by a graph
//!   in the community `t/v/e` format terminated by `end`. Responses are one
//!   `ok key=value …` / `err message` / `busy` line, plus `m v0 v1 …` embedding
//!   lines and a trailing `end` for `query first`.
//! * **Server** ([`server`]): a thread-per-connection accept loop over
//!   `std::net::TcpListener` (no async runtime) feeding a bounded job queue
//!   drained by a fixed worker pool. Admission control is explicit: when the
//!   queue is full the client gets `busy` immediately instead of unbounded
//!   buffering.
//! * **Deadlines**: each request's time budget is stamped as an absolute
//!   [`deadline`](gup::session::QueryRequest::deadline) at admission, so time
//!   spent queued counts against the request — and the filter pass and search
//!   both observe it.
//! * **Reload**: `reload` swaps in a freshly prepared data graph under a lock
//!   that queries only hold long enough to clone the session. In-flight queries
//!   keep the `Arc` of the index they started on, so a reload never drops or
//!   corrupts running work, and the session counters carry across reloads.
//!
//! [`Session`]: gup::session::Session

pub mod protocol;
pub mod server;

pub use protocol::{Command, OutputMode, ProtocolError, QuerySpec};
pub use server::{graph_body, Server, ServerConfig};
