//! The server: accept loop, admission control, worker pool, reload.
//!
//! Concurrency model (all `std`, no async runtime):
//!
//! * One **accept loop** spawns a thread per connection. Connection threads do
//!   only cheap work: parse lines, admit jobs, write responses.
//! * A **bounded job queue** (`std::sync::mpsc::sync_channel`) sits between the
//!   connections and a fixed pool of **worker threads** that run the actual
//!   searches. Admission is a non-blocking `try_send`: a full queue answers
//!   `busy` immediately — backpressure the client can see — instead of queueing
//!   unboundedly.
//! * At admission the connection thread stamps the request's **absolute
//!   deadline** and clones the current [`Session`] out of the shared slot. The
//!   clone pins the `Arc` of the prepared index, so a concurrent `reload`
//!   (which swaps the slot under a short write lock) never drops an in-flight
//!   query: old queries finish on the old graph, new admissions see the new one.
//! * [`SessionCounters`] are threaded through every reload, so `stats` reports
//!   running totals for the server's lifetime, not since the last reload.

use gup::session::{CounterSnapshot, Session, SessionCounters, DEFAULT_CACHE_CAPACITY};
use gup::SearchStats;
use gup_graph::deadline::{deadline_after, Stopwatch};
use gup_graph::delta::GraphDelta;
use gup_graph::io::{graph_to_string, parse_graph};
use gup_graph::sink::CollectAll;
use gup_graph::{Graph, VertexId};
use gup_stream::{collect_new_matches, QueryPlan};
use parking_lot::{Mutex as PlMutex, RwLock};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{parse_command, parse_delta_body, Command, OutputMode, QuerySpec};

/// A connection's output half. Shared (and internally locked) because a
/// `delta` applied on *any* connection pushes `match …` notification lines to
/// every watching connection; the lock keeps pushed lines and regular replies
/// from interleaving mid-line.
type SharedWriter = Arc<PlMutex<BufWriter<TcpStream>>>;

/// One standing query: the registering connection's id for it, its compiled
/// plan, and the connection's writer to push new-match lines into.
struct Watcher {
    id: u64,
    plan: QueryPlan,
    writer: SharedWriter,
}

/// Server tunables. The defaults suit tests and small deployments; the binary
/// exposes each as a flag.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing searches.
    pub workers: usize,
    /// Jobs that may wait beyond the ones being executed; `try_send` past this
    /// answers `busy`.
    pub queue_capacity: usize,
    /// Budget applied to requests that do not carry their own `timeout-ms`.
    pub default_timeout: Option<Duration>,
    /// Default GuP worker threads per query (overridden per request).
    pub query_threads: usize,
    /// Entry capacity of the session result cache (`0` disables caching). The
    /// cache memoizes count/first-k answers per data graph; `reload`
    /// invalidates it, and `stats` reports its hit/miss counters.
    pub result_cache: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 16,
            default_timeout: None,
            query_threads: 1,
            result_cache: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// One admitted query: everything a worker needs, plus the rendezvous back to
/// the connection thread. The cloned `Session` pins the prepared index the
/// request was admitted against.
struct Job {
    session: Session,
    query: Graph,
    spec: QuerySpec,
    deadline: Option<Instant>,
    reply: SyncSender<Reply>,
}

/// What a worker hands back to the connection thread.
struct Reply {
    result: Result<(SearchStats, Vec<Vec<VertexId>>), String>,
    elapsed: Duration,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    session: RwLock<Session>,
    counters: Arc<SessionCounters>,
    config: ServerConfig,
    started: Stopwatch,
    reloads: AtomicU64,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    /// Standing queries across all connections (a connection's watches are
    /// dropped when it closes).
    watchers: PlMutex<Vec<Watcher>>,
    next_watch_id: AtomicU64,
    /// Serializes the session slot's read-modify-write mutations (`delta`
    /// applies on top of the session it read; two racing appliers — or an
    /// applier racing a `reload` — must not lose one another's writes).
    /// Queries are unaffected: they clone the slot under the read lock.
    mutation: PlMutex<()>,
}

/// A bound, not-yet-running match server. [`Server::run`] blocks until a client
/// sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: SyncSender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares the worker
    /// pool over `session`'s data graph.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        session: Session,
    ) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let session = session.with_result_cache(config.result_cache);
        let counters = Arc::clone(session.counters());
        let shared = Arc::new(Shared {
            session: RwLock::new(session),
            counters,
            config,
            started: Stopwatch::started(),
            reloads: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            local_addr,
            watchers: PlMutex::new(Vec::new()),
            next_watch_id: AtomicU64::new(0),
            mutation: PlMutex::new(()),
        });
        let (jobs, receiver) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gup-serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &shared.shutdown))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            listener,
            shared,
            jobs,
            workers,
        })
    }

    /// The bound address (read this for the actual port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until a client sends `shutdown`. Each connection gets its own
    /// thread; this thread only accepts.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let jobs = self.jobs.clone();
            let _ = std::thread::Builder::new()
                .name("gup-serve-conn".to_string())
                // gup-lint: allow(admission_discipline) one thread per connection is the documented design; per-request work is admitted via the bounded job queue, never spawned here
                .spawn(move || {
                    let _ = serve_connection(stream, &shared, &jobs);
                });
        }
        // Close our handle on the queue and wait for the workers to drain what
        // was admitted. Idle connections may still hold sender clones, which is
        // why the workers watch the shutdown flag rather than relying on the
        // channel disconnecting.
        drop(self.jobs);
        for worker in self.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, shutdown: &AtomicBool) {
    loop {
        // Hold the lock only for the dequeue, not for the search. The timeout
        // exists solely so an idle worker re-checks the shutdown flag: a live
        // but idle connection keeps the channel connected forever.
        let job = {
            // A poisoned lock means a sibling worker panicked while dequeuing.
            // The receiver itself is still sound (dequeuing has no invariants a
            // panic could break mid-way), so recover it and keep serving rather
            // than letting one bad query wedge the whole pool.
            let receiver = receiver.lock().unwrap_or_else(|e| e.into_inner());
            // gup-lint: allow(guard_across_blocking) the pool shares one Receiver: the guard must be held to dequeue, the 50 ms timeout bounds the hold, and jobs never run under it
            match receiver.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => Some(job),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let Some(job) = job else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        let watch = Stopwatch::started();
        // A panicking search must not take the worker (and eventually the whole
        // pool) down with it: catch it and turn it into an `err` reply for the
        // one client whose query caused it.
        let result = catch_unwind(AssertUnwindSafe(|| execute(&job))).unwrap_or_else(|panic| {
            let message = panic_message(panic.as_ref());
            eprintln!("gup-serve: worker caught a panicking query: {message}");
            Err(format!("internal error: query panicked: {message}"))
        });
        let elapsed = watch.elapsed();
        // A disappeared client (closed connection) is not a worker error.
        let _ = job.reply.send(Reply { result, elapsed });
    }
}

/// Best-effort human-readable form of a caught panic payload (`panic!` with a
/// string literal or a formatted message covers practically all of std and this
/// workspace).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// Runs one admitted query on a worker thread.
fn execute(job: &Job) -> Result<(SearchStats, Vec<Vec<VertexId>>), String> {
    let mut request = job
        .session
        .query(&job.query)
        .method(job.spec.engine)
        .threads(job.spec.threads.max(1));
    match job.spec.limit {
        Some(Some(limit)) => request = request.limit(limit),
        Some(None) => request = request.unlimited(),
        None => {}
    }
    // The deadline was stamped at admission: queue time spends the budget too.
    // Applied after `unlimited()` (which clears all limits including this one).
    if let Some(deadline) = job.deadline {
        request = request.deadline(deadline);
    }
    // Both finishers below are the cache-aware ones: a repeated question is
    // answered from the session memo without running an engine.
    match job.spec.output {
        OutputMode::Count => {
            let stats = request.count_stats().map_err(|e| e.to_string())?;
            Ok((stats, Vec::new()))
        }
        OutputMode::First(k) => {
            let outcome = request.first_k(k).run().map_err(|e| e.to_string())?;
            Ok((outcome.stats, outcome.embeddings))
        }
    }
}

/// Reads a `t/v/e` graph body terminated by an `end` line.
fn read_graph_body(reader: &mut impl BufRead) -> std::io::Result<Result<Graph, String>> {
    let mut body = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(Err("connection closed before 'end'".to_string()));
        }
        if line.trim() == "end" {
            break;
        }
        body.push_str(&line);
    }
    Ok(parse_graph(&body).map_err(|e| format!("bad graph: {e}")))
}

/// Reads a delta body terminated by an `end` line.
fn read_delta_body(reader: &mut impl BufRead) -> std::io::Result<Result<Vec<GraphDelta>, String>> {
    let mut body = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(Err("connection closed before 'end'".to_string()));
        }
        if line.trim() == "end" {
            break;
        }
        body.push_str(&line);
    }
    Ok(parse_delta_body(&body).map_err(|e| e.to_string()))
}

/// Writes one response line (or an error) and flushes, holding the writer lock
/// only for the write.
fn reply_line(writer: &SharedWriter, line: std::fmt::Arguments<'_>) -> std::io::Result<()> {
    let mut w = writer.lock();
    w.write_fmt(line)?;
    writeln!(w)?;
    w.flush()
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    jobs: &SyncSender<Job>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer: SharedWriter = Arc::new(PlMutex::new(BufWriter::new(stream)));
    let mut my_watches: Vec<u64> = Vec::new();
    let result = connection_loop(&mut reader, &writer, shared, jobs, &mut my_watches);
    // However the connection ended, its standing queries go with it.
    if !my_watches.is_empty() {
        shared
            .watchers
            .lock()
            .retain(|w| !my_watches.contains(&w.id));
    }
    result
}

fn connection_loop(
    reader: &mut BufReader<TcpStream>,
    writer: &SharedWriter,
    shared: &Shared,
    jobs: &SyncSender<Job>,
    my_watches: &mut Vec<u64>,
) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let command = match parse_command(line.trim()) {
            Ok(command) => command,
            Err(e) => {
                reply_line(writer, format_args!("err {e}"))?;
                continue;
            }
        };
        match command {
            Command::Query(spec) => {
                let query = match read_graph_body(reader)? {
                    Ok(query) => query,
                    Err(msg) => {
                        reply_line(writer, format_args!("err {msg}"))?;
                        continue;
                    }
                };
                handle_query(spec, query, shared, jobs, writer)?;
            }
            Command::Reload => {
                let graph = match read_graph_body(reader)? {
                    Ok(graph) => graph,
                    Err(msg) => {
                        reply_line(writer, format_args!("err {msg}"))?;
                        continue;
                    }
                };
                handle_reload(graph, shared, writer)?;
            }
            Command::Watch => {
                let query = match read_graph_body(reader)? {
                    Ok(query) => query,
                    Err(msg) => {
                        reply_line(writer, format_args!("err {msg}"))?;
                        continue;
                    }
                };
                handle_watch(query, shared, writer, my_watches)?;
            }
            Command::Unwatch(id) => {
                if let Some(at) = my_watches.iter().position(|&w| w == id) {
                    my_watches.remove(at);
                    shared.watchers.lock().retain(|w| w.id != id);
                    reply_line(writer, format_args!("ok unwatch id={id}"))?;
                } else {
                    // Connection-scoped on purpose: one client must not be able
                    // to silence another client's standing queries.
                    reply_line(
                        writer,
                        format_args!("err no watch id={id} on this connection"),
                    )?;
                }
            }
            Command::Delta => {
                let deltas = match read_delta_body(reader)? {
                    Ok(deltas) => deltas,
                    Err(msg) => {
                        reply_line(writer, format_args!("err {msg}"))?;
                        continue;
                    }
                };
                handle_delta(&deltas, shared, writer)?;
            }
            Command::Healthz => {
                reply_line(
                    writer,
                    format_args!(
                        "ok uptime-ms={} workers={} queue-capacity={}",
                        shared.started.elapsed().as_millis(),
                        shared.config.workers,
                        shared.config.queue_capacity
                    ),
                )?;
            }
            Command::Stats => {
                let CounterSnapshot {
                    queries_started,
                    queries_ok,
                    queries_failed,
                    queries_timed_out,
                    embeddings_reported,
                    cache_hits,
                    cache_misses,
                    cache_invalidations,
                    deltas_applied,
                    incremental_matches,
                } = shared.counters.snapshot();
                let watchers = shared.watchers.lock().len();
                reply_line(
                    writer,
                    format_args!(
                        "ok queries={queries_started} completed={queries_ok} \
                         failed={queries_failed} timed-out={queries_timed_out} \
                         embeddings={embeddings_reported} cache-hits={cache_hits} \
                         cache-misses={cache_misses} cache-invalidations={cache_invalidations} \
                         deltas={deltas_applied} incremental-matches={incremental_matches} \
                         watchers={watchers} reloads={} uptime-ms={}",
                        // Relaxed: a monotonically increasing stats counter read for
                        // display only — no other memory is published through it.
                        shared.reloads.load(Ordering::Relaxed),
                        shared.started.elapsed().as_millis()
                    ),
                )?;
            }
            Command::Quit => {
                reply_line(writer, format_args!("ok bye"))?;
                return Ok(());
            }
            Command::Shutdown => {
                reply_line(writer, format_args!("ok shutting down"))?;
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.local_addr);
                return Ok(());
            }
        }
    }
}

fn handle_watch(
    query: Graph,
    shared: &Shared,
    writer: &SharedWriter,
    my_watches: &mut Vec<u64>,
) -> std::io::Result<()> {
    match QueryPlan::new(&query) {
        Err(e) => reply_line(writer, format_args!("err bad standing query: {e}")),
        Ok(plan) => {
            // Relaxed: the fetch_add's atomicity alone guarantees unique ids;
            // no other memory is published through this counter.
            let id = shared.next_watch_id.fetch_add(1, Ordering::Relaxed);
            shared.watchers.lock().push(Watcher {
                id,
                plan,
                writer: Arc::clone(writer),
            });
            my_watches.push(id);
            reply_line(writer, format_args!("ok watch id={id}"))
        }
    }
}

fn handle_delta(
    deltas: &[GraphDelta],
    shared: &Shared,
    writer: &SharedWriter,
) -> std::io::Result<()> {
    // Serialize with other deltas and reloads (see `Shared::mutation`); held
    // through notification so watchers see batches in application order.
    let _mutation = shared.mutation.lock();
    let session = shared.session.read().clone();
    let (next, effects) = match session.apply_deltas(deltas) {
        Ok(applied) => applied,
        Err(e) => return reply_line(writer, format_args!("err bad delta: {e}")),
    };
    *shared.session.write() = next.clone();
    // Delta-localized search per standing query, one `match` line per new
    // embedding. The match lines are rendered under the watchers lock (the
    // registry must not change mid-scan) but pushed to the sockets only after
    // it is released: a watcher that stops reading fills its TCP buffer and
    // blocks the push, and holding the registry lock across that write would
    // wedge every connection trying to watch/unwatch or read `stats`.
    let mut total = 0u64;
    let mut pushes: Vec<(SharedWriter, String)> = Vec::new();
    {
        let watchers = shared.watchers.lock();
        for watcher in watchers.iter() {
            let mut sink = CollectAll::new();
            let n = collect_new_matches(next.prepared(), &effects, &watcher.plan, &mut sink);
            total += n;
            if n == 0 {
                continue;
            }
            let mut lines = String::new();
            for embedding in sink.into_embeddings() {
                lines.push_str("match id=");
                lines.push_str(&watcher.id.to_string());
                for v in &embedding {
                    lines.push(' ');
                    lines.push_str(&v.to_string());
                }
                lines.push('\n');
            }
            pushes.push((Arc::clone(&watcher.writer), lines));
        }
    }
    // Push errors mean that client hung up; its watches are removed when its
    // connection thread notices.
    for (writer, lines) in pushes {
        let mut w = writer.lock();
        // gup-lint: allow(guard_across_blocking) mutation is held through the push by design (watchers see batches in application order); the watchers lock is already released, so a stalled watcher cannot wedge other connections
        let _ = w.write_all(lines.as_bytes()).and_then(|()| w.flush());
    }
    next.counters().record_incremental_matches(total);
    let graph = next.data();
    reply_line(
        writer,
        format_args!(
            "ok delta applied={} vertices={} edges={} inserted={} removed={} new-matches={total}",
            deltas.len(),
            graph.vertex_count(),
            graph.edge_count(),
            effects.inserted_edges.len(),
            effects.removed_edges.len(),
        ),
    )
}

fn handle_query(
    spec: QuerySpec,
    query: Graph,
    shared: &Shared,
    jobs: &SyncSender<Job>,
    writer: &SharedWriter,
) -> std::io::Result<()> {
    // Admission: stamp the deadline and pin the current index *now* — both the
    // wait in the queue and a concurrent reload are this request's problem to
    // survive, not to be confused by.
    let deadline = spec
        .timeout
        .or(shared.config.default_timeout)
        .map(deadline_after);
    let session = shared.session.read().clone();
    let spec = QuerySpec {
        threads: if spec.threads > 1 {
            spec.threads
        } else {
            shared.config.query_threads
        },
        ..spec
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Reply>(1);
    let job = Job {
        session,
        query,
        spec,
        deadline,
        reply: reply_tx,
    };
    if let Err(refused) = jobs.try_send(job) {
        match refused {
            TrySendError::Full(_) => reply_line(writer, format_args!("busy"))?,
            TrySendError::Disconnected(_) => {
                reply_line(writer, format_args!("err server shutting down"))?
            }
        }
        return Ok(());
    }
    // Block on the worker *without* holding the writer lock: a concurrent
    // `delta` may want to push notification lines to this connection meanwhile.
    let Ok(reply) = reply_rx.recv() else {
        return reply_line(writer, format_args!("err server shutting down"));
    };
    match reply.result {
        Ok((stats, embeddings)) => {
            // One lock over the whole response block keeps the `ok` line, the
            // `m` lines, and the `end` terminator contiguous on the wire.
            let mut w = writer.lock();
            writeln!(
                w,
                "ok embeddings={} recursions={} time-ms={} timed-out={}",
                stats.embeddings,
                stats.recursions,
                reply.elapsed.as_millis(),
                stats.hit_time_limit
            )?;
            if matches!(spec.output, OutputMode::First(_)) {
                for embedding in &embeddings {
                    write!(w, "m")?;
                    for v in embedding {
                        write!(w, " {v}")?;
                    }
                    writeln!(w)?;
                }
                writeln!(w, "end")?;
            }
            w.flush()
        }
        Err(message) => reply_line(writer, format_args!("err {message}")),
    }
}

fn handle_reload(graph: Graph, shared: &Shared, writer: &SharedWriter) -> std::io::Result<()> {
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    // Prepare the new index *outside* the lock; queries keep admitting against
    // the old graph while this builds. Standing queries survive a reload: from
    // here on their deltas match against the replacement graph.
    let session = Session::new(graph)
        .with_counters(Arc::clone(&shared.counters))
        .with_result_cache(shared.config.result_cache);
    let prep = session.prep_time();
    // Serialize the swap with `delta` appliers (see `Shared::mutation`).
    let outgoing = {
        let _mutation = shared.mutation.lock();
        std::mem::replace(&mut *shared.session.write(), session)
    };
    // The new session starts with an empty memo; explicitly invalidate the
    // outgoing one too, so in-flight clones that pinned the old graph cannot
    // serve hits for answers the reload just obsoleted.
    outgoing.invalidate_cache();
    // Relaxed: a stats counter; the reload itself is published by the RwLock
    // above, the count is only ever displayed.
    shared.reloads.fetch_add(1, Ordering::Relaxed);
    reply_line(
        writer,
        format_args!(
            "ok reloaded vertices={vertices} edges={edges} prep-ms={}",
            prep.as_millis()
        ),
    )
}

/// Client-side helper used by tests and the load harness: renders a graph in
/// the wire's body form (`t/v/e` lines terminated by `end`).
pub fn graph_body(graph: &Graph) -> String {
    let mut body = graph_to_string(graph);
    if !body.ends_with('\n') {
        body.push('\n');
    }
    body.push_str("end\n");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::fixtures;

    fn test_server(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let (_query, data) = fixtures::paper_example();
        let server = Server::bind("127.0.0.1:0", config, Session::new(data)).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn send(addr: SocketAddr, script: &str) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(script.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            lines.push(line.trim_end().to_string());
        }
        lines
    }

    #[test]
    fn query_count_and_shutdown_round_trip() {
        let (addr, handle) = test_server(ServerConfig::default());
        let (query, _data) = fixtures::paper_example();
        let script = format!("query count\n{}quit\n", graph_body(&query));
        let lines = send(addr, &script);
        assert!(
            lines[0].starts_with("ok embeddings=4 recursions=")
                && lines[0].ends_with("timed-out=false"),
            "{}",
            lines[0]
        );
        assert_eq!(lines[1], "ok bye");
        let lines = send(addr, "shutdown\n");
        assert_eq!(lines[0], "ok shutting down");
        handle.join().unwrap();
    }

    #[test]
    fn first_k_streams_embeddings() {
        let (addr, handle) = test_server(ServerConfig::default());
        let (query, _data) = fixtures::paper_example();
        let script = format!("query first 2\n{}quit\n", graph_body(&query));
        let lines = send(addr, &script);
        assert!(lines[0].starts_with("ok embeddings=2 "), "{}", lines[0]);
        assert!(lines[1].starts_with("m ") && lines[2].starts_with("m "));
        assert_eq!(
            lines[1].split_whitespace().count(),
            query.vertex_count() + 1
        );
        assert_eq!(lines[3], "end");
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn protocol_errors_keep_the_connection_alive() {
        let (addr, handle) = test_server(ServerConfig::default());
        let lines = send(addr, "nonsense\nquery count timeout-ms 0\nhealthz\nquit\n");
        assert!(lines[0].starts_with("err unknown command"), "{}", lines[0]);
        assert!(lines[1].starts_with("err timeout-ms must be positive"));
        assert!(lines[2].starts_with("ok uptime-ms="));
        assert_eq!(lines[3], "ok bye");
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn watch_delta_round_trip_pushes_matches() {
        let (addr, handle) = test_server(ServerConfig::default());
        // Stand up a triangle query on a path graph, then close the triangle.
        let data = gup_graph::builder::graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let triangle = gup_graph::builder::graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (0, 2)]);
        let script = format!(
            "reload\n{}watch\n{}delta\nae 0 2\nend\nstats\nquit\n",
            graph_body(&data),
            graph_body(&triangle)
        );
        let lines = send(addr, &script);
        assert!(lines[0].starts_with("ok reloaded"), "{}", lines[0]);
        assert_eq!(lines[1], "ok watch id=0");
        // The watcher is this same connection: both new triangle embeddings
        // arrive as pushed `match` lines before the delta's own reply.
        assert_eq!(lines[2], "match id=0 0 1 2");
        assert_eq!(lines[3], "match id=0 2 1 0");
        assert_eq!(
            lines[4],
            "ok delta applied=1 vertices=3 edges=3 inserted=1 removed=0 new-matches=2"
        );
        assert!(
            lines[5].contains("deltas=1")
                && lines[5].contains("incremental-matches=2")
                && lines[5].contains("watchers=1")
                && lines[5].contains("cache-invalidations="),
            "{}",
            lines[5]
        );
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn bad_deltas_and_unwatch_errors_keep_the_connection() {
        let (addr, handle) = test_server(ServerConfig::default());
        let lines = send(
            addr,
            "delta\nae 0 0\nend\ndelta\nxe 1 2\nend\nunwatch 99\nquit\n",
        );
        assert!(lines[0].starts_with("err bad delta"), "{}", lines[0]);
        assert!(lines[1].starts_with("err delta line 1"), "{}", lines[1]);
        assert!(lines[2].starts_with("err no watch id=99"), "{}", lines[2]);
        assert_eq!(lines[3], "ok bye");
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn unwatch_silences_and_queries_see_the_mutated_graph() {
        let (addr, handle) = test_server(ServerConfig::default());
        let edge = gup_graph::builder::graph_from_edges(&[0, 0], &[(0, 1)]);
        // paper_example data has 14 vertices; add two label-0 vertices (ids 14,
        // 15) and join them: the standing edge query fires, then is unwatched
        // and later deltas stay silent, while `query count` sees every mutation.
        let script = format!(
            "watch\n{body}delta\nav 0\nav 0\nend\ndelta\nae 14 15\nend\nunwatch 0\ndelta\nde 14 15\nend\ndelta\nae 14 15\nend\nquery count\n{body}quit\n",
            body = graph_body(&edge)
        );
        let lines = send(addr, &script);
        assert_eq!(lines[0], "ok watch id=0");
        assert!(lines[1].starts_with("ok delta applied=2"), "{}", lines[1]);
        assert_eq!(lines[2], "match id=0 14 15");
        assert_eq!(lines[3], "match id=0 15 14");
        assert!(
            lines[4].starts_with("ok delta applied=1") && lines[4].contains("new-matches=2"),
            "{}",
            lines[4]
        );
        assert_eq!(lines[5], "ok unwatch id=0");
        assert!(lines[6].contains("new-matches=0"), "{}", lines[6]);
        assert!(lines[7].contains("new-matches=0"), "{}", lines[7]);
        // The re-inserted edge is queryable: the count includes it.
        assert!(lines[8].starts_with("ok embeddings="), "{}", lines[8]);
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn stats_report_counters_and_reloads() {
        let (addr, handle) = test_server(ServerConfig::default());
        let (query, data) = fixtures::paper_example();
        let body = graph_body(&query);
        let script = format!(
            "query count\n{body}reload\n{}query count\n{body}stats\nquit\n",
            graph_body(&data)
        );
        let lines = send(addr, &script);
        assert!(lines[0].starts_with("ok embeddings=4"), "{}", lines[0]);
        assert!(
            lines[1].starts_with("ok reloaded vertices="),
            "{}",
            lines[1]
        );
        assert!(lines[2].starts_with("ok embeddings=4"), "{}", lines[2]);
        assert!(
            lines[3].contains("queries=2") && lines[3].contains("reloads=1"),
            "{}",
            lines[3]
        );
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }
}
