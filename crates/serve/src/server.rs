//! The server: accept loop, admission control, worker pool, reload.
//!
//! Concurrency model (all `std`, no async runtime):
//!
//! * One **accept loop** spawns a thread per connection. Connection threads do
//!   only cheap work: parse lines, admit jobs, write responses.
//! * A **bounded job queue** (`std::sync::mpsc::sync_channel`) sits between the
//!   connections and a fixed pool of **worker threads** that run the actual
//!   searches. Admission is a non-blocking `try_send`: a full queue answers
//!   `busy` immediately — backpressure the client can see — instead of queueing
//!   unboundedly.
//! * At admission the connection thread stamps the request's **absolute
//!   deadline** and clones the current [`Session`] out of the shared slot. The
//!   clone pins the `Arc` of the prepared index, so a concurrent `reload`
//!   (which swaps the slot under a short write lock) never drops an in-flight
//!   query: old queries finish on the old graph, new admissions see the new one.
//! * [`SessionCounters`] are threaded through every reload, so `stats` reports
//!   running totals for the server's lifetime, not since the last reload.

use gup::session::{CounterSnapshot, Session, SessionCounters, DEFAULT_CACHE_CAPACITY};
use gup::SearchStats;
use gup_graph::deadline::{deadline_after, Stopwatch};
use gup_graph::io::{graph_to_string, parse_graph};
use gup_graph::{Graph, VertexId};
use parking_lot::RwLock;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{parse_command, Command, OutputMode, QuerySpec};

/// Server tunables. The defaults suit tests and small deployments; the binary
/// exposes each as a flag.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing searches.
    pub workers: usize,
    /// Jobs that may wait beyond the ones being executed; `try_send` past this
    /// answers `busy`.
    pub queue_capacity: usize,
    /// Budget applied to requests that do not carry their own `timeout-ms`.
    pub default_timeout: Option<Duration>,
    /// Default GuP worker threads per query (overridden per request).
    pub query_threads: usize,
    /// Entry capacity of the session result cache (`0` disables caching). The
    /// cache memoizes count/first-k answers per data graph; `reload`
    /// invalidates it, and `stats` reports its hit/miss counters.
    pub result_cache: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 16,
            default_timeout: None,
            query_threads: 1,
            result_cache: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// One admitted query: everything a worker needs, plus the rendezvous back to
/// the connection thread. The cloned `Session` pins the prepared index the
/// request was admitted against.
struct Job {
    session: Session,
    query: Graph,
    spec: QuerySpec,
    deadline: Option<Instant>,
    reply: SyncSender<Reply>,
}

/// What a worker hands back to the connection thread.
struct Reply {
    result: Result<(SearchStats, Vec<Vec<VertexId>>), String>,
    elapsed: Duration,
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    session: RwLock<Session>,
    counters: Arc<SessionCounters>,
    config: ServerConfig,
    started: Stopwatch,
    reloads: AtomicU64,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

/// A bound, not-yet-running match server. [`Server::run`] blocks until a client
/// sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    jobs: SyncSender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares the worker
    /// pool over `session`'s data graph.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        session: Session,
    ) -> std::io::Result<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let session = session.with_result_cache(config.result_cache);
        let counters = Arc::clone(session.counters());
        let shared = Arc::new(Shared {
            session: RwLock::new(session),
            counters,
            config,
            started: Stopwatch::started(),
            reloads: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            local_addr,
        });
        let (jobs, receiver) = mpsc::sync_channel::<Job>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gup-serve-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &shared.shutdown))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            listener,
            shared,
            jobs,
            workers,
        })
    }

    /// The bound address (read this for the actual port when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until a client sends `shutdown`. Each connection gets its own
    /// thread; this thread only accepts.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let jobs = self.jobs.clone();
            let _ = std::thread::Builder::new()
                .name("gup-serve-conn".to_string())
                .spawn(move || {
                    let _ = serve_connection(stream, &shared, &jobs);
                });
        }
        // Close our handle on the queue and wait for the workers to drain what
        // was admitted. Idle connections may still hold sender clones, which is
        // why the workers watch the shutdown flag rather than relying on the
        // channel disconnecting.
        drop(self.jobs);
        for worker in self.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, shutdown: &AtomicBool) {
    loop {
        // Hold the lock only for the dequeue, not for the search. The timeout
        // exists solely so an idle worker re-checks the shutdown flag: a live
        // but idle connection keeps the channel connected forever.
        let job = {
            // A poisoned lock means a sibling worker panicked while dequeuing.
            // The receiver itself is still sound (dequeuing has no invariants a
            // panic could break mid-way), so recover it and keep serving rather
            // than letting one bad query wedge the whole pool.
            let receiver = receiver.lock().unwrap_or_else(|e| e.into_inner());
            match receiver.recv_timeout(Duration::from_millis(50)) {
                Ok(job) => Some(job),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let Some(job) = job else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        let watch = Stopwatch::started();
        // A panicking search must not take the worker (and eventually the whole
        // pool) down with it: catch it and turn it into an `err` reply for the
        // one client whose query caused it.
        let result = catch_unwind(AssertUnwindSafe(|| execute(&job))).unwrap_or_else(|panic| {
            let message = panic_message(panic.as_ref());
            eprintln!("gup-serve: worker caught a panicking query: {message}");
            Err(format!("internal error: query panicked: {message}"))
        });
        let elapsed = watch.elapsed();
        // A disappeared client (closed connection) is not a worker error.
        let _ = job.reply.send(Reply { result, elapsed });
    }
}

/// Best-effort human-readable form of a caught panic payload (`panic!` with a
/// string literal or a formatted message covers practically all of std and this
/// workspace).
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// Runs one admitted query on a worker thread.
fn execute(job: &Job) -> Result<(SearchStats, Vec<Vec<VertexId>>), String> {
    let mut request = job
        .session
        .query(&job.query)
        .method(job.spec.engine)
        .threads(job.spec.threads.max(1));
    match job.spec.limit {
        Some(Some(limit)) => request = request.limit(limit),
        Some(None) => request = request.unlimited(),
        None => {}
    }
    // The deadline was stamped at admission: queue time spends the budget too.
    // Applied after `unlimited()` (which clears all limits including this one).
    if let Some(deadline) = job.deadline {
        request = request.deadline(deadline);
    }
    // Both finishers below are the cache-aware ones: a repeated question is
    // answered from the session memo without running an engine.
    match job.spec.output {
        OutputMode::Count => {
            let stats = request.count_stats().map_err(|e| e.to_string())?;
            Ok((stats, Vec::new()))
        }
        OutputMode::First(k) => {
            let outcome = request.first_k(k).run().map_err(|e| e.to_string())?;
            Ok((outcome.stats, outcome.embeddings))
        }
    }
}

/// Reads a `t/v/e` graph body terminated by an `end` line.
fn read_graph_body(reader: &mut impl BufRead) -> std::io::Result<Result<Graph, String>> {
    let mut body = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(Err("connection closed before 'end'".to_string()));
        }
        if line.trim() == "end" {
            break;
        }
        body.push_str(&line);
    }
    Ok(parse_graph(&body).map_err(|e| format!("bad graph: {e}")))
}

fn serve_connection(
    stream: TcpStream,
    shared: &Shared,
    jobs: &SyncSender<Job>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        if line.trim().is_empty() {
            continue;
        }
        let command = match parse_command(line.trim()) {
            Ok(command) => command,
            Err(e) => {
                writeln!(writer, "err {e}")?;
                writer.flush()?;
                continue;
            }
        };
        match command {
            Command::Query(spec) => {
                let query = match read_graph_body(&mut reader)? {
                    Ok(query) => query,
                    Err(msg) => {
                        writeln!(writer, "err {msg}")?;
                        writer.flush()?;
                        continue;
                    }
                };
                handle_query(spec, query, shared, jobs, &mut writer)?;
            }
            Command::Reload => {
                let graph = match read_graph_body(&mut reader)? {
                    Ok(graph) => graph,
                    Err(msg) => {
                        writeln!(writer, "err {msg}")?;
                        writer.flush()?;
                        continue;
                    }
                };
                handle_reload(graph, shared, &mut writer)?;
            }
            Command::Healthz => {
                writeln!(
                    writer,
                    "ok uptime-ms={} workers={} queue-capacity={}",
                    shared.started.elapsed().as_millis(),
                    shared.config.workers,
                    shared.config.queue_capacity
                )?;
                writer.flush()?;
            }
            Command::Stats => {
                let CounterSnapshot {
                    queries_started,
                    queries_ok,
                    queries_failed,
                    queries_timed_out,
                    embeddings_reported,
                    cache_hits,
                    cache_misses,
                } = shared.counters.snapshot();
                writeln!(
                    writer,
                    "ok queries={queries_started} completed={queries_ok} \
                     failed={queries_failed} timed-out={queries_timed_out} \
                     embeddings={embeddings_reported} cache-hits={cache_hits} \
                     cache-misses={cache_misses} reloads={} uptime-ms={}",
                    // Relaxed: a monotonically increasing stats counter read for
                    // display only — no other memory is published through it.
                    shared.reloads.load(Ordering::Relaxed),
                    shared.started.elapsed().as_millis()
                )?;
                writer.flush()?;
            }
            Command::Quit => {
                writeln!(writer, "ok bye")?;
                writer.flush()?;
                return Ok(());
            }
            Command::Shutdown => {
                writeln!(writer, "ok shutting down")?;
                writer.flush()?;
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.local_addr);
                return Ok(());
            }
        }
    }
}

fn handle_query(
    spec: QuerySpec,
    query: Graph,
    shared: &Shared,
    jobs: &SyncSender<Job>,
    writer: &mut impl Write,
) -> std::io::Result<()> {
    // Admission: stamp the deadline and pin the current index *now* — both the
    // wait in the queue and a concurrent reload are this request's problem to
    // survive, not to be confused by.
    let deadline = spec
        .timeout
        .or(shared.config.default_timeout)
        .map(deadline_after);
    let session = shared.session.read().clone();
    let spec = QuerySpec {
        threads: if spec.threads > 1 {
            spec.threads
        } else {
            shared.config.query_threads
        },
        ..spec
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel::<Reply>(1);
    let job = Job {
        session,
        query,
        spec,
        deadline,
        reply: reply_tx,
    };
    if let Err(refused) = jobs.try_send(job) {
        match refused {
            TrySendError::Full(_) => writeln!(writer, "busy")?,
            TrySendError::Disconnected(_) => writeln!(writer, "err server shutting down")?,
        }
        writer.flush()?;
        return Ok(());
    }
    let Ok(reply) = reply_rx.recv() else {
        writeln!(writer, "err server shutting down")?;
        writer.flush()?;
        return Ok(());
    };
    match reply.result {
        Ok((stats, embeddings)) => {
            writeln!(
                writer,
                "ok embeddings={} recursions={} time-ms={} timed-out={}",
                stats.embeddings,
                stats.recursions,
                reply.elapsed.as_millis(),
                stats.hit_time_limit
            )?;
            if matches!(spec.output, OutputMode::First(_)) {
                for embedding in &embeddings {
                    write!(writer, "m")?;
                    for v in embedding {
                        write!(writer, " {v}")?;
                    }
                    writeln!(writer)?;
                }
                writeln!(writer, "end")?;
            }
        }
        Err(message) => writeln!(writer, "err {message}")?,
    }
    writer.flush()
}

fn handle_reload(graph: Graph, shared: &Shared, writer: &mut impl Write) -> std::io::Result<()> {
    let vertices = graph.vertex_count();
    let edges = graph.edge_count();
    // Prepare the new index *outside* the lock; queries keep admitting against
    // the old graph while this builds.
    let session = Session::new(graph)
        .with_counters(Arc::clone(&shared.counters))
        .with_result_cache(shared.config.result_cache);
    let prep = session.prep_time();
    let outgoing = std::mem::replace(&mut *shared.session.write(), session);
    // The new session starts with an empty memo; explicitly invalidate the
    // outgoing one too, so in-flight clones that pinned the old graph cannot
    // serve hits for answers the reload just obsoleted.
    outgoing.invalidate_cache();
    // Relaxed: a stats counter; the reload itself is published by the RwLock
    // above, the count is only ever displayed.
    shared.reloads.fetch_add(1, Ordering::Relaxed);
    writeln!(
        writer,
        "ok reloaded vertices={vertices} edges={edges} prep-ms={}",
        prep.as_millis()
    )?;
    writer.flush()
}

/// Client-side helper used by tests and the load harness: renders a graph in
/// the wire's body form (`t/v/e` lines terminated by `end`).
pub fn graph_body(graph: &Graph) -> String {
    let mut body = graph_to_string(graph);
    if !body.ends_with('\n') {
        body.push('\n');
    }
    body.push_str("end\n");
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::fixtures;

    fn test_server(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let (_query, data) = fixtures::paper_example();
        let server = Server::bind("127.0.0.1:0", config, Session::new(data)).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn send(addr: SocketAddr, script: &str) -> Vec<String> {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer.write_all(script.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut lines = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            lines.push(line.trim_end().to_string());
        }
        lines
    }

    #[test]
    fn query_count_and_shutdown_round_trip() {
        let (addr, handle) = test_server(ServerConfig::default());
        let (query, _data) = fixtures::paper_example();
        let script = format!("query count\n{}quit\n", graph_body(&query));
        let lines = send(addr, &script);
        assert!(
            lines[0].starts_with("ok embeddings=4 recursions=")
                && lines[0].ends_with("timed-out=false"),
            "{}",
            lines[0]
        );
        assert_eq!(lines[1], "ok bye");
        let lines = send(addr, "shutdown\n");
        assert_eq!(lines[0], "ok shutting down");
        handle.join().unwrap();
    }

    #[test]
    fn first_k_streams_embeddings() {
        let (addr, handle) = test_server(ServerConfig::default());
        let (query, _data) = fixtures::paper_example();
        let script = format!("query first 2\n{}quit\n", graph_body(&query));
        let lines = send(addr, &script);
        assert!(lines[0].starts_with("ok embeddings=2 "), "{}", lines[0]);
        assert!(lines[1].starts_with("m ") && lines[2].starts_with("m "));
        assert_eq!(
            lines[1].split_whitespace().count(),
            query.vertex_count() + 1
        );
        assert_eq!(lines[3], "end");
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn protocol_errors_keep_the_connection_alive() {
        let (addr, handle) = test_server(ServerConfig::default());
        let lines = send(addr, "nonsense\nquery count timeout-ms 0\nhealthz\nquit\n");
        assert!(lines[0].starts_with("err unknown command"), "{}", lines[0]);
        assert!(lines[1].starts_with("err timeout-ms must be positive"));
        assert!(lines[2].starts_with("ok uptime-ms="));
        assert_eq!(lines[3], "ok bye");
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }

    #[test]
    fn stats_report_counters_and_reloads() {
        let (addr, handle) = test_server(ServerConfig::default());
        let (query, data) = fixtures::paper_example();
        let body = graph_body(&query);
        let script = format!(
            "query count\n{body}reload\n{}query count\n{body}stats\nquit\n",
            graph_body(&data)
        );
        let lines = send(addr, &script);
        assert!(lines[0].starts_with("ok embeddings=4"), "{}", lines[0]);
        assert!(
            lines[1].starts_with("ok reloaded vertices="),
            "{}",
            lines[1]
        );
        assert!(lines[2].starts_with("ok embeddings=4"), "{}", lines[2]);
        assert!(
            lines[3].contains("queries=2") && lines[3].contains("reloads=1"),
            "{}",
            lines[3]
        );
        send(addr, "shutdown\n");
        handle.join().unwrap();
    }
}
