//! The line-delimited wire protocol.
//!
//! Command grammar (one line, space-separated, case-sensitive):
//!
//! ```text
//! query count [timeout-ms <n>] [engine <name>] [threads <n>] [limit <n>]
//! query first <k> [timeout-ms <n>] [engine <name>] [threads <n>] [limit <n>]
//! reload
//! watch
//! unwatch <id>
//! delta
//! healthz
//! stats
//! quit
//! shutdown
//! ```
//!
//! `query`, `reload`, and `watch` are followed by a graph in the community
//! `t/v/e` text format, terminated by a line containing only `end`.
//!
//! `delta` is followed by a *delta body*: one mutation per line, terminated by
//! a line containing only `end`:
//!
//! ```text
//! av <label>       # add a vertex with the given label
//! ae <a> <b>       # add the undirected edge {a, b}
//! de <a> <b>       # delete the undirected edge {a, b}
//! ```
//!
//! `watch` registers the graph body as a standing query for this connection and
//! answers `ok watch id=<id>`; from then on, every applied `delta` (from any
//! connection) pushes one `match id=<id> v0 v1 …` line per *new* embedding the
//! batch created for that query, before the mutating connection's own `ok
//! delta …` response. `unwatch <id>` stops the notifications.
//!
//! * `timeout-ms <n>` — per-request wall-clock budget, milliseconds, must be
//!   positive (a zero budget is a configuration error, not an instant timeout).
//! * `engine <name>` — `gup` (default), `plain`, `daf`, `gql`, `ri`, `join`, or
//!   `bruteforce`.
//! * `threads <n>` — worker threads for the GuP engine (≥ 1).
//! * `limit <n>` — stop after `n` embeddings; `0` removes the default cap.
//!
//! Each query option may appear at most once; a repeated key is an error (a
//! silent last-win would let `query count limit 5 limit 0` uncap the query).
//!
//! Responses are a single `ok key=value …`, `err <message>`, or `busy` line;
//! `query first` additionally streams `m v0 v1 …` lines (one embedding over the
//! original query-vertex ids per line) followed by `end`.

use gup::session::Engine;
use gup_graph::delta::GraphDelta;
use std::time::Duration;

/// How much output a query request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputMode {
    /// Count embeddings; no embedding crosses the wire.
    Count,
    /// Stream the first `k` embeddings back (`m …` lines), then stop.
    First(u64),
}

/// A parsed `query …` command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Count vs. first-k.
    pub output: OutputMode,
    /// Per-request budget; `None` falls back to the server's default timeout.
    pub timeout: Option<Duration>,
    /// Engine family.
    pub engine: Engine,
    /// Worker threads for the GuP engine.
    pub threads: usize,
    /// Embedding cap: `None` keeps the session default, `Some(None)` removes it
    /// (`limit 0`), `Some(Some(n))` stops after `n`.
    pub limit: Option<Option<u64>>,
}

/// A parsed command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Run one query against the current data graph.
    Query(QuerySpec),
    /// Replace the data graph (graph body follows).
    Reload,
    /// Register a standing query for this connection (graph body follows).
    Watch,
    /// Remove a standing query registered by this connection.
    Unwatch(u64),
    /// Mutate the live data graph (delta body follows).
    Delta,
    /// Liveness probe.
    Healthz,
    /// Counter snapshot.
    Stats,
    /// Close this connection.
    Quit,
    /// Stop the whole server (in-flight queries finish; new connections stop).
    Shutdown,
}

/// A malformed command line. The message is sent verbatim after `err `.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn err(message: impl Into<String>) -> ProtocolError {
    ProtocolError(message.into())
}

/// Parses an engine name as it appears on the wire.
pub fn parse_engine(name: &str) -> Result<Engine, ProtocolError> {
    match name {
        "gup" => Ok(Engine::Gup),
        "plain" => Ok(Engine::Plain),
        "daf" => Ok(Engine::Daf),
        "gql" => Ok(Engine::Gql),
        "ri" => Ok(Engine::Ri),
        "join" => Ok(Engine::Join),
        "bruteforce" => Ok(Engine::BruteForce),
        other => Err(err(format!(
            "unknown engine '{other}' (expected gup, plain, daf, gql, ri, join, bruteforce)"
        ))),
    }
}

/// Parses one command line. Graph bodies (for `query`/`reload`) are read
/// separately by the connection loop.
pub fn parse_command(line: &str) -> Result<Command, ProtocolError> {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("query") => parse_query(words).map(Command::Query),
        Some("reload") => expect_bare(words, "reload", Command::Reload),
        Some("watch") => expect_bare(words, "watch", Command::Watch),
        Some("unwatch") => parse_unwatch(words),
        Some("delta") => expect_bare(words, "delta", Command::Delta),
        Some("healthz") => expect_bare(words, "healthz", Command::Healthz),
        Some("stats") => expect_bare(words, "stats", Command::Stats),
        Some("quit") => expect_bare(words, "quit", Command::Quit),
        Some("shutdown") => expect_bare(words, "shutdown", Command::Shutdown),
        Some(other) => Err(err(format!(
            "unknown command '{other}' (expected query, reload, watch, unwatch, delta, healthz, stats, quit, shutdown)"
        ))),
        None => Err(err("empty command")),
    }
}

fn expect_bare<'a>(
    mut words: impl Iterator<Item = &'a str>,
    name: &str,
    command: Command,
) -> Result<Command, ProtocolError> {
    match words.next() {
        None => Ok(command),
        Some(extra) => Err(err(format!("{name} takes no arguments (got '{extra}')"))),
    }
}

fn parse_unwatch<'a>(mut words: impl Iterator<Item = &'a str>) -> Result<Command, ProtocolError> {
    let id = words.next().ok_or_else(|| err("unwatch needs an id"))?;
    let id: u64 = id
        .parse()
        .map_err(|_| err(format!("unwatch needs an integer id, got '{id}'")))?;
    match words.next() {
        None => Ok(Command::Unwatch(id)),
        Some(extra) => Err(err(format!("unwatch takes one id (got extra '{extra}')"))),
    }
}

/// Parses a `delta` body (the lines between the `delta` command and its `end`
/// terminator): `av <label>`, `ae <a> <b>`, `de <a> <b>`, one per line. Blank
/// lines are skipped; anything else is an error naming the line. Semantic
/// validation (unknown endpoints, duplicate edges, …) happens later, in
/// [`gup_graph::delta`] — this only rejects lines that don't scan.
pub fn parse_delta_body(body: &str) -> Result<Vec<GraphDelta>, ProtocolError> {
    let mut deltas = Vec::new();
    for (i, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let op = words.next().unwrap_or("");
        let mut next_u32 = |what: &str| -> Result<u32, ProtocolError> {
            let token = words
                .next()
                .ok_or_else(|| err(format!("delta line {}: {op} needs {what}", i + 1)))?;
            token.parse().map_err(|_| {
                err(format!(
                    "delta line {}: {op} needs an integer {what}, got '{token}'",
                    i + 1
                ))
            })
        };
        let delta = match op {
            "av" => GraphDelta::AddVertex {
                label: next_u32("a label")?,
            },
            "ae" => GraphDelta::AddEdge {
                a: next_u32("two endpoints")?,
                b: next_u32("two endpoints")?,
            },
            "de" => GraphDelta::RemoveEdge {
                a: next_u32("two endpoints")?,
                b: next_u32("two endpoints")?,
            },
            other => {
                return Err(err(format!(
                    "delta line {}: unknown op '{other}' (expected av, ae, de)",
                    i + 1
                )))
            }
        };
        if let Some(extra) = words.next() {
            return Err(err(format!(
                "delta line {}: trailing '{extra}' after {op}",
                i + 1
            )));
        }
        deltas.push(delta);
    }
    Ok(deltas)
}

fn parse_query<'a>(mut words: impl Iterator<Item = &'a str>) -> Result<QuerySpec, ProtocolError> {
    let output = match words.next() {
        Some("count") => OutputMode::Count,
        Some("first") => {
            let k = words
                .next()
                .ok_or_else(|| err("query first needs a count"))?;
            let k: u64 = k
                .parse()
                .map_err(|_| err(format!("query first needs an integer count, got '{k}'")))?;
            if k == 0 {
                return Err(err("query first needs a positive count"));
            }
            OutputMode::First(k)
        }
        Some(other) => {
            return Err(err(format!(
                "query needs a mode: count or first <k> (got '{other}')"
            )))
        }
        None => return Err(err("query needs a mode: count or first <k>")),
    };
    let mut spec = QuerySpec {
        output,
        timeout: None,
        engine: Engine::Gup,
        threads: 1,
        limit: None,
    };
    // Each option may appear at most once: letting a repeated key win silently
    // meant `query count limit 5 limit 0` uncapped the query.
    let mut seen: Vec<&str> = Vec::new();
    while let Some(key) = words.next() {
        if seen.contains(&key) {
            return Err(err(format!("repeated query option '{key}'")));
        }
        seen.push(key);
        let value = words
            .next()
            .ok_or_else(|| err(format!("option '{key}' needs a value")))?;
        match key {
            "timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| err(format!("timeout-ms needs an integer, got '{value}'")))?;
                if ms == 0 {
                    return Err(err("timeout-ms must be positive"));
                }
                spec.timeout = Some(Duration::from_millis(ms));
            }
            "engine" => spec.engine = parse_engine(value)?,
            "threads" => {
                let threads: usize = value
                    .parse()
                    .map_err(|_| err(format!("threads needs an integer, got '{value}'")))?;
                if threads == 0 {
                    return Err(err("threads must be positive"));
                }
                spec.threads = threads;
            }
            "limit" => {
                let limit: u64 = value
                    .parse()
                    .map_err(|_| err(format!("limit needs an integer, got '{value}'")))?;
                spec.limit = Some(if limit == 0 { None } else { Some(limit) });
            }
            other => return Err(err(format!("unknown query option '{other}'"))),
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_commands_parse() {
        assert_eq!(parse_command("healthz").unwrap(), Command::Healthz);
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
        assert_eq!(parse_command("shutdown").unwrap(), Command::Shutdown);
        assert_eq!(parse_command("reload").unwrap(), Command::Reload);
        assert_eq!(parse_command("watch").unwrap(), Command::Watch);
        assert_eq!(parse_command("delta").unwrap(), Command::Delta);
        assert!(parse_command("healthz now").is_err());
        assert!(parse_command("watch closely").is_err());
        assert!(parse_command("delta now").is_err());
    }

    #[test]
    fn unwatch_takes_one_id() {
        assert_eq!(parse_command("unwatch 7").unwrap(), Command::Unwatch(7));
        assert!(parse_command("unwatch").is_err());
        assert!(parse_command("unwatch seven").is_err());
        assert!(parse_command("unwatch 7 8").is_err());
    }

    #[test]
    fn delta_bodies_parse() {
        let deltas = parse_delta_body("av 3\n\nae 0 5\nde 1 2\n").unwrap();
        assert_eq!(
            deltas,
            vec![
                GraphDelta::AddVertex { label: 3 },
                GraphDelta::AddEdge { a: 0, b: 5 },
                GraphDelta::RemoveEdge { a: 1, b: 2 },
            ]
        );
        assert!(parse_delta_body("").unwrap().is_empty());
    }

    #[test]
    fn malformed_delta_bodies_name_the_line() {
        for (body, needle) in [
            ("av\n", "line 1"),
            ("ae 0\n", "line 1"),
            ("av 1\nde 0 x\n", "line 2"),
            ("xx 0 1\n", "unknown op 'xx'"),
            ("ae 0 1 2\n", "trailing '2'"),
        ] {
            let e = parse_delta_body(body).unwrap_err();
            assert!(e.0.contains(needle), "{body:?}: {e}");
        }
    }

    #[test]
    fn query_count_defaults() {
        let Command::Query(spec) = parse_command("query count").unwrap() else {
            panic!("expected a query");
        };
        assert_eq!(spec.output, OutputMode::Count);
        assert_eq!(spec.timeout, None);
        assert_eq!(spec.engine, Engine::Gup);
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.limit, None);
    }

    #[test]
    fn query_options_parse() {
        let Command::Query(spec) =
            parse_command("query first 5 timeout-ms 250 engine daf threads 4 limit 100").unwrap()
        else {
            panic!("expected a query");
        };
        assert_eq!(spec.output, OutputMode::First(5));
        assert_eq!(spec.timeout, Some(Duration::from_millis(250)));
        assert_eq!(spec.engine, Engine::Daf);
        assert_eq!(spec.threads, 4);
        assert_eq!(spec.limit, Some(Some(100)));
        let Command::Query(spec) = parse_command("query count limit 0").unwrap() else {
            panic!("expected a query");
        };
        assert_eq!(spec.limit, Some(None));
    }

    #[test]
    fn zero_timeout_is_rejected() {
        let e = parse_command("query count timeout-ms 0").unwrap_err();
        assert!(e.0.contains("positive"), "{e}");
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(parse_command("").is_err());
        assert!(parse_command("frobnicate").is_err());
        assert!(parse_command("query").is_err());
        assert!(parse_command("query first").is_err());
        assert!(parse_command("query first 0").is_err());
        assert!(parse_command("query first nope").is_err());
        assert!(parse_command("query count timeout-ms").is_err());
        assert!(parse_command("query count timeout-ms soon").is_err());
        assert!(parse_command("query count engine volcano").is_err());
        assert!(parse_command("query count threads 0").is_err());
        assert!(parse_command("query count verbosity 3").is_err());
    }

    #[test]
    fn repeated_options_are_rejected() {
        // Pre-fix, the second occurrence silently won: `limit 5 limit 0` uncapped.
        let e = parse_command("query count limit 5 limit 0").unwrap_err();
        assert!(e.0.contains("repeated query option 'limit'"), "{e}");
        for line in [
            "query count timeout-ms 10 timeout-ms 20",
            "query count engine gup engine daf",
            "query first 3 threads 2 threads 4",
            "query count limit 1 engine daf limit 2",
        ] {
            let e = parse_command(line).unwrap_err();
            assert!(e.0.contains("repeated query option"), "{line}: {e}");
        }
        // Distinct options remain fine in any order.
        assert!(parse_command("query count limit 5 engine daf timeout-ms 10 threads 2").is_ok());
    }

    #[test]
    fn every_engine_name_round_trips() {
        for (name, engine) in [
            ("gup", Engine::Gup),
            ("plain", Engine::Plain),
            ("daf", Engine::Daf),
            ("gql", Engine::Gql),
            ("ri", Engine::Ri),
            ("join", Engine::Join),
            ("bruteforce", Engine::BruteForce),
        ] {
            assert_eq!(parse_engine(name).unwrap(), engine);
        }
        assert!(parse_engine("gup2").is_err());
    }
}
