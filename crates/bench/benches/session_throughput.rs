//! Query-set throughput: one shared `PreparedData` session versus cold per-query
//! construction, on Yeast-analogue query sets — the criterion-grade counterpart of
//! the batch-mode numbers in EXPERIMENTS.md ("Prepared-session reference numbers").
//!
//! * `cold` — the legacy one-shot path (`GupMatcher::new` per query): borrows the
//!   data graph and re-runs the neighbor-rescan NLF filter for every query, exactly
//!   as every caller did before the session redesign (minus its per-candidate
//!   allocation, which is fixed on both paths).
//! * `prepared` — the session path: the signature index is built once outside the
//!   measured region; each iteration runs the whole query set through
//!   `Session::run_batch`.
//!
//! Two instances: the plain Yeast analogue (71 labels — filtering is cheap, so the
//! two paths are close) and a **hard-mode** variant with labels coarsened to 4
//! (`gup_workloads::coarsen_labels`, same trick as the Figure-10 experiment), where
//! candidate sets per label are large and the NLF pass dominates — the regime the
//! signature arena exists for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gup::session::Session;
use gup::sink::CountOnly;
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_graph::Graph;
use gup_workloads::{
    coarsen_labels, embed_in_host, generate_query_set, large_connected_query, Dataset,
    LargeQuerySpec, QueryClass, QuerySetSpec,
};
use std::time::Duration;

fn query_set_config(embedding_limit: u64) -> GupConfig {
    GupConfig {
        limits: SearchLimits {
            // Embedding caps alone bound the work: a time limit would be hoisted
            // into ONE deadline shared by the whole batch on the prepared arm while
            // the cold arm restarts its budget per query — unequal budgets would
            // let truncation masquerade as speedup on a slow machine.
            max_embeddings: Some(embedding_limit),
            ..SearchLimits::UNLIMITED
        },
        ..GupConfig::default()
    }
}

/// `W` is the query-vertex bitset word count the cold arm dispatches at
/// (`Session::run_batch` picks its own width per query): 1 for ≤64-vertex
/// queries, 2 for the 128-vertex case.
fn bench_instance<const W: usize>(
    c: &mut Criterion,
    group_name: &str,
    data: &Graph,
    queries: &[Graph],
    embedding_limit: u64,
) {
    let config = query_set_config(embedding_limit);
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    group.bench_function(BenchmarkId::from_parameter("cold"), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for query in queries {
                let mut sink = CountOnly::new();
                GupMatcher::<W>::new(query, data, config.clone())
                    .unwrap()
                    .run_with_sink(&mut sink);
                total += sink.count();
            }
            total
        });
    });

    let session = Session::new(data.clone()).with_defaults(config.clone());
    group.bench_function(BenchmarkId::from_parameter("prepared"), |b| {
        b.iter(|| session.run_batch(queries).total_embeddings());
    });

    group.finish();
}

fn bench_session_throughput(c: &mut Criterion) {
    let data = Dataset::Yeast.generate(0.15).graph;
    let spec = QuerySetSpec {
        vertices: 8,
        class: QueryClass::Sparse,
    };
    let queries = generate_query_set(&data, spec, 8, 11);
    assert!(
        !queries.is_empty(),
        "workload generator produced no queries"
    );
    bench_instance::<1>(c, "query_set_8S", &data, &queries, 100_000);

    // Hard mode: few labels → large per-label candidate sets → the NLF filter is
    // the hot path. A paper-style answer cap (the "first 1000 matches" serving
    // shape) keeps enumeration from swamping the per-query preparation the session
    // amortizes.
    let coarse_data = coarsen_labels(&data, 4);
    let coarse_queries: Vec<Graph> = queries.iter().map(|q| coarsen_labels(q, 4)).collect();
    bench_instance::<1>(
        c,
        "query_set_8S_coarse4",
        &coarse_data,
        &coarse_queries,
        1000,
    );

    // 128-vertex query: the two-word (Qv128) bitset path, a planted occurrence
    // in a decoy-padded host. One query is the whole "set" — what the session
    // amortizes here is the signature index over the host graph, which the cold
    // path rebuilds on every iteration.
    let spec = LargeQuerySpec {
        vertices: 128,
        labels: 8,
        extra_edges: 48,
        seed: 2026,
    };
    let big_query = large_connected_query(&spec);
    let host = embed_in_host(&big_query, 4096, 2026);
    bench_instance::<2>(
        c,
        "query_128v",
        &host,
        std::slice::from_ref(&big_query),
        1000,
    );
}

criterion_group!(benches, bench_session_throughput);
criterion_main!(benches);
