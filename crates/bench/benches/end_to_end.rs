//! End-to-end comparison bench: GuP versus the baseline families on fixed queries from
//! the Yeast analogue. This is the criterion-grade counterpart of the wall-clock
//! comparison in Figures 4–6 of the paper (run `experiments -- all` for the full
//! query-set sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gup::sink::{CollectAll, CountOnly};
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_baselines::{BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline};
use gup_order::OrderingStrategy;
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};
use std::time::Duration;

fn bench_end_to_end(c: &mut Criterion) {
    let data = Dataset::Yeast.generate(0.15).graph;
    let spec = QuerySetSpec {
        vertices: 16,
        class: QueryClass::Sparse,
    };
    let queries = generate_query_set(&data, spec, 2, 7);
    let mut group = c.benchmark_group("end_to_end_16S");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(4));
    for (qi, query) in queries.iter().enumerate() {
        let gup_cfg = GupConfig {
            limits: SearchLimits {
                max_embeddings: Some(100_000),
                time_limit: Some(Duration::from_secs(2)),
                ..SearchLimits::UNLIMITED
            },
            ..GupConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("GuP", qi), query, |b, q| {
            b.iter(|| {
                GupMatcher::<1>::new(q, &data, gup_cfg.clone())
                    .unwrap()
                    .run()
                    .embedding_count()
            });
        });
        // The same search through the two extreme sinks: counting (no embedding is
        // ever materialized) versus collecting everything — the gap is the price of
        // materialization that `--count-only` avoids.
        group.bench_with_input(BenchmarkId::new("GuP-count-sink", qi), query, |b, q| {
            b.iter(|| {
                let mut sink = CountOnly::new();
                GupMatcher::<1>::new(q, &data, gup_cfg.clone())
                    .unwrap()
                    .run_with_sink(&mut sink);
                sink.count()
            });
        });
        group.bench_with_input(BenchmarkId::new("GuP-collect-sink", qi), query, |b, q| {
            b.iter(|| {
                let mut sink = CollectAll::new();
                GupMatcher::<1>::new(q, &data, gup_cfg.clone())
                    .unwrap()
                    .run_with_sink(&mut sink);
                sink.len()
            });
        });
        let limits = BaselineLimits {
            max_embeddings: Some(100_000),
            time_limit: Some(Duration::from_secs(2)),
        };
        for kind in [BaselineKind::DafFailingSet, BaselineKind::GqlStyle] {
            group.bench_with_input(BenchmarkId::new(kind.name(), qi), query, |b, q| {
                b.iter(|| {
                    BacktrackingBaseline::<1>::new(q, &data, kind)
                        .unwrap()
                        .run(limits)
                        .embeddings
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("RM-join", qi), query, |b, q| {
            b.iter(|| {
                JoinBaseline::new(q, &data, OrderingStrategy::GqlStyle)
                    .unwrap()
                    .run(limits)
                    .embeddings
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
