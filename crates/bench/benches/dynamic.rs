//! Incremental index maintenance versus full re-preparation — the A/B behind
//! the dynamic-graph subsystem's existence. For a delta batch against a
//! 20k-vertex power-law graph, `incremental` runs [`PreparedData::apply`]
//! (block-copy untouched CSR and signature runs, recompute only touched
//! vertices) while `rebuild` re-runs [`PreparedData::new`] on the
//! already-materialized mutated graph (its CSR clone is a memcpy; the measured
//! cost is the label inverted index and the NLF signature arena, which is what
//! `apply` avoids). Rebuild cost scales with the whole graph, apply with the
//! touched neighborhood — the gap is the amortization a delta stream buys.
//! Numbers are recorded in EXPERIMENTS.md ("Incremental apply vs full
//! re-prepare").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gup_graph::delta::GraphDelta;
use gup_graph::generate::{power_law_graph, PowerLawConfig};
use gup_graph::{Graph, PreparedData};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

/// Draws a batch of `n` deltas that is valid against `g` as a whole: edge
/// inserts and deletes tracked through an overlay so in-batch draws never
/// clash, plus the occasional fresh vertex.
fn make_batch(g: &Graph, n: usize, seed: u64) -> Vec<GraphDelta> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut present: HashSet<(u32, u32)> = g.edges().collect();
    let mut removable: Vec<(u32, u32)> = g.edges().collect();
    let mut vertex_count = g.vertex_count() as u32;
    let mut batch = Vec::with_capacity(n);
    while batch.len() < n {
        match rng.gen_range(0..10u32) {
            0 => {
                batch.push(GraphDelta::AddVertex {
                    label: rng.gen_range(0..4),
                });
                vertex_count += 1;
            }
            1..=6 => {
                for _ in 0..64 {
                    let a = rng.gen_range(0..vertex_count);
                    let b = rng.gen_range(0..vertex_count);
                    let key = (a.min(b), a.max(b));
                    if a != b && !present.contains(&key) {
                        present.insert(key);
                        batch.push(GraphDelta::AddEdge { a, b });
                        break;
                    }
                }
            }
            _ => {
                if removable.is_empty() {
                    continue;
                }
                let i = rng.gen_range(0..removable.len());
                let (a, b) = removable.swap_remove(i);
                present.remove(&(a, b));
                batch.push(GraphDelta::RemoveEdge { a, b });
            }
        }
    }
    batch
}

fn bench_dynamic_apply(c: &mut Criterion) {
    let data = power_law_graph(&PowerLawConfig {
        vertices: 20_000,
        edges_per_vertex: 4,
        labels: 8,
        label_skew: 0.3,
        extra_edge_fraction: 0.05,
        seed: 7,
    });
    let base = PreparedData::new(data);

    let mut group = c.benchmark_group("dynamic_apply");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(5));

    for batch_size in [1usize, 16, 128] {
        let batch = make_batch(base.graph(), batch_size, 0xD0D0 + batch_size as u64);
        let mutated = base
            .apply(&batch)
            .expect("generated batch is valid")
            .graph()
            .clone();
        group.bench_with_input(
            BenchmarkId::new("incremental", batch_size),
            &batch,
            |b, batch| {
                b.iter(|| base.apply(batch).expect("generated batch is valid"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rebuild", batch_size),
            &mutated,
            |b, mutated| {
                b.iter(|| PreparedData::new(mutated.clone()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic_apply);
criterion_main!(benches);
