//! Ablation benches: the criterion counterpart of Figures 8 and 9 — how the
//! reservation size limit and each guard family affect the search on a fixed query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};
use std::time::Duration;

fn config_with(features: PruningFeatures, r: Option<usize>) -> GupConfig {
    GupConfig {
        features,
        reservation_size_limit: r,
        limits: SearchLimits {
            max_embeddings: Some(100_000),
            time_limit: Some(Duration::from_secs(2)),
            ..SearchLimits::UNLIMITED
        },
        ..GupConfig::default()
    }
}

fn bench_feature_ablation(c: &mut Criterion) {
    let data = Dataset::Yeast.generate(0.15).graph;
    let spec = QuerySetSpec {
        vertices: 16,
        class: QueryClass::Dense,
    };
    let queries = generate_query_set(&data, spec, 1, 11);
    let Some(query) = queries.first() else { return };
    let mut group = c.benchmark_group("feature_ablation_16D");
    group.sample_size(15);
    for features in [
        PruningFeatures::NONE,
        PruningFeatures::RESERVATION_ONLY,
        PruningFeatures::RESERVATION_AND_NV,
        PruningFeatures::RESERVATION_NV_NE,
        PruningFeatures::ALL,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(features.label()),
            query,
            |b, q| {
                let cfg = config_with(features, Some(3));
                b.iter(|| {
                    GupMatcher::<1>::new(q, &data, cfg.clone())
                        .unwrap()
                        .run()
                        .embedding_count()
                });
            },
        );
    }
    group.finish();
}

fn bench_reservation_size(c: &mut Criterion) {
    let data = Dataset::Yeast.generate(0.15).graph;
    let spec = QuerySetSpec {
        vertices: 16,
        class: QueryClass::Sparse,
    };
    let queries = generate_query_set(&data, spec, 1, 13);
    let Some(query) = queries.first() else { return };
    let mut group = c.benchmark_group("reservation_size_16S");
    group.sample_size(15);
    for (label, r) in [
        ("r0", Some(0)),
        ("r1", Some(1)),
        ("r3", Some(3)),
        ("r7", Some(7)),
        ("rinf", None),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), query, |b, q| {
            let cfg = config_with(PruningFeatures::RESERVATION_ONLY, r);
            b.iter(|| {
                GupMatcher::<1>::new(q, &data, cfg.clone())
                    .unwrap()
                    .run()
                    .embedding_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feature_ablation, bench_reservation_size);
criterion_main!(benches);
