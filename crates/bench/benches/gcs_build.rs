//! Criterion micro-benchmarks for the pre-search phases: candidate-space construction
//! and guarded-candidate-space (GCS) construction including reservation-guard
//! generation. These are the per-query fixed costs that §4.2.2 of the paper points to
//! when explaining why GuP only breaks even on small queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gup::{Gcs, GupConfig};
use gup_candidate::{CandidateSpace, FilterConfig};
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};

fn bench_construction(c: &mut Criterion) {
    let data = Dataset::Yeast.generate(0.15).graph;
    let mut group = c.benchmark_group("construction");
    group.sample_size(20);
    for &size in &[8usize, 16, 24] {
        let spec = QuerySetSpec {
            vertices: size,
            class: QueryClass::Sparse,
        };
        let queries = generate_query_set(&data, spec, 3, 42);
        let Some(query) = queries.first() else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::new("candidate_space", format!("{}S", size)),
            query,
            |b, q| {
                b.iter(|| CandidateSpace::build(q, &data, &FilterConfig::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gcs_with_reservations", format!("{}S", size)),
            query,
            |b, q| {
                b.iter(|| Gcs::<1>::build(q, &data, &GupConfig::default()).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
