//! One function per table / figure of the paper's evaluation.
//!
//! Every function returns a plain-text report (ready to paste into EXPERIMENTS.md) and
//! most also return TSV-ish rows through the report itself. The headline comparison
//! (Table 2, Figures 4, 5, 6) shares one sweep over datasets × query sets × methods so
//! that `experiments -- all` does not repeat the expensive part.
//!
//! Scaling note: the datasets are synthetic analogues scaled down by `SuiteConfig`, so
//! the *absolute* numbers differ from the paper; the comparisons (which method finishes
//! more sets, who needs fewer recursions, how much each guard contributes) are the
//! reproduction target. Thresholds are scaled accordingly (e.g. "≥ 1 s / ≥ 1 min /
//! ≥ 1 h" becomes "≥ slow / ≥ very-slow / timeout" from the configuration).

use crate::harness::{run_query_set, Method, SetSummary, SuiteConfig};
use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_workloads::{Dataset, QuerySetSpec};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Results of the shared headline sweep: one [`SetSummary`] per
/// (dataset, query set, method).
pub struct HeadlineResults {
    /// The configuration the sweep ran under.
    pub config: SuiteConfig,
    /// `(dataset, query-set name, method, summary)` rows.
    pub rows: Vec<(Dataset, String, Method, SetSummary)>,
}

/// Runs the headline sweep shared by Table 2 and Figures 4–6.
pub fn collect_headline(config: &SuiteConfig) -> HeadlineResults {
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        // One prepared-data session per dataset, shared by every query set × method.
        let session = config.session(dataset);
        for spec in QuerySetSpec::PAPER_SETS {
            let queries = config.query_set(session.data(), spec);
            if queries.is_empty() {
                continue;
            }
            for method in Method::HEADLINE {
                let summary = run_query_set(method, &queries, &session, config);
                rows.push((dataset, spec.name(), method, summary));
            }
        }
    }
    HeadlineResults {
        config: *config,
        rows,
    }
}

/// **Table 2** — query sets finished (non-DNF) per method.
pub fn table2(results: &HeadlineResults) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Table 2: finished (non-DNF) query sets per method =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:<10} {:>10} {:>8}",
        "method", "dataset", "set", "finished"
    )
    .unwrap();
    let mut counts: Vec<(Method, usize)> = Method::HEADLINE.iter().map(|&m| (m, 0)).collect();
    for (dataset, set, method, summary) in &results.rows {
        let finished = !summary.dnf;
        if finished {
            if let Some(entry) = counts.iter_mut().find(|(m, _)| m == method) {
                entry.1 += 1;
            }
        }
        writeln!(
            out,
            "{:<8} {:<10} {:>10} {:>8}",
            method.name(),
            dataset.name(),
            set,
            if finished { "yes" } else { "DNF" }
        )
        .unwrap();
    }
    writeln!(out, "\nFinished-set count per method:").unwrap();
    for (m, c) in counts {
        writeln!(out, "  {:<8} {}", m.name(), c).unwrap();
    }
    out
}

/// **Figure 4** — number of queries above the slow / very-slow / timeout thresholds,
/// aggregated over every query set the sweep executed.
pub fn fig4(results: &HeadlineResults) -> String {
    let cfg = &results.config;
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 4: processing-time distribution (all query sets) =="
    )
    .unwrap();
    writeln!(
        out,
        "thresholds: slow >= {:?}, very slow >= {:?}, timeout = {:?} (paper: 1 s / 1 min / 1 h)",
        cfg.slow_threshold, cfg.very_slow_threshold, cfg.per_query_timeout
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>10} {:>9}",
        "method", "queries", ">=slow", ">=veryslow", "timeout"
    )
    .unwrap();
    for &method in &Method::HEADLINE {
        let (mut all, mut slow, mut very, mut to) = (0usize, 0usize, 0usize, 0usize);
        for (_, _, m, s) in &results.rows {
            if *m == method {
                all += s.queries;
                slow += s.over_slow;
                very += s.over_very_slow;
                to += s.timed_out;
            }
        }
        writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>10} {:>9}",
            method.name(),
            all,
            slow,
            very,
            to
        )
        .unwrap();
    }
    out
}

/// **Figure 5** — per-dataset breakdown of the slow-query counts for the sets the
/// paper highlights (16S, 32S, 16D, 24D).
pub fn fig5(results: &HeadlineResults) -> String {
    let highlighted = ["16S", "32S", "16D", "24D"];
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 5: breakdown per dataset (sets 16S, 32S, 16D, 24D) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>5} {:<8} {:>8} {:>8} {:>10} {:>8} {:>6}",
        "dataset", "set", "method", "queries", ">=slow", ">=veryslow", "timeout", "DNF"
    )
    .unwrap();
    for (dataset, set, method, s) in &results.rows {
        if !highlighted.contains(&set.as_str()) {
            continue;
        }
        writeln!(
            out,
            "{:<10} {:>5} {:<8} {:>8} {:>8} {:>10} {:>8} {:>6}",
            dataset.name(),
            set,
            method.name(),
            s.queries,
            s.over_slow,
            s.over_very_slow,
            s.timed_out,
            if s.dnf { "yes" } else { "no" }
        )
        .unwrap();
    }
    out
}

/// **Figure 6** — average processing time per query set on the Yeast analogue.
pub fn fig6(results: &HeadlineResults) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 6: average processing time per query set (Yeast analogue) =="
    )
    .unwrap();
    writeln!(out, "{:<6} {:<8} {:>14}", "set", "method", "avg time [ms]").unwrap();
    for (dataset, set, method, s) in &results.rows {
        if *dataset != Dataset::Yeast {
            continue;
        }
        writeln!(
            out,
            "{:<6} {:<8} {:>14.3}",
            set,
            method.name(),
            s.average_ms()
        )
        .unwrap();
    }
    out
}

/// **Figure 7** — number of recursions per query set (Yeast analogue), GuP versus the
/// GQL-style baselines (the paper omits DAF and RM because they do not count
/// recursions).
pub fn fig7(config: &SuiteConfig) -> String {
    let session = config.session(Dataset::Yeast);
    let methods = [Method::Gup, Method::GqlG, Method::GqlR];
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 7: total recursions per query set (Yeast analogue) =="
    )
    .unwrap();
    writeln!(out, "{:<6} {:<8} {:>14}", "set", "method", "recursions").unwrap();
    for spec in QuerySetSpec::PAPER_SETS {
        let queries = config.query_set(session.data(), spec);
        if queries.is_empty() {
            continue;
        }
        for method in methods {
            let summary = run_query_set(method, &queries, &session, config);
            writeln!(
                out,
                "{:<6} {:<8} {:>14}",
                spec.name(),
                method.name(),
                summary.total_recursions
            )
            .unwrap();
        }
    }
    out
}

/// **Figure 8** — effect of the reservation size limit `r` on the number of
/// recursions (reservation guards only, Yeast analogue).
pub fn fig8(config: &SuiteConfig) -> String {
    let session = config.session(Dataset::Yeast);
    let limits: [(&str, Option<usize>); 6] = [
        ("r=0", Some(0)),
        ("r=1", Some(1)),
        ("r=3", Some(3)),
        ("r=5", Some(5)),
        ("r=7", Some(7)),
        ("r=inf", None),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 8: reservation size limit r vs total recursions (Yeast analogue) =="
    )
    .unwrap();
    writeln!(out, "{:<7} {:>14}", "r", "recursions").unwrap();
    for (label, r) in limits {
        let mut total = 0u64;
        for spec in QuerySetSpec::PAPER_SETS {
            let queries = config.query_set(session.data(), spec);
            if queries.is_empty() {
                continue;
            }
            let summary = run_query_set(Method::GupReservationOnly(r), &queries, &session, config);
            total += summary.total_recursions;
        }
        writeln!(out, "{:<7} {:>14}", label, total).unwrap();
    }
    out
}

/// **Figure 9** — contribution of each pruning technique: futile recursions for
/// Baseline / R / R+NV / R+NV+NE / All (Yeast analogue).
pub fn fig9(config: &SuiteConfig) -> String {
    let session = config.session(Dataset::Yeast);
    let variants = [
        PruningFeatures::NONE,
        PruningFeatures::RESERVATION_ONLY,
        PruningFeatures::RESERVATION_AND_NV,
        PruningFeatures::RESERVATION_NV_NE,
        PruningFeatures::ALL,
    ];
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 9: futile recursions per technique combination (Yeast analogue) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<6} {:<10} {:>14} {:>14}",
        "set", "variant", "futile", "recursions"
    )
    .unwrap();
    for spec in QuerySetSpec::PAPER_SETS {
        let queries = config.query_set(session.data(), spec);
        if queries.is_empty() {
            continue;
        }
        for features in variants {
            let summary = run_query_set(Method::GupWith(features), &queries, &session, config);
            writeln!(
                out,
                "{:<6} {:<10} {:>14} {:>14}",
                spec.name(),
                features.label(),
                summary.total_futile,
                summary.total_recursions
            )
            .unwrap();
        }
    }
    out
}

/// **Table 3** — memory consumption: whole structure versus each guard family, on the
/// Yeast and Patents analogues for the 8S / 32S / 8D / 32D query sets.
pub fn table3(config: &SuiteConfig) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Table 3: peak memory consumption (guards vs whole) =="
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "dataset", "set", "whole[KB]", "prep[KB]", "resv[KB]", "NV[KB]", "NE[KB]", "guard/whole"
    )
    .unwrap();
    let sets = [
        QuerySetSpec::PAPER_SETS[0], // 8S
        QuerySetSpec::PAPER_SETS[3], // 32S
        QuerySetSpec::PAPER_SETS[4], // 8D
        QuerySetSpec::PAPER_SETS[7], // 32D
    ];
    for dataset in [Dataset::Yeast, Dataset::Patents] {
        let session = config.session(dataset);
        let data_bytes = session.data().heap_bytes();
        for spec in sets {
            let queries = config.query_set(session.data(), spec);
            let Some(query) = queries.first() else {
                continue;
            };
            let gup_config = GupConfig {
                limits: SearchLimits {
                    max_embeddings: Some(config.embedding_limit),
                    time_limit: Some(config.per_query_timeout),
                    ..SearchLimits::UNLIMITED
                },
                ..GupConfig::default()
            };
            let Ok(matcher) = GupMatcher::<1>::with_prepared(query, session.prepared(), gup_config)
            else {
                continue;
            };
            let (_result, report) = matcher.run_with_memory_report();
            // "Whole" = data graph + the session's shared prepared index (paid once)
            // + this query's GCS and guard stores.
            let whole = data_bytes + report.prepared_index_bytes + report.total_bytes();
            let share = 100.0 * report.guard_bytes() as f64 / whole.max(1) as f64;
            writeln!(
                out,
                "{:<10} {:>5} {:>12.1} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>11.2}%",
                dataset.name(),
                spec.name(),
                whole as f64 / 1024.0,
                report.prepared_index_bytes as f64 / 1024.0,
                report.reservation_bytes as f64 / 1024.0,
                report.nogood_vertex_bytes as f64 / 1024.0,
                report.nogood_edge_bytes as f64 / 1024.0,
                share
            )
            .unwrap();
        }
    }
    out
}

/// **Figure 10** — parallel scalability of three schedulers:
///
/// * **work-stealing** — the current driver (`gup::parallel`): recursive frame
///   splitting, one persistent engine (and guard store) per worker;
/// * **legacy root-split** — the repository's previous driver, frozen here as a
///   comparator: workers dynamically claim one root candidate at a time and build a
///   **fresh engine per claim**, throwing away all accumulated nogood guards;
/// * **DAF-style static** — one contiguous root chunk per thread, no re-balancing
///   (the scheduling the paper attributes to DAF, §4.3.4).
///
/// Runs on the hard-mode Yeast analogue (labels coarsened to 5 — the analogue's 71
/// labels make every query microsecond-trivial at laptop scale, see
/// `gup_workloads::coarsen_labels`) with seed-pinned 10-vertex sparse queries and a
/// paper-style per-query time limit. Reports, per thread count: average wall-clock
/// per query for each scheduler, the average and mean per-query speedup of
/// work-stealing over the legacy driver, and the steal/split counters of the
/// work-stealing runs.
pub fn fig10(config: &SuiteConfig, max_threads: usize) -> String {
    let data = gup_workloads::coarsen_labels(&config.data_graph(Dataset::Yeast), 5);
    let spec = QuerySetSpec {
        vertices: 10,
        class: gup_workloads::QueryClass::Sparse,
    };
    let queries: Vec<gup_graph::Graph> = gup_workloads::generate_query_set(
        &data,
        spec,
        config.queries_per_set.clamp(4, 16),
        config.seed,
    )
    .iter()
    .map(|q| gup_workloads::coarsen_labels(q, 5))
    .collect();
    let mut out = String::new();
    writeln!(
        out,
        "== Figure 10: parallel schedulers (hard-mode Yeast analogue, 10-vertex sparse) =="
    )
    .unwrap();
    if queries.is_empty() {
        writeln!(out, "no queries could be generated at this scale").unwrap();
        return out;
    }
    let time_limit = (config.per_query_timeout * 2).max(Duration::from_secs(1));
    let gup_config = GupConfig {
        limits: SearchLimits {
            max_embeddings: None,
            time_limit: Some(time_limit),
            ..SearchLimits::UNLIMITED
        },
        ..GupConfig::default()
    };
    writeln!(
        out,
        "queries={} per-query time limit={:?} (queries any scheduler times out on are dropped)",
        queries.len(),
        time_limit
    )
    .unwrap();
    // Keep only queries where parallel scheduling is non-trivial: the sequential
    // engine needs at least 1 ms (below that, thread startup noise swamps every
    // scheduler) and finishes within the limit (so the averages compare completed
    // runs). The filter is scheduler-neutral — it only looks at the sequential run.
    // One shared prepared index for every (query, scheduler, thread count) run.
    let prepared = gup_graph::PreparedData::from_graph(&data);
    let kept: Vec<&gup_graph::Graph> = queries
        .iter()
        .filter(|query| {
            let Ok(matcher) = GupMatcher::<1>::with_prepared(query, &prepared, gup_config.clone())
            else {
                return false;
            };
            let start = Instant::now();
            let outcome = matcher.run();
            !outcome.stats.hit_time_limit && start.elapsed() >= Duration::from_millis(1)
        })
        .collect();
    writeln!(
        out,
        "kept {} / {} queries (sequential time in [1 ms, limit))",
        kept.len(),
        queries.len()
    )
    .unwrap();
    if kept.is_empty() {
        return out;
    }

    let mut thread_counts = vec![1usize, 2, 4, 8];
    thread_counts.retain(|&t| t <= max_threads.max(1));
    writeln!(
        out,
        "{:<18} {:>8} {:>14} {:>10} {:>11} {:>8} {:>8}",
        "scheduler", "threads", "avg time [ms]", "vs legacy", "mean/query", "splits", "steals"
    )
    .unwrap();
    for &threads in &thread_counts {
        let mut stealing_ms = Vec::new();
        let mut legacy_ms = Vec::new();
        let mut static_ms = Vec::new();
        let (mut splits, mut steals) = (0u64, 0u64);
        for query in &kept {
            let Ok(matcher) = GupMatcher::<1>::with_prepared(query, &prepared, gup_config.clone())
            else {
                continue;
            };
            // Best of two runs per scheduler, to damp scheduling noise evenly.
            let mut best = [f64::INFINITY; 3];
            for rep in 0..2 {
                let start = Instant::now();
                let result = matcher.run_parallel(threads);
                best[0] = best[0].min(start.elapsed().as_secs_f64() * 1000.0);
                // Count steal/split activity from one run only, so the columns
                // describe a single measured pass, not the sum of both reps.
                if rep == 0 {
                    splits += result.stats.frames_split;
                    steals += result.stats.tasks_stolen;
                }

                let start = Instant::now();
                run_legacy_root_split(&matcher, threads);
                best[1] = best[1].min(start.elapsed().as_secs_f64() * 1000.0);

                let start = Instant::now();
                run_static_partition(&matcher, threads);
                best[2] = best[2].min(start.elapsed().as_secs_f64() * 1000.0);
            }
            stealing_ms.push(best[0]);
            legacy_ms.push(best[1]);
            static_ms.push(best[2]);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let mean_ratio = stealing_ms
            .iter()
            .zip(&legacy_ms)
            .map(|(s, l)| l / s.max(1e-9))
            .sum::<f64>()
            / stealing_ms.len().max(1) as f64;
        writeln!(
            out,
            "{:<18} {:>8} {:>14.2} {:>10.2} {:>11.2} {:>8} {:>8}",
            "work-stealing",
            threads,
            avg(&stealing_ms),
            avg(&legacy_ms) / avg(&stealing_ms).max(1e-9),
            mean_ratio,
            splits,
            steals
        )
        .unwrap();
        writeln!(
            out,
            "{:<18} {:>8} {:>14.2}",
            "legacy root-split",
            threads,
            avg(&legacy_ms)
        )
        .unwrap();
        writeln!(
            out,
            "{:<18} {:>8} {:>14.2}",
            "DAF-style static",
            threads,
            avg(&static_ms)
        )
        .unwrap();
    }
    out
}

/// The repository's previous parallel driver, frozen as the Figure-10 comparator:
/// dynamic root-candidate claiming through a shared cursor, with a **fresh engine
/// (and fresh, empty nogood-guard stores) per claimed root candidate** and an
/// always-shared embedding counter. Every cost the work-stealing rewrite removed is
/// preserved here on purpose.
fn run_legacy_root_split(matcher: &GupMatcher, threads: usize) -> u64 {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};
    let gcs = matcher.gcs();
    let config = matcher.config();
    let root_candidates = gcs.space().candidates(0).len();
    if root_candidates == 0 {
        return 0;
    }
    let cursor = AtomicUsize::new(0);
    let shared = Arc::new(AtomicU64::new(0));
    let total = Mutex::new(0u64);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(root_candidates).max(1) {
            let cursor = &cursor;
            let total = &total;
            let shared = Arc::clone(&shared);
            let config = config.clone();
            scope.spawn(move || {
                let mut local = 0u64;
                loop {
                    // Relaxed: work distribution needs only the fetch_add's
                    // atomicity — each index is handed out exactly once, and no
                    // other memory rides on the cursor.
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    if next >= root_candidates {
                        break;
                    }
                    if let Some(max) = config.limits.max_embeddings {
                        // Relaxed: advisory early exit; the limit is enforced by
                        // the shared reservation counter inside the engines.
                        if shared.load(Ordering::Relaxed) >= max {
                            break;
                        }
                    }
                    let mut engine = gup::SearchEngine::new(gcs, &config);
                    engine.restrict_root(next, next + 1);
                    engine.share_embedding_counter(Arc::clone(&shared));
                    local += engine.run().stats.embeddings;
                }
                *total.lock().unwrap() += local;
            });
        }
    });
    total.into_inner().unwrap()
}

/// Static root partition: split `C(u_0)` into `threads` contiguous chunks and give one
/// chunk to each worker (no dynamic re-balancing) — the scheduling strategy the paper
/// attributes to DAF (§4.3.4).
fn run_static_partition(matcher: &GupMatcher, threads: usize) {
    let gcs = matcher.gcs();
    let config = matcher.config();
    let roots = gcs.space().candidates(0).len();
    if roots == 0 {
        return;
    }
    let threads = threads.min(roots).max(1);
    let chunk = roots.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(roots);
            scope.spawn(move || {
                let mut engine = gup::SearchEngine::new(gcs, config);
                engine.restrict_root(lo, hi);
                let _ = engine.run();
            });
        }
    });
}

/// Runs every experiment and concatenates the reports. `max_threads` bounds the
/// Figure-10 sweep.
pub fn run_all(config: &SuiteConfig, max_threads: usize) -> String {
    let start = Instant::now();
    let headline = collect_headline(config);
    let mut out = String::new();
    out.push_str(&table2(&headline));
    out.push('\n');
    out.push_str(&fig4(&headline));
    out.push('\n');
    out.push_str(&fig5(&headline));
    out.push('\n');
    out.push_str(&fig6(&headline));
    out.push('\n');
    out.push_str(&fig7(config));
    out.push('\n');
    out.push_str(&fig8(config));
    out.push('\n');
    out.push_str(&fig9(config));
    out.push('\n');
    out.push_str(&table3(config));
    out.push('\n');
    out.push_str(&fig10(config, max_threads));
    out.push('\n');
    let _ = writeln!(out, "total experiment time: {:?}", start.elapsed());
    out
}

/// Measures the persistent-index path (ROADMAP item 5): cold preparation versus
/// `index_io` save/load on the EXPERIMENTS.md reference instance (30 000
/// vertices / ~120 000 edges / 15 labels), plus the session result-cache hit
/// latency against a cold run of the same queries. Not part of the paper's
/// evaluation; this quantifies the warm-start machinery around it.
pub fn persist(config: &SuiteConfig) -> String {
    use gup::session::Session;
    use gup_graph::generate::{power_law_graph, random_walk_query, PowerLawConfig};
    use gup_graph::index_io::{load_index_bytes, write_index_bytes};
    use gup_graph::PreparedData;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    const REPS: usize = 5;
    let graph = power_law_graph(&PowerLawConfig {
        vertices: 30_000,
        edges_per_vertex: 4,
        labels: 15,
        seed: config.seed,
        ..PowerLawConfig::default()
    });

    // Cold: build the index from the in-memory graph, REPS times, keep the best
    // (the number EXPERIMENTS.md quotes as the per-process preparation cost).
    let mut cold_best = Duration::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        let p = PreparedData::new(graph.clone());
        cold_best = cold_best.min(t.elapsed());
        std::hint::black_box(&p);
    }
    let prepared = PreparedData::new(graph.clone());

    // Warm: serialize once, then time deserialization + validation.
    let t = Instant::now();
    let bytes = write_index_bytes(&prepared);
    let encode = t.elapsed();
    let mut warm_best = Duration::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        let p = load_index_bytes(&bytes).expect("own bytes must load");
        warm_best = warm_best.min(t.elapsed());
        std::hint::black_box(&p);
    }

    // Result cache: cold run vs. memo hit for seed-pinned 8-vertex queries.
    let session = Session::from_prepared(Arc::new(prepared)).with_result_cache(64);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5eed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## persist — index save/load vs. cold preparation\n\n\
         data graph: {} vertices, {} edges, {} labels; index file {} bytes\n\
         cold prepare (best of {REPS}):   {cold_best:?}\n\
         encode to bytes:            {encode:?}\n\
         load + validate (best of {REPS}): {warm_best:?}\n",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count(),
        bytes.len(),
    );
    let _ = writeln!(out, "| query | cold count | cold | cache hit | speedup |");
    let _ = writeln!(out, "|---|---:|---:|---:|---:|");
    for qi in 0..4 {
        let Some(query) = random_walk_query(&graph, 8, &mut rng) else {
            continue;
        };
        let run = |q: &gup_graph::Graph| {
            let t = Instant::now();
            let n = session
                .query(q)
                .limit(config.embedding_limit)
                .count()
                .expect("persist experiment query");
            (n, t.elapsed())
        };
        let (count, cold) = run(&query);
        let (hit_count, hit) = run(&query);
        assert_eq!(count, hit_count, "cache hit changed the answer");
        let speedup = cold.as_nanos() as f64 / hit.as_nanos().max(1) as f64;
        let _ = writeln!(
            out,
            "| q{qi} | {count} | {cold:?} | {hit:?} | {speedup:.0}x |"
        );
    }
    out
}

/// Utility used by the binary: very rough upper bound on a full run's duration, to
/// warn users that larger scales take correspondingly longer.
pub fn estimated_budget(config: &SuiteConfig) -> Duration {
    config.per_set_budget
        * (Dataset::ALL.len() * QuerySetSpec::PAPER_SETS.len() * Method::HEADLINE.len()) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SuiteConfig {
        SuiteConfig {
            queries_per_set: 2,
            per_query_timeout: Duration::from_millis(100),
            per_set_budget: Duration::from_secs(2),
            ..SuiteConfig::smoke()
        }
    }

    #[test]
    fn headline_sweep_and_reports() {
        let config = tiny_config();
        let headline = collect_headline(&config);
        assert!(!headline.rows.is_empty());
        let t2 = table2(&headline);
        assert!(t2.contains("Table 2"));
        assert!(t2.contains("GuP"));
        let f4 = fig4(&headline);
        assert!(f4.contains("Figure 4"));
        let f5 = fig5(&headline);
        assert!(f5.contains("Figure 5"));
        let f6 = fig6(&headline);
        assert!(f6.contains("Yeast"));
    }

    #[test]
    fn ablation_reports_run() {
        let config = tiny_config();
        assert!(fig8(&config).contains("r=3"));
        assert!(fig9(&config).contains("R+NV"));
    }

    #[test]
    fn memory_table_runs() {
        let config = tiny_config();
        let t3 = table3(&config);
        assert!(t3.contains("Table 3"));
    }

    #[test]
    fn estimated_budget_scales_with_config() {
        let config = tiny_config();
        assert!(estimated_budget(&config) >= config.per_set_budget);
    }
}
