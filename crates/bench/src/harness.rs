//! Uniform runner for GuP, its ablations, and the baselines.
//!
//! Since the session redesign the harness is a thin veneer over
//! [`gup::session::Session`]: each dataset's data graph is prepared **once** and
//! every method × query runs through the same shared [`PreparedData`] — exactly how
//! the paper's query sets are meant to be executed (§4.1), and how a serving
//! deployment would run them.
//!
//! [`PreparedData`]: gup_graph::PreparedData

use gup::session::{Engine, Session};
use gup::sink::CountOnly;
use gup::{GupConfig, PruningFeatures, SearchLimits};
use gup_graph::Graph;
use gup_workloads::{generate_query_set, Dataset, QuerySetSpec};
use std::time::{Duration, Instant};

/// The systems compared in the evaluation. `Gup` is this repository's contribution;
/// the others are the baseline families standing in for the paper's competitors, plus
/// GuP ablations used by Figures 8 and 9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Full GuP (all guards + backjumping).
    Gup,
    /// GuP with a specific feature subset (ablations of Fig. 9).
    GupWith(PruningFeatures),
    /// GuP restricted to reservation guards with a given size limit (Fig. 8);
    /// `None` = unlimited (`r = ∞`).
    GupReservationOnly(Option<usize>),
    /// DAF-style failing-set backtracking.
    Daf,
    /// GraphQL-style filtering + ordering.
    GqlG,
    /// RI-style ordering (the paper's GQL-R).
    GqlR,
    /// Join-based enumeration (RapidMatch stand-in).
    RapidMatchLike,
}

impl Method {
    /// The methods compared in the headline experiments (Table 2, Figs. 4–6), in the
    /// paper's order: GuP, DAF, GQL-G, GQL-R, RM.
    pub const HEADLINE: [Method; 5] = [
        Method::Gup,
        Method::Daf,
        Method::GqlG,
        Method::GqlR,
        Method::RapidMatchLike,
    ];

    /// Display name used in tables.
    pub fn name(self) -> String {
        match self {
            Method::Gup => "GuP".to_string(),
            Method::GupWith(f) => format!("GuP[{}]", f.label()),
            Method::GupReservationOnly(Some(r)) => format!("GuP[r={r}]"),
            Method::GupReservationOnly(None) => "GuP[r=inf]".to_string(),
            Method::Daf => "DAF".to_string(),
            Method::GqlG => "GQL-G".to_string(),
            Method::GqlR => "GQL-R".to_string(),
            Method::RapidMatchLike => "RM".to_string(),
        }
    }
}

/// Outcome of running one method on one query.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunRecord {
    /// Embeddings found (capped by the embedding limit).
    pub embeddings: u64,
    /// Recursive calls (or intermediate join results for the join baseline).
    pub recursions: u64,
    /// Recursive calls that led to a deadend.
    pub futile_recursions: u64,
    /// Wall-clock time of the search (GCS/candidate construction included).
    pub elapsed: Duration,
    /// `true` if the per-query time limit fired.
    pub timed_out: bool,
}

/// Per-query-set aggregate, mirroring how the paper reports results.
#[derive(Clone, Debug, Default)]
pub struct SetSummary {
    /// Queries actually executed.
    pub queries: usize,
    /// Queries slower than the "slow" threshold.
    pub over_slow: usize,
    /// Queries slower than the "very slow" threshold.
    pub over_very_slow: usize,
    /// Queries that hit the per-query time limit.
    pub timed_out: usize,
    /// Total processing time over the set.
    pub total_time: Duration,
    /// Total recursions over the set.
    pub total_recursions: u64,
    /// Total futile recursions over the set.
    pub total_futile: u64,
    /// `true` if the whole set exceeded its budget and was abandoned ("DNF").
    pub dnf: bool,
}

impl SetSummary {
    /// Average per-query processing time in milliseconds (0 when nothing ran).
    pub fn average_ms(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_time.as_secs_f64() * 1000.0 / self.queries as f64
        }
    }
}

/// Configuration of the experiment suite: how much the datasets are scaled down and
/// how large / patient the query sets are. The defaults are sized so that the full
/// suite finishes in minutes on a laptop; raise them to approach the paper's setup.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// Scale factor applied to each dataset's published vertex count.
    pub yeast_scale: f64,
    /// Scale factor for the Human analogue.
    pub human_scale: f64,
    /// Scale factor for the WordNet analogue.
    pub wordnet_scale: f64,
    /// Scale factor for the Patents analogue.
    pub patents_scale: f64,
    /// Queries per query set (the paper uses 50,000).
    pub queries_per_set: usize,
    /// Embedding cap per query (the paper uses 10^5).
    pub embedding_limit: u64,
    /// Per-query time limit (the paper uses 1 hour).
    pub per_query_timeout: Duration,
    /// Per-set budget after which the set is declared DNF (the paper: 3 hours per 100
    /// queries).
    pub per_set_budget: Duration,
    /// "Slow" threshold (paper: 1 second).
    pub slow_threshold: Duration,
    /// "Very slow" threshold (paper: 1 minute).
    pub very_slow_threshold: Duration,
    /// Seed for query generation.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            yeast_scale: 0.20,
            human_scale: 0.06,
            wordnet_scale: 0.01,
            patents_scale: 0.0006,
            queries_per_set: 25,
            embedding_limit: 100_000,
            per_query_timeout: Duration::from_millis(500),
            per_set_budget: Duration::from_secs(20),
            slow_threshold: Duration::from_millis(20),
            very_slow_threshold: Duration::from_millis(200),
            seed: 2023,
        }
    }
}

impl SuiteConfig {
    /// A very small configuration used by unit tests and CI smoke runs.
    pub fn smoke() -> Self {
        SuiteConfig {
            yeast_scale: 0.08,
            human_scale: 0.02,
            wordnet_scale: 0.004,
            patents_scale: 0.0002,
            queries_per_set: 4,
            embedding_limit: 10_000,
            per_query_timeout: Duration::from_millis(200),
            per_set_budget: Duration::from_secs(5),
            slow_threshold: Duration::from_millis(10),
            very_slow_threshold: Duration::from_millis(100),
            seed: 7,
        }
    }

    /// Generates the data graph of `dataset` at this configuration's scale.
    pub fn data_graph(&self, dataset: Dataset) -> Graph {
        let scale = match dataset {
            Dataset::Yeast => self.yeast_scale,
            Dataset::Human => self.human_scale,
            Dataset::WordNet => self.wordnet_scale,
            Dataset::Patents => self.patents_scale,
        };
        dataset.generate(scale).graph
    }

    /// Generates the data graph of `dataset` and opens a prepared-data session over
    /// it — the once-per-dataset step every method of an experiment shares.
    pub fn session(&self, dataset: Dataset) -> Session {
        Session::new(self.data_graph(dataset))
    }

    /// Generates a query set for `dataset` (data graph passed in to avoid regenerating
    /// it for every set).
    pub fn query_set(&self, data: &Graph, spec: QuerySetSpec) -> Vec<Graph> {
        generate_query_set(data, spec, self.queries_per_set, self.seed)
    }
}

/// The session-level engine and configuration a harness [`Method`] maps to.
fn method_request(method: Method, config: &SuiteConfig) -> (Engine, GupConfig) {
    let limits = SearchLimits {
        max_embeddings: Some(config.embedding_limit),
        time_limit: Some(config.per_query_timeout),
        ..SearchLimits::UNLIMITED
    };
    match method {
        Method::Gup | Method::GupWith(_) | Method::GupReservationOnly(_) => {
            let (features, r) = match method {
                Method::Gup => (PruningFeatures::ALL, Some(3)),
                Method::GupWith(f) => (f, Some(3)),
                Method::GupReservationOnly(r) => (PruningFeatures::RESERVATION_ONLY, r),
                _ => unreachable!(),
            };
            let gup_config = GupConfig {
                features,
                reservation_size_limit: r,
                limits,
                ..GupConfig::default()
            };
            (Engine::Gup, gup_config)
        }
        Method::Daf => (
            Engine::Daf,
            GupConfig {
                limits,
                ..GupConfig::default()
            },
        ),
        Method::GqlG => (
            Engine::Gql,
            GupConfig {
                limits,
                ..GupConfig::default()
            },
        ),
        Method::GqlR => (
            Engine::Ri,
            GupConfig {
                limits,
                ..GupConfig::default()
            },
        ),
        Method::RapidMatchLike => (
            Engine::Join,
            GupConfig {
                limits,
                ..GupConfig::default()
            },
        ),
    }
}

/// Runs `method` on a single query through `session`'s shared prepared data, under
/// the suite's per-query limits.
pub fn run_method(
    method: Method,
    query: &Graph,
    session: &Session,
    config: &SuiteConfig,
) -> RunRecord {
    let start = Instant::now();
    let (engine, gup_config) = method_request(method, config);
    // The harness only aggregates counts, so it streams through a counting sink —
    // nothing is materialized anywhere.
    let record = match session
        .query(query)
        .method(engine)
        .config(gup_config)
        .run_with_sink(&mut CountOnly::new())
    {
        Ok(stats) => RunRecord {
            embeddings: stats.embeddings,
            recursions: stats.recursions,
            futile_recursions: stats.futile_recursions,
            elapsed: Duration::ZERO,
            timed_out: stats.hit_time_limit,
        },
        Err(_) => RunRecord::default(),
    };
    RunRecord {
        elapsed: start.elapsed(),
        ..record
    }
}

/// Runs `method` over a whole query set against `session`'s shared prepared data,
/// applying the paper-style per-set budget: when the accumulated time exceeds the
/// budget the set is marked DNF and abandoned.
pub fn run_query_set(
    method: Method,
    queries: &[Graph],
    session: &Session,
    config: &SuiteConfig,
) -> SetSummary {
    let mut summary = SetSummary::default();
    for query in queries {
        if summary.total_time > config.per_set_budget {
            summary.dnf = true;
            break;
        }
        let record = run_method(method, query, session, config);
        summary.queries += 1;
        summary.total_time += record.elapsed;
        summary.total_recursions += record.recursions;
        summary.total_futile += record.futile_recursions;
        if record.elapsed >= config.slow_threshold {
            summary.over_slow += 1;
        }
        if record.elapsed >= config.very_slow_threshold {
            summary.over_very_slow += 1;
        }
        if record.timed_out {
            summary.timed_out += 1;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::fixtures;

    #[test]
    fn method_names_are_stable() {
        assert_eq!(Method::Gup.name(), "GuP");
        assert_eq!(Method::Daf.name(), "DAF");
        assert_eq!(Method::RapidMatchLike.name(), "RM");
        assert_eq!(Method::GupReservationOnly(Some(3)).name(), "GuP[r=3]");
        assert_eq!(Method::GupReservationOnly(None).name(), "GuP[r=inf]");
        assert_eq!(
            Method::GupWith(PruningFeatures::NONE).name(),
            "GuP[Baseline]"
        );
        assert_eq!(Method::HEADLINE.len(), 5);
    }

    #[test]
    fn all_methods_agree_on_the_paper_example() {
        let (q, d) = fixtures::paper_example();
        let config = SuiteConfig::smoke();
        let session = Session::new(d);
        let mut counts = Vec::new();
        for m in Method::HEADLINE {
            let r = run_method(m, &q, &session, &config);
            counts.push(r.embeddings);
            assert!(!r.timed_out);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert!(counts[0] > 0);
    }

    #[test]
    fn query_set_runner_aggregates() {
        let config = SuiteConfig::smoke();
        let session = config.session(Dataset::Yeast);
        let spec = QuerySetSpec::PAPER_SETS[0]; // 8S
        let queries = config.query_set(session.data(), spec);
        assert!(!queries.is_empty());
        let summary = run_query_set(Method::Gup, &queries, &session, &config);
        assert_eq!(summary.queries, queries.len());
        assert!(summary.total_recursions > 0);
        assert!(summary.average_ms() >= 0.0);
    }

    #[test]
    fn empty_query_set_gives_empty_summary() {
        let config = SuiteConfig::smoke();
        let session = config.session(Dataset::Yeast);
        let summary = run_query_set(Method::Gup, &[], &session, &config);
        assert_eq!(summary.queries, 0);
        assert_eq!(summary.average_ms(), 0.0);
        assert!(!summary.dnf);
    }
}
