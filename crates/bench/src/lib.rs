//! # gup-bench
//!
//! Benchmark harness that regenerates every table and figure of the GuP evaluation
//! (§4 of the paper) on the synthetic dataset analogues from `gup-workloads`.
//!
//! * [`harness`] — a uniform way to run GuP, its ablations, and the baselines over a
//!   (query, data) pair and over whole query sets, with per-query time limits and
//!   per-set DNF ("did not finish") accounting like the paper's.
//! * [`experiments`] — one function per table/figure: Table 2, Figures 4–10, Table 3.
//!   Each returns plain text (and TSV rows) that the `experiments` binary prints.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p gup-bench --bin experiments -- all
//! ```

pub mod experiments;
pub mod harness;

pub use harness::{Method, RunRecord, SetSummary, SuiteConfig};
