//! Command-line entry point that regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p gup-bench --bin experiments -- all
//! cargo run --release -p gup-bench --bin experiments -- fig9 --queries 50
//! ```
//!
//! Available experiments: `table2`, `fig4`, `fig5`, `fig6`, `fig7`, `fig8`, `fig9`,
//! `table3`, `fig10`, `persist` (index save/load vs. cold preparation, not part of
//! `all`), `all`. Options: `--scale <f64>` (multiplies every dataset scale),
//! `--queries <n>` (queries per set), `--timeout-ms <n>` (per-query limit),
//! `--threads <n>` (cap for the Figure-10 sweep), `--smoke` (tiny CI configuration).
//! Reports are printed to stdout and copied to `target/experiments/<name>.txt`.

use gup_bench::experiments;
use gup_bench::harness::SuiteConfig;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut config = SuiteConfig::default();
    let mut max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => config = SuiteConfig::smoke(),
            "--scale" => {
                i += 1;
                let f: f64 = parse(&args, i, "--scale");
                config.yeast_scale *= f;
                config.human_scale *= f;
                config.wordnet_scale *= f;
                config.patents_scale *= f;
            }
            "--queries" => {
                i += 1;
                config.queries_per_set = parse(&args, i, "--queries");
            }
            "--timeout-ms" => {
                i += 1;
                let ms: u64 = parse(&args, i, "--timeout-ms");
                config.per_query_timeout = Duration::from_millis(ms);
            }
            "--set-budget-ms" => {
                i += 1;
                let ms: u64 = parse(&args, i, "--set-budget-ms");
                config.per_set_budget = Duration::from_millis(ms);
            }
            "--threads" => {
                i += 1;
                max_threads = parse(&args, i, "--threads");
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                print_usage();
                std::process::exit(2);
            }
            name => which.push(name.to_string()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_string());
    }

    for name in which {
        let report = run_one(&name, &config, max_threads);
        println!("{report}");
        if let Err(e) = save_report(&name, &report) {
            eprintln!("warning: could not save report for {name}: {e}");
        }
    }
}

fn run_one(name: &str, config: &SuiteConfig, max_threads: usize) -> String {
    match name {
        "all" => experiments::run_all(config, max_threads),
        "table2" | "fig4" | "fig5" | "fig6" => {
            let headline = experiments::collect_headline(config);
            match name {
                "table2" => experiments::table2(&headline),
                "fig4" => experiments::fig4(&headline),
                "fig5" => experiments::fig5(&headline),
                _ => experiments::fig6(&headline),
            }
        }
        "fig7" => experiments::fig7(config),
        "fig8" => experiments::fig8(config),
        "fig9" => experiments::fig9(config),
        "table3" => experiments::table3(config),
        "fig10" => experiments::fig10(config, max_threads),
        "persist" => experiments::persist(config),
        other => {
            eprintln!("unknown experiment '{other}'");
            print_usage();
            std::process::exit(2);
        }
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a numeric argument");
        std::process::exit(2);
    })
}

fn save_report(name: &str, report: &str) -> std::io::Result<()> {
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(format!("{name}.txt")), report)
}

fn print_usage() {
    eprintln!(
        "usage: experiments [table2|fig4|fig5|fig6|fig7|fig8|fig9|table3|fig10|persist|all]...\n\
         options: --smoke --scale <f> --queries <n> --timeout-ms <n> --set-budget-ms <n> --threads <n>"
    );
}
