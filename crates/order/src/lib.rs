//! # gup-order
//!
//! Matching-order optimizers.
//!
//! The order in which query vertices are assigned determines the size of the search
//! space (paper §2.1, "Optimization of matching order"). GuP itself is agnostic to the
//! order ("guard-based pruning can be used in combination with arbitrary existing
//! approaches", §3.1); the paper's implementation uses the VC order of Sun & Luo, while
//! its baselines use the GraphQL and RI orders. This crate provides deterministic
//! implementations of those three families plus a plain connected BFS order, all of
//! which produce *connected* orders (every vertex except the first has an earlier
//! neighbor), the property the backtracking engine requires.
//!
//! ```
//! use gup_graph::fixtures::paper_example;
//! use gup_order::{compute_order, OrderingStrategy};
//!
//! let (query, _data) = paper_example();
//! // Pretend every query vertex has 3 candidates.
//! let order = compute_order(&query, &[3, 3, 3, 3, 3], OrderingStrategy::VcStyle).unwrap();
//! assert_eq!(order.len(), query.vertex_count());
//! ```

use gup_graph::algo::two_core;
use gup_graph::{Graph, VertexId};

/// The ordering heuristics available to the matchers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OrderingStrategy {
    /// Plain BFS from the vertex with the fewest candidates. The simplest connected
    /// order; used by the "Baseline" configuration of the evaluation.
    ConnectedBfs,
    /// GraphQL-style greedy order: repeatedly pick the frontier vertex with the fewest
    /// candidates (GQL-G in the paper's experiments).
    GqlStyle,
    /// RI-style order: maximize the number of already-ordered neighbors, breaking ties
    /// by degree (GQL-R / RI in the paper's experiments).
    RiStyle,
    /// VC-style order (Sun & Luo, "Subgraph Matching with Effective Matching Order and
    /// Indexing"): prefer 2-core vertices and many backward connections, then few
    /// candidates. This is the order GuP's reference implementation uses.
    VcStyle,
}

impl OrderingStrategy {
    /// All strategies, for sweeps and tests.
    pub const ALL: [OrderingStrategy; 4] = [
        OrderingStrategy::ConnectedBfs,
        OrderingStrategy::GqlStyle,
        OrderingStrategy::RiStyle,
        OrderingStrategy::VcStyle,
    ];

    /// Short, stable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            OrderingStrategy::ConnectedBfs => "bfs",
            OrderingStrategy::GqlStyle => "gql",
            OrderingStrategy::RiStyle => "ri",
            OrderingStrategy::VcStyle => "vc",
        }
    }
}

/// Error returned when no connected matching order exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OrderingError {
    /// The query graph is disconnected: some vertex can never gain an earlier
    /// neighbor, so no connected order exists for any strategy.
    Disconnected {
        /// A vertex outside the component the order started in.
        vertex: VertexId,
    },
}

impl std::fmt::Display for OrderingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderingError::Disconnected { vertex } => write!(
                f,
                "query graph is disconnected (vertex {vertex} is unreachable); no connected matching order exists"
            ),
        }
    }
}

impl std::error::Error for OrderingError {}

/// Computes a connected matching order over `query`.
///
/// `candidate_sizes[u]` is the size of the candidate set `|C(u)|` of query vertex `u`
/// (from LDF/NLF or a full candidate space); heuristics that do not use candidate sizes
/// ignore it. The result is a permutation of the query vertices: `order[i]` is the
/// query vertex that becomes `u_i`.
///
/// A disconnected query returns [`OrderingError::Disconnected`] — no strategy can
/// produce a connected order for it, and silently padding the order with unreachable
/// vertices would hand a non-connected order to any caller that bypasses
/// `QueryGraph::new` validation.
///
/// # Panics
///
/// Panics if `candidate_sizes.len() != query.vertex_count()` or the query is empty.
pub fn compute_order(
    query: &Graph,
    candidate_sizes: &[usize],
    strategy: OrderingStrategy,
) -> Result<Vec<VertexId>, OrderingError> {
    assert_eq!(
        candidate_sizes.len(),
        query.vertex_count(),
        "candidate_sizes must have one entry per query vertex"
    );
    assert!(query.vertex_count() > 0, "cannot order an empty query");
    match strategy {
        OrderingStrategy::ConnectedBfs => connected_bfs_order(query, candidate_sizes),
        OrderingStrategy::GqlStyle => greedy_order(query, candidate_sizes, Heuristic::Gql),
        OrderingStrategy::RiStyle => greedy_order(query, candidate_sizes, Heuristic::Ri),
        OrderingStrategy::VcStyle => greedy_order(query, candidate_sizes, Heuristic::Vc),
    }
}

/// Returns `true` if `order` is a connected permutation of the query vertices: every
/// vertex except the first has at least one neighbor earlier in the order.
pub fn is_connected_order(query: &Graph, order: &[VertexId]) -> bool {
    let n = query.vertex_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if (v as usize) >= n || pos[v as usize] != usize::MAX {
            return false;
        }
        pos[v as usize] = i;
    }
    for (i, &v) in order.iter().enumerate().skip(1) {
        if !query.neighbors(v).iter().any(|&w| pos[w as usize] < i) {
            return false;
        }
    }
    true
}

fn connected_bfs_order(
    query: &Graph,
    candidate_sizes: &[usize],
) -> Result<Vec<VertexId>, OrderingError> {
    let n = query.vertex_count();
    let root = (0..n as VertexId)
        .min_by_key(|&v| (candidate_sizes[v as usize], v))
        .expect("non-empty query");
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[root as usize] = true;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in query.neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    if let Some(v) = (0..n as VertexId).find(|&v| !visited[v as usize]) {
        return Err(OrderingError::Disconnected { vertex: v });
    }
    Ok(order)
}

#[derive(Clone, Copy)]
enum Heuristic {
    Gql,
    Ri,
    Vc,
}

/// Greedy frontier-based ordering shared by the GQL / RI / VC styles; only the scoring
/// of frontier vertices differs.
fn greedy_order(
    query: &Graph,
    candidate_sizes: &[usize],
    heuristic: Heuristic,
) -> Result<Vec<VertexId>, OrderingError> {
    let n = query.vertex_count();
    let core = two_core(query);
    let mut ordered = vec![false; n];
    let mut back_links = vec![0usize; n]; // neighbors already ordered
    let mut order = Vec::with_capacity(n);

    // Root selection.
    let root = match heuristic {
        Heuristic::Gql => (0..n as VertexId)
            .min_by_key(|&v| {
                (
                    candidate_sizes[v as usize],
                    std::cmp::Reverse(query.degree(v)),
                    v,
                )
            })
            .unwrap(),
        Heuristic::Ri => (0..n as VertexId)
            .max_by_key(|&v| (query.degree(v), std::cmp::Reverse(v)))
            .unwrap(),
        Heuristic::Vc => (0..n as VertexId)
            .min_by(|&a, &b| {
                let score = |v: VertexId| {
                    candidate_sizes[v as usize] as f64 / query.degree(v).max(1) as f64
                };
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| core[b as usize].cmp(&core[a as usize]))
                    .then(a.cmp(&b))
            })
            .unwrap(),
    };

    let select = |v: VertexId, ordered: &mut [bool], back_links: &mut [usize]| {
        ordered[v as usize] = true;
        for &w in query.neighbors(v) {
            back_links[w as usize] += 1;
        }
    };
    select(root, &mut ordered, &mut back_links);
    order.push(root);

    while order.len() < n {
        // Frontier = unordered vertices adjacent to the ordered prefix.
        let frontier: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| !ordered[v as usize] && back_links[v as usize] > 0)
            .collect();
        let next = if frontier.is_empty() {
            // No unordered vertex touches the ordered prefix: the query is
            // disconnected and no connected order exists.
            let v = (0..n as VertexId).find(|&v| !ordered[v as usize]).unwrap();
            return Err(OrderingError::Disconnected { vertex: v });
        } else {
            match heuristic {
                Heuristic::Gql => frontier
                    .into_iter()
                    .min_by_key(|&v| {
                        (
                            candidate_sizes[v as usize],
                            std::cmp::Reverse(back_links[v as usize]),
                            v,
                        )
                    })
                    .unwrap(),
                Heuristic::Ri => frontier
                    .into_iter()
                    .max_by_key(|&v| {
                        (
                            back_links[v as usize],
                            query.degree(v),
                            std::cmp::Reverse(v),
                        )
                    })
                    .unwrap(),
                Heuristic::Vc => frontier
                    .into_iter()
                    .max_by_key(|&v| {
                        (
                            back_links[v as usize],
                            core[v as usize] as usize,
                            std::cmp::Reverse(candidate_sizes[v as usize]),
                            std::cmp::Reverse(v),
                        )
                    })
                    .unwrap(),
            }
        };
        select(next, &mut ordered, &mut back_links);
        order.push(next);
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;

    fn sizes(n: usize, s: usize) -> Vec<usize> {
        vec![s; n]
    }

    #[test]
    fn all_strategies_produce_connected_permutations() {
        let (q, _d) = fixtures::paper_example();
        for &s in &OrderingStrategy::ALL {
            let order = compute_order(&q, &sizes(5, 4), s).unwrap();
            assert!(is_connected_order(&q, &order), "strategy {:?}", s);
        }
    }

    #[test]
    fn connected_on_various_shapes() {
        let shapes = [
            fixtures::triangle_query(),
            fixtures::clique4(0),
            fixtures::path(7, 0),
            graph_from_edges(
                &[0, 1, 2, 3, 0, 1],
                &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
            ),
        ];
        for q in &shapes {
            let cand = sizes(q.vertex_count(), 10);
            for &s in &OrderingStrategy::ALL {
                let order = compute_order(q, &cand, s).unwrap();
                assert!(is_connected_order(q, &order), "strategy {:?} on {:?}", s, q);
            }
        }
    }

    #[test]
    fn gql_prefers_small_candidate_sets_first() {
        let (q, _d) = fixtures::paper_example();
        let cand = vec![50, 40, 1, 30, 20];
        let order = compute_order(&q, &cand, OrderingStrategy::GqlStyle).unwrap();
        assert_eq!(order[0], 2);
    }

    #[test]
    fn vc_root_uses_candidates_per_degree() {
        // Star center has huge degree; with equal candidate counts it should be picked
        // first by the VC heuristic (lowest candidates/degree ratio).
        let star = graph_from_edges(&[0, 1, 1, 1, 1], &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let order = compute_order(&star, &sizes(5, 10), OrderingStrategy::VcStyle).unwrap();
        assert_eq!(order[0], 0);
    }

    #[test]
    fn ri_prefers_dense_backward_connections() {
        // Square with one diagonal: 0-1-2-3-0 plus 0-2. RI should order the triangle
        // vertices (0,1,2 or 0,2,x) before the degree-2 corner 3 whenever possible.
        let q = graph_from_edges(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let order = compute_order(&q, &sizes(4, 10), OrderingStrategy::RiStyle).unwrap();
        assert!(is_connected_order(&q, &order));
        let pos3 = order.iter().position(|&v| v == 3).unwrap();
        assert_eq!(pos3, 3, "the lowest-connectivity vertex should come last");
    }

    #[test]
    fn single_vertex_query_order() {
        let q = graph_from_edges(&[5], &[]);
        for &s in &OrderingStrategy::ALL {
            assert_eq!(compute_order(&q, &[1], s).unwrap(), vec![0]);
        }
    }

    #[test]
    fn is_connected_order_rejects_bad_orders() {
        let q = fixtures::path(4, 0);
        assert!(is_connected_order(&q, &[0, 1, 2, 3]));
        assert!(is_connected_order(&q, &[2, 1, 3, 0]));
        // Jumping to a non-adjacent vertex breaks connectivity.
        assert!(!is_connected_order(&q, &[0, 2, 1, 3]));
        // Not a permutation.
        assert!(!is_connected_order(&q, &[0, 0, 1, 2]));
        assert!(!is_connected_order(&q, &[0, 1, 2]));
        assert!(!is_connected_order(&q, &[0, 1, 2, 9]));
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(OrderingStrategy::VcStyle.name(), "vc");
        assert_eq!(OrderingStrategy::GqlStyle.name(), "gql");
        assert_eq!(OrderingStrategy::RiStyle.name(), "ri");
        assert_eq!(OrderingStrategy::ConnectedBfs.name(), "bfs");
    }

    #[test]
    #[should_panic(expected = "one entry per query vertex")]
    fn mismatched_candidate_sizes_panic() {
        let q = fixtures::triangle_query();
        let _ = compute_order(&q, &[1, 2], OrderingStrategy::GqlStyle);
    }

    /// A disconnected query must be a typed error from every strategy — never a
    /// silently padded, non-connected "order" a validation-bypassing caller could
    /// hand to the backtracking engine.
    #[test]
    fn disconnected_queries_are_rejected_by_every_strategy() {
        let q = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        for &s in &OrderingStrategy::ALL {
            let err = compute_order(&q, &sizes(4, 3), s).unwrap_err();
            let OrderingError::Disconnected { vertex } = err;
            assert!(vertex == 2 || vertex == 3, "strategy {s:?}: {vertex}");
        }
        // An isolated vertex (no edges at all) is equally rejected.
        let isolated = graph_from_edges(&[0, 0], &[]);
        for &s in &OrderingStrategy::ALL {
            assert!(
                compute_order(&isolated, &sizes(2, 1), s).is_err(),
                "strategy {s:?}"
            );
        }
    }
}
