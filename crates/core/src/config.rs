//! Configuration of the GuP matcher.

use gup_candidate::FilterConfig;
use gup_order::OrderingStrategy;
use std::time::{Duration, Instant};

/// Which pruning techniques are enabled. The evaluation's ablation (Fig. 9 of the
/// paper) toggles these: "Baseline", "R", "R+NV", "R+NV+NE", and "All" (= everything
/// plus backjumping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruningFeatures {
    /// Reservation guards (§3.2).
    pub reservation_guards: bool,
    /// Nogood guards on candidate vertices (§3.3.2).
    pub nogood_vertex_guards: bool,
    /// Nogood guards on candidate edges (§3.3.3).
    pub nogood_edge_guards: bool,
    /// Backjumping driven by discovered nogoods (Algorithm 2, line 14).
    pub backjumping: bool,
}

impl PruningFeatures {
    /// Everything enabled — the full GuP algorithm ("All" in Fig. 9).
    pub const ALL: PruningFeatures = PruningFeatures {
        reservation_guards: true,
        nogood_vertex_guards: true,
        nogood_edge_guards: true,
        backjumping: true,
    };

    /// Conventional backtracking over the candidate space with no guard and no
    /// backjumping ("Baseline" in Fig. 9).
    pub const NONE: PruningFeatures = PruningFeatures {
        reservation_guards: false,
        nogood_vertex_guards: false,
        nogood_edge_guards: false,
        backjumping: false,
    };

    /// Only reservation guards ("R").
    pub const RESERVATION_ONLY: PruningFeatures = PruningFeatures {
        reservation_guards: true,
        ..PruningFeatures::NONE
    };

    /// Reservation + vertex nogood guards ("R+NV").
    pub const RESERVATION_AND_NV: PruningFeatures = PruningFeatures {
        reservation_guards: true,
        nogood_vertex_guards: true,
        ..PruningFeatures::NONE
    };

    /// Reservation + vertex + edge nogood guards, no backjumping ("R+NV+NE").
    pub const RESERVATION_NV_NE: PruningFeatures = PruningFeatures {
        reservation_guards: true,
        nogood_vertex_guards: true,
        nogood_edge_guards: true,
        backjumping: false,
    };

    /// Stable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match (
            self.reservation_guards,
            self.nogood_vertex_guards,
            self.nogood_edge_guards,
            self.backjumping,
        ) {
            (false, false, false, false) => "Baseline",
            (true, false, false, false) => "R",
            (true, true, false, false) => "R+NV",
            (true, true, true, false) => "R+NV+NE",
            (true, true, true, true) => "All",
            _ => "custom",
        }
    }
}

impl Default for PruningFeatures {
    fn default() -> Self {
        PruningFeatures::ALL
    }
}

/// Limits that terminate a search early. Mirrors the paper's termination conditions
/// (§4.1): a cap on the number of reported embeddings (10^5 in the paper) and a
/// per-query time limit.
#[derive(Clone, Copy, Debug)]
pub struct SearchLimits {
    /// Stop after this many embeddings have been found (`None` = unlimited).
    pub max_embeddings: Option<u64>,
    /// Stop after this wall-clock duration (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// Stop after this many recursive calls (`None` = unlimited). A robustness valve
    /// for tests and CI; the paper uses only the two limits above.
    pub max_recursions: Option<u64>,
    /// Absolute deadline. When set it takes precedence over `time_limit`; the
    /// parallel driver hoists `time_limit` into a deadline once so that per-worker
    /// engines reused across many tasks share one clock instead of restarting their
    /// time budget per task.
    pub deadline: Option<Instant>,
}

impl SearchLimits {
    /// No limits at all.
    pub const UNLIMITED: SearchLimits = SearchLimits {
        max_embeddings: None,
        time_limit: None,
        max_recursions: None,
        deadline: None,
    };

    /// The paper's defaults: 10^5 embeddings, one hour per query.
    pub fn paper_defaults() -> Self {
        SearchLimits {
            max_embeddings: Some(100_000),
            time_limit: Some(Duration::from_secs(3600)),
            ..SearchLimits::UNLIMITED
        }
    }

    /// The absolute deadline of a search starting now: `deadline` when set,
    /// otherwise now + `time_limit`.
    pub fn effective_deadline(&self) -> Option<Instant> {
        self.deadline
            .or_else(|| self.time_limit.map(gup_graph::deadline::deadline_after))
    }
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_embeddings: Some(100_000),
            ..SearchLimits::UNLIMITED
        }
    }
}

/// Knobs of the work-stealing parallel driver (§3.5.2 of the paper: recursive
/// subtree splitting with work stealing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Only search frames at depth `< max_split_depth` may be split off and donated
    /// to idle workers. Shallow frames make the biggest tasks; deep splits produce
    /// tiny tasks whose replay overhead outweighs the balancing benefit.
    pub max_split_depth: usize,
    /// Steal granularity: a frame is only split when at least this many unexplored
    /// sibling candidates remain in it (half of them are donated).
    pub min_split_candidates: usize,
    /// Number of root-level chunks seeded per worker before the search starts; work
    /// stealing rebalances from there.
    pub seed_chunks_per_worker: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            max_split_depth: 32,
            min_split_candidates: 2,
            seed_chunks_per_worker: 4,
        }
    }
}

/// Full configuration of a GuP matcher instance.
#[derive(Clone, Debug)]
pub struct GupConfig {
    /// Candidate-filtering configuration (LDF/NLF/DAG-DP passes).
    pub filter: FilterConfig,
    /// Matching-order heuristic. The paper uses the VC order.
    pub ordering: OrderingStrategy,
    /// Maximum size `r` of a reservation guard (§3.2.2). The paper recommends 3;
    /// `None` means unlimited (the "r = ∞" configuration of Fig. 8).
    pub reservation_size_limit: Option<usize>,
    /// Which pruning techniques are active.
    pub features: PruningFeatures,
    /// Early-termination limits.
    pub limits: SearchLimits,
    /// Work-stealing knobs of the parallel driver.
    pub parallel: ParallelConfig,
    /// Whether found embeddings are materialized (`true`) or only counted (`false`).
    pub collect_embeddings: bool,
}

impl Default for GupConfig {
    fn default() -> Self {
        GupConfig {
            filter: FilterConfig::default(),
            ordering: OrderingStrategy::VcStyle,
            reservation_size_limit: Some(3),
            features: PruningFeatures::ALL,
            limits: SearchLimits::default(),
            parallel: ParallelConfig::default(),
            collect_embeddings: false,
        }
    }
}

impl GupConfig {
    /// Convenience: default configuration but with embeddings materialized.
    pub fn collecting() -> Self {
        GupConfig {
            collect_embeddings: true,
            ..GupConfig::default()
        }
    }

    /// Convenience: default configuration with the given embedding cap.
    pub fn with_embedding_limit(limit: u64) -> Self {
        GupConfig {
            limits: SearchLimits {
                max_embeddings: Some(limit),
                ..SearchLimits::default()
            },
            ..GupConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_labels() {
        assert_eq!(PruningFeatures::NONE.label(), "Baseline");
        assert_eq!(PruningFeatures::RESERVATION_ONLY.label(), "R");
        assert_eq!(PruningFeatures::RESERVATION_AND_NV.label(), "R+NV");
        assert_eq!(PruningFeatures::RESERVATION_NV_NE.label(), "R+NV+NE");
        assert_eq!(PruningFeatures::ALL.label(), "All");
        let odd = PruningFeatures {
            reservation_guards: false,
            nogood_vertex_guards: true,
            nogood_edge_guards: false,
            backjumping: false,
        };
        assert_eq!(odd.label(), "custom");
    }

    #[test]
    fn defaults_match_paper_recommendations() {
        let cfg = GupConfig::default();
        assert_eq!(cfg.reservation_size_limit, Some(3));
        assert_eq!(cfg.features, PruningFeatures::ALL);
        assert_eq!(cfg.limits.max_embeddings, Some(100_000));
        assert!(!cfg.collect_embeddings);
        let paper = SearchLimits::paper_defaults();
        assert_eq!(paper.time_limit, Some(Duration::from_secs(3600)));
    }

    #[test]
    fn convenience_constructors() {
        assert!(GupConfig::collecting().collect_embeddings);
        assert_eq!(
            GupConfig::with_embedding_limit(7).limits.max_embeddings,
            Some(7)
        );
        assert_eq!(SearchLimits::UNLIMITED.max_embeddings, None);
    }

    #[test]
    fn effective_deadline_prefers_explicit_deadline() {
        assert!(SearchLimits::UNLIMITED.effective_deadline().is_none());
        let from_limit = SearchLimits {
            time_limit: Some(Duration::from_secs(60)),
            ..SearchLimits::UNLIMITED
        };
        assert!(from_limit.effective_deadline().is_some());
        let fixed = Instant::now() + Duration::from_secs(5);
        let hoisted = SearchLimits {
            time_limit: Some(Duration::from_secs(60)),
            deadline: Some(fixed),
            ..SearchLimits::UNLIMITED
        };
        assert_eq!(hoisted.effective_deadline(), Some(fixed));
    }

    #[test]
    fn parallel_defaults_are_sane() {
        let p = ParallelConfig::default();
        assert!(p.min_split_candidates >= 2);
        assert!(p.max_split_depth > 0);
        assert!(p.seed_chunks_per_worker >= 1);
    }
}
