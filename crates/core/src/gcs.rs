//! The guarded candidate space (GCS, §3.1 of the paper).
//!
//! The GCS bundles everything the backtracking search needs:
//!
//! * the query renumbered into the matching order ([`OrderedQuery`]),
//! * the candidate space (candidate vertices + candidate edges), re-indexed into the
//!   same order,
//! * the reservation guards generated ahead of the search, and
//! * the (initially empty) nogood-guard stores that the search fills on the fly.
//!
//! Construction covers steps (1) and (2) of the paper's pipeline; step (3), the search
//! itself, lives in [`crate::search`].

use crate::config::GupConfig;
use crate::guards::{EdgeGuardStore, ReservationGuard, VertexGuardStore};
use crate::reservation::{generate_reservation_guards, reservation_heap_bytes};
use crate::stats::MemoryReport;
use gup_candidate::CandidateSpace;
use gup_graph::query::{OrderedQuery, QueryGraphError};
use gup_graph::{Graph, PreparedData, QueryGraph, VertexId};

/// Errors produced while building a GCS.
#[derive(Debug)]
pub enum GupError {
    /// The query graph is not usable (empty, too large, or disconnected).
    InvalidQuery(QueryGraphError),
    /// The configured absolute deadline ([`SearchLimits::deadline`]) expired during
    /// the candidate filter pass: the candidate space was abandoned instead of being
    /// silently truncated. The session layer reports this as
    /// `SearchStats::hit_time_limit`, exactly like a deadline that fires in-search.
    ///
    /// [`SearchLimits::deadline`]: crate::config::SearchLimits::deadline
    FilterTimeout,
}

impl std::fmt::Display for GupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GupError::InvalidQuery(e) => write!(f, "invalid query graph: {e}"),
            GupError::FilterTimeout => {
                write!(f, "time budget expired during the candidate filter pass")
            }
        }
    }
}

impl std::error::Error for GupError {}

impl From<QueryGraphError> for GupError {
    fn from(e: QueryGraphError) -> Self {
        GupError::InvalidQuery(e)
    }
}

/// The guarded candidate space, generic over the bitset width `W` of its ordered
/// query (64 query vertices per word; `W = 1` is the default fast path).
#[derive(Clone, Debug)]
pub struct Gcs<const W: usize = 1> {
    query: OrderedQuery<W>,
    space: CandidateSpace,
    reservations: Vec<Vec<ReservationGuard>>,
    data_vertex_count: usize,
}

impl<const W: usize> Gcs<W> {
    /// Builds the GCS for `query` against `data` under `config`. Legacy one-shot
    /// adapter: shares every step with [`Gcs::build_prepared`] except the initial
    /// filter pass, which runs the borrow-based scratch-buffer variant so that a
    /// single query never pays a data-graph clone or index build. Batched callers
    /// should prepare once ([`PreparedData`]) and share it across queries; both
    /// paths produce identical spaces (pinned by `tests/session.rs`).
    pub fn build(query: &Graph, data: &Graph, config: &GupConfig) -> Result<Self, GupError> {
        let validated = Self::validated_for_width(query)?;
        // The filter pass honors the hoisted absolute deadline (when one is set) at
        // a work-bounded cadence, so a tight budget cannot be blown before the
        // search starts. `time_limit` alone is not hoisted here: its clock has
        // always started at the search, and the session layer (which owns the
        // end-to-end budget) hoists it into `deadline` before building.
        let space =
            CandidateSpace::build_deadline(query, data, &config.filter, config.limits.deadline)
                .map_err(|_| GupError::FilterTimeout)?;
        Self::assemble(query, validated, data.vertex_count(), space, config)
    }

    /// Builds the GCS for `query` against a prepared data graph under `config`:
    /// candidate filtering (against the precomputed signature arena), matching-order
    /// optimization, re-indexing of the candidate space into the order, and
    /// reservation-guard generation.
    pub fn build_prepared(
        query: &Graph,
        prepared: &PreparedData,
        config: &GupConfig,
    ) -> Result<Self, GupError> {
        let validated = Self::validated_for_width(query)?;
        let space = CandidateSpace::build_prepared_deadline(
            query,
            prepared,
            &config.filter,
            config.limits.deadline,
        )
        .map_err(|_| GupError::FilterTimeout)?;
        Self::assemble(
            query,
            validated,
            prepared.graph().vertex_count(),
            space,
            config,
        )
    }

    /// Validates `query` both globally ([`QueryGraph::new`]) and against this
    /// instantiation's bitset capacity ([`QueryGraph::check_width`]), so a query
    /// wider than `64 * W` is a typed [`QueryGraphError::TooLarge`] (with the
    /// width's own limit) rather than a panic deeper in the bitmask arithmetic.
    /// The session layer dispatches to a sufficient width before ever reaching
    /// this check.
    fn validated_for_width(query: &Graph) -> Result<QueryGraph, GupError> {
        let validated = QueryGraph::new(query.clone())?;
        validated.check_width::<W>()?;
        Ok(validated)
    }

    /// Everything after query validation and the initial candidate filter, shared by
    /// both constructors: matching-order optimization, re-indexing into the order,
    /// and reservation-guard generation.
    fn assemble(
        query: &Graph,
        validated: QueryGraph,
        data_vertex_count: usize,
        space: CandidateSpace,
        config: &GupConfig,
    ) -> Result<Self, GupError> {
        let order = gup_order::compute_order(query, &space.candidate_sizes(), config.ordering)
            // gup-lint: allow(panic_freedom) QueryGraph validation has already rejected disconnected queries on every path into assemble
            .expect("validated queries are connected, so an order always exists");
        let ordered = validated
            .with_order::<W>(&order)
            // gup-lint: allow(panic_freedom) ordering strategies are total over connected queries; a failure here is an ordering bug worth a loud crash
            .expect("ordering strategies always produce connected permutations");
        let space = space.permuted(&order);
        let reservations = if config.features.reservation_guards {
            generate_reservation_guards(
                &ordered,
                &space,
                data_vertex_count,
                config.reservation_size_limit,
            )
        } else {
            // Guards disabled: attach the trivial reservation so that lookups stay
            // uniform; the search skips the matching test entirely in this mode.
            (0..ordered.vertex_count())
                .map(|u| {
                    space
                        .candidates(u)
                        .iter()
                        .map(|&v| ReservationGuard::trivial(v))
                        .collect()
                })
                .collect()
        };
        Ok(Gcs {
            query: ordered,
            space,
            reservations,
            data_vertex_count,
        })
    }

    /// The query renumbered into the matching order.
    #[inline]
    pub fn query(&self) -> &OrderedQuery<W> {
        &self.query
    }

    /// The candidate space, indexed by matching-order vertex ids.
    #[inline]
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// Number of data-graph vertices (used to size per-search scratch arrays).
    #[inline]
    pub fn data_vertex_count(&self) -> usize {
        self.data_vertex_count
    }

    /// The reservation guard attached to candidate `cand_index` of query vertex `u`.
    #[inline]
    pub fn reservation(&self, u: usize, cand_index: u32) -> &ReservationGuard {
        &self.reservations[u][cand_index as usize]
    }

    /// All reservation guards (used by tests and the memory report).
    #[inline]
    pub fn reservations(&self) -> &[Vec<ReservationGuard>] {
        &self.reservations
    }

    /// `true` when some query vertex has no candidates at all (zero embeddings).
    pub fn is_empty(&self) -> bool {
        self.space.any_empty()
    }

    /// Creates an empty nogood-guard store for candidate vertices, shaped after this
    /// GCS. Each (sequential or thread-local) search owns one.
    pub fn new_vertex_guard_store(&self) -> VertexGuardStore<W> {
        VertexGuardStore::new(&self.space.candidate_sizes())
    }

    /// Creates an empty nogood-guard store for candidate edges, shaped after this GCS.
    pub fn new_edge_guard_store(&self) -> EdgeGuardStore<W> {
        let shape: Vec<Vec<usize>> = self
            .space
            .edge_list()
            .iter()
            .enumerate()
            .map(|(eid, &(a, _b))| {
                (0..self.space.candidates(a).len())
                    .map(|ca| self.space.forward_adjacency(eid, ca).len())
                    .collect()
            })
            .collect();
        EdgeGuardStore::new(shape)
    }

    /// Memory breakdown of the GCS plus the given (possibly searched-over) nogood
    /// stores, mirroring Table 3 of the paper.
    pub fn memory_report(
        &self,
        vertex_guards: Option<&VertexGuardStore<W>>,
        edge_guards: Option<&EdgeGuardStore<W>>,
    ) -> MemoryReport {
        MemoryReport {
            candidate_space_bytes: self.space.heap_bytes(),
            reservation_bytes: reservation_heap_bytes(&self.reservations),
            nogood_vertex_bytes: vertex_guards.map_or(0, VertexGuardStore::heap_bytes),
            nogood_edge_bytes: edge_guards.map_or(0, EdgeGuardStore::heap_bytes),
            // The GCS does not retain the session-level prepared index; the matcher
            // (which knows its size) fills this in.
            prepared_index_bytes: 0,
        }
    }

    /// Translates an embedding over matching-order vertex ids back to the original
    /// query-vertex numbering.
    pub fn embedding_in_original_ids(&self, embedding: &[VertexId]) -> Vec<VertexId> {
        self.query.embedding_in_original_ids(embedding)
    }

    /// Allocation-free variant of [`Gcs::embedding_in_original_ids`]: writes into a
    /// caller-owned scratch buffer (used by the streaming sink layer to translate
    /// every reported embedding without a per-embedding allocation).
    pub fn embedding_in_original_ids_into(&self, embedding: &[VertexId], out: &mut Vec<VertexId>) {
        self.query.embedding_in_original_ids_into(embedding, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GupConfig, PruningFeatures};
    use gup_graph::fixtures;

    fn paper_gcs(config: &GupConfig) -> Gcs {
        let (q, d) = fixtures::paper_example();
        Gcs::<1>::build(&q, &d, config).unwrap()
    }

    #[test]
    fn build_succeeds_on_paper_example() {
        let gcs = paper_gcs(&GupConfig::default());
        assert_eq!(gcs.query().vertex_count(), 5);
        assert!(!gcs.is_empty());
        assert_eq!(gcs.data_vertex_count(), 14);
        // Every query vertex has a reservation guard per candidate.
        for u in 0..5 {
            assert_eq!(gcs.reservations()[u].len(), gcs.space().candidates(u).len());
        }
    }

    #[test]
    fn build_rejects_invalid_queries() {
        let (_q, d) = fixtures::paper_example();
        let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let err = Gcs::<1>::build(&disconnected, &d, &GupConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            GupError::InvalidQuery(QueryGraphError::Disconnected)
        ));
        let msg = format!("{err}");
        assert!(msg.contains("invalid query"));
    }

    #[test]
    fn disabled_reservations_fall_back_to_trivial() {
        let cfg = GupConfig {
            features: PruningFeatures::NONE,
            ..GupConfig::default()
        };
        let gcs = paper_gcs(&cfg);
        for u in 0..5 {
            for (ci, g) in gcs.reservations()[u].iter().enumerate() {
                assert!(g.is_trivial_for(gcs.space().candidates(u)[ci]));
            }
        }
    }

    #[test]
    fn guard_stores_are_shaped_after_the_space() {
        let gcs = paper_gcs(&GupConfig::default());
        let vs = gcs.new_vertex_guard_store();
        assert_eq!(vs.present_count(), 0);
        let es = gcs.new_edge_guard_store();
        assert_eq!(es.present_count(), 0);
        let report = gcs.memory_report(Some(&vs), Some(&es));
        assert!(report.candidate_space_bytes > 0);
        assert!(report.reservation_bytes > 0);
        assert!(report.total_bytes() >= report.guard_bytes());
        assert!(report.guard_share_percent() > 0.0);
    }

    #[test]
    fn empty_space_detected() {
        let (_q, d) = fixtures::paper_example();
        // A query label that the data graph does not contain.
        let q = gup_graph::builder::graph_from_edges(&[9, 9], &[(0, 1)]);
        let gcs = Gcs::<1>::build(&q, &d, &GupConfig::default()).unwrap();
        assert!(gcs.is_empty());
    }

    #[test]
    fn embedding_translation_uses_matching_order() {
        let gcs = paper_gcs(&GupConfig::default());
        let emb: Vec<u32> = (0..5).collect();
        let back = gcs.embedding_in_original_ids(&emb);
        // The translation is a permutation of the same values.
        let mut sorted = back.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
