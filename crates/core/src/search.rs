//! Backtracking with guards (paper §3.3–§3.4, Algorithm 2).
//!
//! The engine performs a depth-first search over extensions of partial embeddings,
//! maintaining *local candidate sets* (Definition 3.18) and *bounding sets*
//! (Definition 3.19) incrementally. Each extension is tested for the four conflicts of
//! Definition 3.22 (injectivity, reservation guard, vertex nogood guard, no-candidate);
//! conflicting or fully-explored deadend extensions yield nogoods via the conflict /
//! deadend masks (Definitions 3.23 and 3.26), which are recorded as nogood guards on
//! candidate vertices and candidate edges (search-node encoded, §3.5.1) and drive
//! backjumping (Algorithm 2 line 14).
//!
//! ### Deviation from the paper
//!
//! Nogood guards on edges are discovered with a restricted rule: when a nogood
//! `D = (M ⊕ v)[K]` is found, and the two highest-indexed query vertices of `K` are
//! adjacent in the query (and inside its 2-core), the guard `D` minus those two
//! assignments is recorded on the candidate edge between their assignments. This is a
//! sound special case of Definition 3.30 (any superset of a nogood is a nogood and the
//! domain restriction of Definition 3.16 holds by construction); the paper's full
//! fixed-deadend-mask recursion can discover additional edge guards. See DESIGN.md.
//!
//! ### Task frames and work stealing
//!
//! A search can be packaged as a [`SearchTask`]: a replayable prefix (the candidate
//! index assigned at each depth `< base`) plus an explicit list of unexplored
//! candidates at the base depth. [`SearchEngine::run_task`] replays the prefix
//! (re-running the forward refinements, which is cheap — at most `|V_Q|` merge
//! intersections) and then searches exactly the listed candidates. While a task runs,
//! the engine tracks the unexplored sibling range of every active frame; when a
//! [`SplitHandle`] reports hungry workers, the shallowest splittable frame donates the
//! unexplored half of its range as a fresh task (§3.5.2 of the paper). A frame that
//! donated part of its range can no longer prove the level exhaustively explored, so
//! it reports `NotDeadend` instead of synthesizing a deadend mask from an incomplete
//! candidate enumeration — masks obtained by backjumping stay valid because their
//! claim is independent of which siblings were enumerated locally.
//!
//! One engine per worker lives across *all* tasks the worker executes, so the nogood
//! guard stores persist. Search-node ids keep growing monotonically across tasks,
//! which keeps stale node-encoded guards inert (their node id can never reappear in a
//! later ancestor array) while guards whose encoded prefix is the imaginary root —
//! "this candidate can never be extended, period" — keep pruning in every later task.

use crate::config::{GupConfig, PruningFeatures, SearchLimits};
use crate::gcs::Gcs;
use crate::guards::{EdgeGuardStore, NodeId, NogoodRef, VertexGuardStore};
use crate::stats::SearchStats;
use gup_graph::deadline::DeadlineSampler;
use gup_graph::sink::{CollectAll, EmbeddingReservation, EmbeddingSink, SinkControl};
use gup_graph::{QVSet, VertexId};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One unit of work for the work-stealing driver: replay `prefix` (candidate index
/// per query vertex `0..prefix.len()`), then explore exactly the candidate indices in
/// `candidates` at depth `prefix.len()`.
#[derive(Clone, Debug)]
pub struct SearchTask {
    /// Candidate index assigned to query vertex `k`, for each `k < prefix.len()`.
    pub prefix: Vec<u32>,
    /// Unexplored candidate indices of query vertex `prefix.len()`.
    pub candidates: Vec<u32>,
}

/// Shared hooks that let a running engine donate split-off frames to a task queue.
///
/// The engine donates only while demand exceeds supply (`hungry > queued`), which
/// self-throttles splitting to the number of idle workers.
#[derive(Clone)]
pub struct SplitHandle {
    /// Number of workers currently looking for work.
    pub hungry: Arc<AtomicUsize>,
    /// Number of tasks currently sitting in deques (not yet claimed).
    pub queued: Arc<AtomicUsize>,
    /// The owning worker's deque; donated frames are pushed to its back, thieves
    /// steal from its front (shallowest frame first).
    pub sink: Arc<Mutex<VecDeque<SearchTask>>>,
    /// Frames at depth `>= max_split_depth` are never donated.
    pub max_split_depth: usize,
    /// Minimum unexplored siblings a frame needs before it may be split.
    pub min_split_candidates: usize,
}

/// Result of exploring one extension / partial embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StepResult<const W: usize> {
    /// The subtree produced at least one embedding.
    NotDeadend,
    /// The partial embedding is a deadend; the payload is its deadend mask.
    Deadend(QVSet<W>),
    /// A termination limit fired; unwind without recording further guards.
    Aborted,
}

/// Outcome of a full search.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// Found embeddings over the *matching-order* vertex ids (empty unless the search
    /// was asked to collect them). Use [`Gcs::embedding_in_original_ids`] to translate.
    pub embeddings: Vec<Vec<VertexId>>,
    /// Counters collected during the search.
    pub stats: SearchStats,
}

/// The sink backing the legacy `Vec<Embedding>`-returning entry points
/// ([`SearchEngine::run`], [`SearchEngine::run_task`]): discard when the
/// configuration only counts, collect when it materializes.
enum DefaultSink {
    Discard,
    Collect(CollectAll),
}

impl DefaultSink {
    fn take_collected(&mut self) -> Vec<Vec<VertexId>> {
        match self {
            DefaultSink::Discard => Vec::new(),
            DefaultSink::Collect(all) => all.take_embeddings(),
        }
    }
}

impl EmbeddingSink for DefaultSink {
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl {
        match self {
            DefaultSink::Discard => SinkControl::Continue,
            DefaultSink::Collect(all) => all.report(embedding),
        }
    }

    fn wants_embeddings(&self) -> bool {
        matches!(self, DefaultSink::Collect(_))
    }
}

/// The sequential guarded backtracking engine. One instance per (GCS, search): it owns
/// the mutable per-search state, including the nogood-guard stores (which the parallel
/// engine keeps thread-local, §3.5.2).
pub struct SearchEngine<'a, const W: usize = 1> {
    gcs: &'a Gcs<W>,
    features: PruningFeatures,
    limits: SearchLimits,

    // Per-search mutable state -------------------------------------------------------
    /// Candidate index assigned to each query vertex (valid for depths < current).
    assignment: Vec<u32>,
    /// Data vertex assigned to each query vertex.
    assignment_data: Vec<VertexId>,
    /// For each data vertex: 0 if unassigned, otherwise (query vertex index + 1).
    /// `u16` so the widest supported queries (up to 256 vertices, owner values up
    /// to 257) can never wrap — a `u8` would silently alias query vertices ≥ 255.
    owner: Vec<u16>,
    /// Ancestor array of the current search node (`anc[d]` = node id of the length-`d`
    /// prefix; `anc[0]` is the imaginary root).
    anc: Vec<NodeId>,
    next_node_id: NodeId,
    /// Stack of local candidate-index lists per query vertex; the top is the current
    /// local candidate set.
    cand_stack: Vec<Vec<Vec<u32>>>,
    /// Stack of bounding sets per query vertex, parallel to `cand_stack`.
    bound_stack: Vec<Vec<QVSet<W>>>,
    /// Nogood guards on candidate vertices (populated during the search).
    nv: VertexGuardStore<W>,
    /// Nogood guards on candidate edges (populated during the search).
    ne: EdgeGuardStore<W>,

    stats: SearchStats,
    /// Backs the legacy `Vec`-returning entry points; the sink-based entry points
    /// ([`SearchEngine::run_with_sink`], [`SearchEngine::run_task_with_sink`]) bypass
    /// it entirely.
    default_sink: DefaultSink,
    /// Embedding-limit slot reservation: local check for sequential runs, one shared
    /// check-and-increment counter across all workers of a parallel run. The single
    /// place where the limit is enforced.
    reservation: EmbeddingReservation,
    /// Work-bounded sampler over the absolute deadline, which is owned by whoever
    /// constructed the config: hoisted once by the parallel driver (so engine reuse
    /// cannot restart the time budget per task) or derived from `time_limit` at
    /// engine construction for sequential runs. Shared with the filter pass and the
    /// brute-force oracle — one sampling implementation, one cadence.
    sampler: DeadlineSampler,
    /// Restrict the root-level candidates to this slice of positions (used by the
    /// parallel engine to partition the search tree). `None` = all root candidates.
    root_slice: Option<(usize, usize)>,

    // Task-frame state ---------------------------------------------------------------
    /// Depth at which the current task's explicit candidate list applies.
    task_base: usize,
    /// Explicit candidate list of the current task's base depth.
    task_candidates: Vec<u32>,
    /// Current loop position of the active frame at each depth.
    frame_pos: Vec<usize>,
    /// Exclusive end of the unexplored range of the active frame at each depth;
    /// shrunk when the frame donates work.
    frame_hi: Vec<usize>,
    /// Whether the active frame at each depth donated part of its range.
    frame_donated: Vec<bool>,
    /// Donation hooks of the work-stealing driver.
    split: Option<SplitHandle>,
}

impl<'a, const W: usize> SearchEngine<'a, W> {
    /// Creates an engine for one search over `gcs` under `config`.
    pub fn new(gcs: &'a Gcs<W>, config: &GupConfig) -> Self {
        let n = gcs.query().vertex_count();
        let cand_stack = (0..n)
            .map(|u| {
                let len = gcs.space().candidates(u).len();
                vec![(0..len as u32).collect::<Vec<u32>>()]
            })
            .collect();
        let bound_stack = (0..n).map(|_| vec![QVSet::EMPTY]).collect();
        SearchEngine {
            gcs,
            features: config.features,
            limits: config.limits,
            assignment: vec![0; n],
            assignment_data: vec![0; n],
            owner: vec![0; gcs.data_vertex_count()],
            anc: vec![0; n + 1],
            next_node_id: 1,
            cand_stack,
            bound_stack,
            nv: gcs.new_vertex_guard_store(),
            ne: gcs.new_edge_guard_store(),
            stats: SearchStats::default(),
            default_sink: if config.collect_embeddings {
                DefaultSink::Collect(CollectAll::new())
            } else {
                DefaultSink::Discard
            },
            reservation: EmbeddingReservation::local(config.limits.max_embeddings),
            sampler: DeadlineSampler::new(config.limits.effective_deadline()),
            root_slice: None,
            task_base: 0,
            task_candidates: Vec::new(),
            frame_pos: vec![0; n],
            frame_hi: vec![0; n],
            frame_donated: vec![false; n],
            split: None,
        }
    }

    /// Restricts the root level to candidate positions `[start, end)` of `C(u_0)`.
    /// Used by the parallel engine to split the search tree across workers.
    pub fn restrict_root(&mut self, start: usize, end: usize) {
        self.root_slice = Some((start, end));
    }

    /// Shares an embedding counter with other workers so that the embedding limit is
    /// enforced globally across a parallel run (§3.5.2). The limit is reserved
    /// check-and-increment (`fetch_update`), so workers can never overshoot it.
    pub fn share_embedding_counter(&mut self, counter: Arc<AtomicU64>) {
        self.reservation = EmbeddingReservation::shared(counter, self.limits.max_embeddings);
    }

    /// Enables frame donation: while `handle` reports hungry workers, the engine
    /// splits the shallowest splittable active frame and pushes the unexplored half
    /// to `handle.sink`.
    pub fn enable_splitting(&mut self, handle: SplitHandle) {
        self.split = Some(handle);
    }

    /// Counters collected so far (across every task this engine executed).
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Counts one stolen task against this engine's statistics (driver-side event;
    /// the engine itself cannot observe where its tasks came from).
    pub fn record_steal(&mut self) {
        self.stats.tasks_stolen += 1;
    }

    /// The task covering this engine's whole search space: empty prefix, every root
    /// candidate (restricted by [`SearchEngine::restrict_root`] when set).
    pub fn root_task(&self) -> SearchTask {
        let list = &self.cand_stack[0][0];
        let len = list.len();
        let (lo, hi) = self
            .root_slice
            .map(|(a, b)| (a.min(len), b.min(len)))
            .unwrap_or((0, len));
        SearchTask {
            prefix: Vec::new(),
            candidates: list[lo..hi.max(lo)].to_vec(),
        }
    }

    /// Runs the search to completion (or until a limit fires) and returns the outcome.
    /// Thin adapter over [`SearchEngine::run_with_sink`]: embeddings are collected or
    /// discarded according to `GupConfig::collect_embeddings`.
    pub fn run(mut self) -> SearchOutcome {
        if !self.gcs.is_empty() {
            let task = self.root_task();
            self.run_task(task);
        }
        SearchOutcome {
            embeddings: self.default_sink.take_collected(),
            stats: self.stats,
        }
    }

    /// Runs the search, streaming every found embedding into `sink` (over the
    /// *matching-order* vertex ids; use [`GupMatcher::run_with_sink`] for original
    /// ids). The sink's [`EmbeddingSink::capacity`] is folded into the embedding
    /// limit, and a [`SinkControl::Stop`] terminates the search immediately
    /// (`SearchStats::stopped_by_sink`).
    ///
    /// [`GupMatcher::run_with_sink`]: crate::matcher::GupMatcher::run_with_sink
    pub fn run_with_sink(mut self, sink: &mut dyn EmbeddingSink) -> SearchStats {
        let configured_limit = self.reservation.max();
        self.reservation.cap(sink.capacity());
        if !self.gcs.is_empty() {
            let task = self.root_task();
            self.run_task_with_sink(task, sink);
        }
        self.stats
            .attribute_capacity_stop(configured_limit, sink.capacity());
        self.stats
    }

    /// Runs the search and additionally returns the populated guard stores (used by
    /// the memory-consumption experiment, Table 3).
    pub fn run_with_guards(mut self) -> (SearchOutcome, VertexGuardStore<W>, EdgeGuardStore<W>) {
        if !self.gcs.is_empty() {
            let task = self.root_task();
            self.run_task(task);
        }
        let outcome = SearchOutcome {
            embeddings: self.default_sink.take_collected(),
            stats: self.stats.clone(),
        };
        (outcome, self.nv, self.ne)
    }

    /// Executes one task against the engine's built-in sink (collect or discard per
    /// `GupConfig::collect_embeddings`); see [`SearchEngine::run_task_with_sink`].
    pub fn run_task(&mut self, task: SearchTask) {
        // The default sink is swapped out for the duration of the call so that the
        // recursion can borrow the engine and the sink independently.
        let mut sink = std::mem::replace(&mut self.default_sink, DefaultSink::Discard);
        self.run_task_with_sink(task, &mut sink);
        self.default_sink = sink;
    }

    /// Executes one task, streaming found embeddings into `sink`: replays the task's
    /// prefix, then explores its candidate range. Counters accumulate in the engine
    /// across calls; collect them with [`SearchEngine::take_outcome`] when the worker
    /// is done.
    ///
    /// A prefix that can no longer be extended (a persistent guard or refinement
    /// proves its subtree empty) makes the task a cheap no-op — that pruning is sound
    /// because guards and refinements only ever remove embedding-free subtrees.
    pub fn run_task_with_sink(&mut self, task: SearchTask, sink: &mut dyn EmbeddingSink) {
        if self.gcs.is_empty() || task.candidates.is_empty() {
            return;
        }
        self.stats.tasks_executed += 1;
        let base = task.prefix.len();
        debug_assert!(base < self.gcs.query().vertex_count());
        let mut replayed: Vec<Vec<usize>> = Vec::with_capacity(base);
        let mut alive = true;
        for (k, &cv) in task.prefix.iter().enumerate() {
            let v = self.gcs.space().candidates(k)[cv as usize];
            // A guard learned in an earlier task may have since proven this subtree
            // empty; injectivity/reservation conflicts cannot occur on a valid prefix.
            if self.features.nogood_vertex_guards && self.nv.get(k, cv).matches(&self.anc[..k + 1])
            {
                self.stats.pruned_by_nogood_vertex += 1;
                alive = false;
                break;
            }
            self.owner[v as usize] = k as u16 + 1;
            self.assignment[k] = cv;
            self.assignment_data[k] = v;
            let node = self.next_node_id;
            self.next_node_id += 1;
            self.anc[k + 1] = node;
            match self.refine_forward(k, cv, v) {
                Ok(pushed) => replayed.push(pushed),
                Err(_) => {
                    self.owner[v as usize] = 0;
                    self.stats.no_candidate_conflicts += 1;
                    alive = false;
                    break;
                }
            }
        }
        if alive {
            self.task_base = base;
            self.task_candidates = task.candidates;
            let _ = self.backtrack(base, sink);
            self.task_base = 0;
            self.task_candidates = Vec::new();
        }
        for k in (0..replayed.len()).rev() {
            self.pop_refinements(&replayed[k]);
            self.owner[self.assignment_data[k] as usize] = 0;
        }
    }

    /// Moves the accumulated outcome out of the engine (leaving it reusable). Only
    /// embeddings recorded through the built-in sink ([`SearchEngine::run_task`])
    /// appear here; [`SearchEngine::run_task_with_sink`] callers own their sink.
    pub fn take_outcome(&mut self) -> SearchOutcome {
        SearchOutcome {
            embeddings: self.default_sink.take_collected(),
            stats: std::mem::take(&mut self.stats),
        }
    }

    // ------------------------------------------------------------------------------
    // Core recursion
    // ------------------------------------------------------------------------------

    fn backtrack(&mut self, k: usize, sink: &mut dyn EmbeddingSink) -> StepResult<W> {
        let n = self.gcs.query().vertex_count();
        if k == n {
            return if self.try_record_embedding(sink) {
                StepResult::NotDeadend
            } else {
                StepResult::Aborted
            };
        }
        self.stats.recursions += 1;
        if self.limit_hit() {
            return StepResult::Aborted;
        }
        self.maybe_donate(k);

        let mut found_any = false;
        let mut mask_union = QVSet::<W>::EMPTY;
        let mut mask_without_k: Option<QVSet<W>> = None;
        let mut aborted = false;
        let mut backjump_mask: Option<QVSet<W>> = None;

        let at_base = k == self.task_base;
        let level = self.cand_stack[k].len() - 1;
        self.frame_pos[k] = 0;
        self.frame_hi[k] = if at_base {
            self.task_candidates.len()
        } else {
            self.cand_stack[k][level].len()
        };
        self.frame_donated[k] = false;

        while self.frame_pos[k] < self.frame_hi[k] {
            let pos = self.frame_pos[k];
            let cv = if at_base {
                self.task_candidates[pos]
            } else {
                self.cand_stack[k][level][pos]
            };
            let v = self.gcs.space().candidates(k)[cv as usize];
            self.stats.local_candidates_seen += 1;

            // --- Conflict checks before extension (Algorithm 2, lines 4–5) ----------
            let conflict = self.pre_extension_conflict(k, cv, v);
            let child_mask: Option<QVSet<W>> = if let Some(mask) = conflict {
                Some(mask)
            } else {
                // --- Extend and refine local candidates (lines 6–8) ------------------
                self.owner[v as usize] = k as u16 + 1;
                self.assignment[k] = cv;
                self.assignment_data[k] = v;
                let node = self.next_node_id;
                self.next_node_id += 1;
                self.anc[k + 1] = node;

                let refine = self.refine_forward(k, cv, v);
                let result_mask = match refine {
                    Err(bound) => {
                        // No-candidate conflict (Definition 3.22 case 4).
                        self.stats.no_candidate_conflicts += 1;
                        Some(bound)
                    }
                    Ok(pushed) => {
                        let result = self.backtrack(k + 1, sink);
                        self.pop_refinements(&pushed);
                        match result {
                            StepResult::Aborted => {
                                aborted = true;
                                None
                            }
                            StepResult::NotDeadend => {
                                found_any = true;
                                None
                            }
                            StepResult::Deadend(mask) => Some(mask),
                        }
                    }
                };
                self.owner[v as usize] = 0;
                result_mask
            };

            if aborted {
                break;
            }

            if let Some(mask) = child_mask {
                // A nogood (M ⊕ v)[mask] was discovered: record guards, update the
                // deadend-mask bookkeeping, and possibly backjump.
                self.record_nogood(k, cv, v, mask);
                mask_union |= mask;
                if !mask.contains(k) {
                    if mask_without_k.is_none() {
                        mask_without_k = Some(mask);
                    }
                    if self.features.backjumping {
                        self.stats.backjumps += 1;
                        backjump_mask = Some(mask);
                        break;
                    }
                }
            }
            self.frame_pos[k] = pos + 1;
        }

        if aborted {
            return StepResult::Aborted;
        }
        if found_any {
            return StepResult::NotDeadend;
        }
        // The current partial embedding is a deadend; derive its deadend mask
        // (Definition 3.26, cases 3 and 4). A mask discovered by backjumping (or any
        // mask not containing k) claims the whole level dead *independently* of which
        // siblings were enumerated here, so it stays valid for a donated frame.
        if let Some(mask) = backjump_mask.or(mask_without_k) {
            self.stats.futile_recursions += 1;
            return StepResult::Deadend(mask);
        }
        if self.frame_donated[k] {
            // Part of this level was donated to another worker: the enumeration is
            // incomplete, so no union-derived deadend mask may be synthesized.
            return StepResult::NotDeadend;
        }
        self.stats.futile_recursions += 1;
        // gup-lint: allow(panic_freedom) every level keeps at least its root entry; an empty bound stack is a search-invariant bug worth a loud crash
        let level_bound = *self.bound_stack[k].last().expect("bound stack never empty");
        let mask = (mask_union | level_bound).without(k);
        StepResult::Deadend(mask)
    }

    /// When idle workers outnumber queued tasks, splits the shallowest splittable
    /// active frame (depth `task_base..min(depth, max_split_depth)`) and donates the
    /// unexplored half of its sibling range as a new task.
    fn maybe_donate(&mut self, depth: usize) {
        let (hungry, queued, min_split, max_split) = match &self.split {
            Some(s) => (
                // Relaxed: scheduling hints only. A stale read can at worst delay
                // or skip one donation; task hand-off itself is published by the
                // queue mutex, and `queued` updates use SeqCst where the count
                // gates worker shutdown.
                s.hungry.load(Ordering::Relaxed),
                s.queued.load(Ordering::Relaxed),
                s.min_split_candidates.max(2),
                s.max_split_depth,
            ),
            None => return,
        };
        if hungry <= queued {
            return;
        }
        for d in self.task_base..depth.min(max_split) {
            let pos = self.frame_pos[d];
            let hi = self.frame_hi[d];
            // Candidates after the one whose subtree is currently being explored.
            let rest = hi.saturating_sub(pos + 1);
            if rest < min_split {
                continue;
            }
            let give = rest - rest / 2;
            let new_hi = hi - give;
            let candidates: Vec<u32> = if d == self.task_base {
                self.task_candidates[new_hi..hi].to_vec()
            } else {
                let level = self.cand_stack[d].len() - 1;
                self.cand_stack[d][level][new_hi..hi].to_vec()
            };
            let prefix: Vec<u32> = self.assignment[..d].to_vec();
            self.frame_hi[d] = new_hi;
            self.frame_donated[d] = true;
            self.stats.frames_split += 1;
            // gup-lint: allow(panic_freedom) the match at the top of this method already returned when split is None
            let split = self.split.as_ref().expect("checked above");
            split.queued.fetch_add(1, Ordering::SeqCst);
            split
                .sink
                .lock()
                .push_back(SearchTask { prefix, candidates });
            return;
        }
    }

    /// Conflict checks performed before extending with candidate `cv` / data vertex
    /// `v` of query vertex `u_k` (Definition 3.22 cases 1–3). Returns the conflict mask
    /// when a conflict is found.
    fn pre_extension_conflict(&mut self, k: usize, cv: u32, v: VertexId) -> Option<QVSet<W>> {
        // (1) Injectivity conflict.
        let owner = self.owner[v as usize];
        if owner != 0 {
            self.stats.pruned_by_injectivity += 1;
            return Some(QVSet::from_iter([owner as usize - 1, k]));
        }
        // (2) Reservation-guard conflict.
        if self.features.reservation_guards {
            let guard = self.gcs.reservation(k, cv);
            if !guard.is_trivial_for(v) {
                let mut mask = QVSet::singleton(k);
                let mut matched = true;
                for &w in guard.vertices() {
                    let o = self.owner[w as usize];
                    if o == 0 {
                        matched = false;
                        break;
                    }
                    mask.insert(o as usize - 1);
                }
                if matched {
                    self.stats.pruned_by_reservation += 1;
                    return Some(mask);
                }
            }
        }
        // (3) Nogood-guard conflict (vertex guards).
        if self.features.nogood_vertex_guards {
            let guard = self.nv.get(k, cv);
            if guard.matches(&self.anc[..k + 1]) {
                self.stats.pruned_by_nogood_vertex += 1;
                return Some(guard.dom.with(k));
            }
        }
        None
    }

    /// Refines the local candidate sets of the forward neighbors of `u_k` after the
    /// assignment `(u_k, v)` (Definition 3.18), pushing one new level per forward
    /// neighbor. On success returns the list of pushed query vertices; on a
    /// no-candidate conflict returns the bounding set of the emptied vertex
    /// (Definition 3.23 case 4), having already undone its own pushes.
    fn refine_forward(&mut self, k: usize, cv: u32, v: VertexId) -> Result<Vec<usize>, QVSet<W>> {
        let _ = v;
        let forward_count = self.gcs.query().forward_neighbors(k).len();
        let mut pushed: Vec<usize> = Vec::with_capacity(forward_count);
        for fi in 0..forward_count {
            let f = self.gcs.query().forward_neighbors(k)[fi];
            let eid = self
                .gcs
                .space()
                .edge_id(k, f)
                // gup-lint: allow(panic_freedom) f comes from forward_neighbors(k), so the query edge (k, f) exists by construction
                .expect("forward neighbors are adjacent in the query");
            let adjacency = self.gcs.space().adjacent_candidates(k, cv as usize, f);
            // gup-lint: allow(panic_freedom) candidate stacks are seeded with one level at construction and never emptied
            let parent_list = self.cand_stack[f].last().expect("stack never empty");
            // gup-lint: allow(panic_freedom) bound stacks are seeded with one level at construction and never emptied
            let parent_bound = *self.bound_stack[f].last().expect("stack never empty");
            let use_ne = self.features.nogood_edge_guards;

            let mut new_list: Vec<u32> = Vec::with_capacity(parent_list.len().min(adjacency.len()));
            let mut new_bound = parent_bound;
            let mut removed_any = parent_list.len() != adjacency.len();
            let mut pruned_by_edge_guard = 0u64;

            // Merge-intersect the (sorted) parent list with the (sorted) adjacency
            // list; `pos` tracks the position within the adjacency list so that the
            // matching edge-guard slot can be consulted.
            let mut pi = 0usize;
            let mut pos = 0usize;
            while pi < parent_list.len() && pos < adjacency.len() {
                let a = parent_list[pi];
                let b = adjacency[pos];
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => {
                        // Candidate not adjacent to v: removed by the adjacency
                        // constraint.
                        removed_any = true;
                        pi += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        pos += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let keep = if use_ne {
                            let guard = self.ne.get(eid, cv, pos);
                            if guard.matches(&self.anc[..k + 2]) {
                                new_bound |= guard.dom;
                                pruned_by_edge_guard += 1;
                                false
                            } else {
                                true
                            }
                        } else {
                            true
                        };
                        if keep {
                            new_list.push(a);
                        } else {
                            removed_any = true;
                        }
                        pi += 1;
                        pos += 1;
                    }
                }
            }
            if pi < parent_list.len() {
                removed_any = true;
            }
            self.stats.pruned_by_nogood_edge += pruned_by_edge_guard;
            if removed_any {
                new_bound.insert(k);
            }
            if new_list.is_empty() {
                // Undo the refinements already pushed for earlier forward neighbors.
                self.pop_refinements(&pushed);
                return Err(new_bound);
            }
            self.cand_stack[f].push(new_list);
            self.bound_stack[f].push(new_bound);
            pushed.push(f);
        }
        Ok(pushed)
    }

    fn pop_refinements(&mut self, pushed: &[usize]) {
        for &f in pushed {
            self.cand_stack[f].pop();
            self.bound_stack[f].pop();
        }
    }

    /// Records the nogood `(M ⊕ v)[mask]` as a nogood guard on a candidate vertex and,
    /// when possible, on a candidate edge (§3.3.2–3.3.3 plus the search-node encoding
    /// of §3.5.1).
    fn record_nogood(&mut self, k: usize, cv: u32, v: VertexId, mask: QVSet<W>) {
        let _ = v;
        let Some(last) = mask.max() else {
            // The empty nogood: no embedding exists anywhere; nothing to attach it to.
            return;
        };
        // Guard on the candidate vertex of the last assignment.
        if self.features.nogood_vertex_guards {
            let target_cand = if last == k { cv } else { self.assignment[last] };
            let rest = mask.without(last);
            let guard = self.encode(rest);
            self.nv.set(last, target_cand, guard);
            self.stats.nv_guards_recorded += 1;
        }
        // Guard on the candidate edge between the two last assignments (restricted
        // edge-guard rule; see the module documentation).
        if self.features.nogood_edge_guards && mask.len() >= 2 {
            let b = last;
            let a = mask
                .without(b)
                .max()
                // gup-lint: allow(panic_freedom) guarded by mask.len() >= 2 just above, so removing one member leaves a maximum
                .expect("mask has at least two members");
            let query = self.gcs.query();
            if query.in_two_core(a) && query.in_two_core(b) {
                if let Some(eid) = self.gcs.space().edge_id(a, b) {
                    let ca = self.assignment[a];
                    let cb = if b == k { cv } else { self.assignment[b] };
                    let adjacency = self.gcs.space().forward_adjacency(eid, ca as usize);
                    if let Ok(p) = adjacency.binary_search(&cb) {
                        let rest = mask.without(a).without(b);
                        let guard = self.encode(rest);
                        self.ne.set(eid, ca, p, guard);
                        self.stats.ne_guards_recorded += 1;
                    }
                }
            }
        }
    }

    /// Search-node encoding of the assignment set `M[dom]` (Definition 3.36): round the
    /// set up to its minimum superset embedding and store `(node id, length, domain)`.
    fn encode(&self, dom: QVSet<W>) -> NogoodRef<W> {
        match dom.max() {
            None => NogoodRef {
                id: self.anc[0],
                len: 0,
                dom,
            },
            Some(m) => NogoodRef {
                id: self.anc[m + 1],
                len: (m + 1) as u32,
                dom,
            },
        }
    }

    /// Reserves a slot under the embedding limit (via the shared
    /// [`EmbeddingReservation`] logic — a check-and-increment `fetch_update` when the
    /// counter is shared across workers, so the limit can never be overshot and no
    /// post-hoc truncation is needed) and reports the embedding to the sink. Returns
    /// `false` when no slot is left or the sink asked the search to stop.
    // These two run once per recursion / per embedding — the innermost hot
    // path. Statically pinned allocation-free; the counting-sink variant is
    // also pinned dynamically by `tests/sink_alloc.rs`.
    // gup-lint: region(no_alloc)
    fn try_record_embedding(&mut self, sink: &mut dyn EmbeddingSink) -> bool {
        if !self.reservation.try_reserve(self.stats.embeddings) {
            self.stats.hit_embedding_limit = true;
            return false;
        }
        self.stats.embeddings += 1;
        match sink.report(&self.assignment_data) {
            SinkControl::Continue => true,
            SinkControl::Stop => {
                self.stats.stopped_by_sink = true;
                false
            }
        }
    }

    fn limit_hit(&mut self) -> bool {
        if self.reservation.exhausted(self.stats.embeddings) {
            self.stats.hit_embedding_limit = true;
            return true;
        }
        if let Some(max) = self.limits.max_recursions {
            if self.stats.recursions >= max {
                self.stats.hit_recursion_limit = true;
                return true;
            }
        }
        // One clock read per DEADLINE_CHECK_INTERVAL recursions, via the shared
        // work-bounded sampler (sticky once expired — correct for an absolute
        // deadline that outlives individual tasks of a reused engine).
        if self.sampler.tick().is_err() {
            self.stats.hit_time_limit = true;
            return true;
        }
        false
    }
    // gup-lint: end_region
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GupConfig;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;

    fn run(query: &gup_graph::Graph, data: &gup_graph::Graph, config: &GupConfig) -> SearchOutcome {
        let gcs = Gcs::<1>::build(query, data, config).unwrap();
        SearchEngine::new(&gcs, config).run()
    }

    #[test]
    fn paper_example_has_exactly_the_described_embeddings() {
        let (q, d) = fixtures::paper_example();
        let mut cfg = GupConfig::collecting();
        cfg.limits = SearchLimits::UNLIMITED;
        let gcs = Gcs::<1>::build(&q, &d, &cfg).unwrap();
        let outcome = SearchEngine::new(&gcs, &cfg).run();
        assert!(outcome.stats.embeddings >= 1);
        // Every reported embedding must satisfy all three isomorphism constraints.
        for emb in &outcome.embeddings {
            let original = gcs.embedding_in_original_ids(emb);
            verify_embedding(&q, &d, &original);
        }
        // The specific embedding named in the paper's introduction is among them.
        let expected = vec![1u32, 4, 7, 10, 0];
        let found: Vec<Vec<u32>> = outcome
            .embeddings
            .iter()
            .map(|e| gcs.embedding_in_original_ids(e))
            .collect();
        assert!(
            found.contains(&expected),
            "missing the paper's example embedding"
        );
    }

    fn verify_embedding(q: &gup_graph::Graph, d: &gup_graph::Graph, emb: &[u32]) {
        assert_eq!(emb.len(), q.vertex_count());
        for u in q.vertices() {
            assert_eq!(q.label(u), d.label(emb[u as usize]), "label constraint");
        }
        for (a, b) in q.edges() {
            assert!(
                d.has_edge(emb[a as usize], emb[b as usize]),
                "adjacency constraint"
            );
        }
        let mut used: Vec<u32> = emb.to_vec();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), emb.len(), "injectivity constraint");
    }

    #[test]
    fn triangle_in_square_found_in_both_orientations() {
        let q = fixtures::triangle_query();
        let d = fixtures::square_with_diagonal();
        let mut cfg = GupConfig::collecting();
        cfg.limits = SearchLimits::UNLIMITED;
        let outcome = run(&q, &d, &cfg);
        // The data triangles {0,1,2} and {0,2,3} both host the labeled query triangle;
        // swapping the two label-0 query corners doubles each, giving four embeddings.
        assert_eq!(outcome.stats.embeddings, 4);
    }

    #[test]
    fn all_feature_combinations_agree_on_embedding_counts() {
        let cases: Vec<(gup_graph::Graph, gup_graph::Graph)> = vec![
            fixtures::paper_example(),
            (fixtures::triangle_query(), fixtures::square_with_diagonal()),
            (
                fixtures::path(4, 0),
                graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
            ),
            (
                fixtures::clique4(1),
                graph_from_edges(
                    &[1; 6],
                    &[
                        (0, 1),
                        (0, 2),
                        (0, 3),
                        (1, 2),
                        (1, 3),
                        (2, 3),
                        (2, 4),
                        (3, 4),
                        (4, 5),
                        (1, 4),
                    ],
                ),
            ),
        ];
        let feature_sets = [
            PruningFeatures::NONE,
            PruningFeatures::RESERVATION_ONLY,
            PruningFeatures::RESERVATION_AND_NV,
            PruningFeatures::RESERVATION_NV_NE,
            PruningFeatures::ALL,
        ];
        for (q, d) in &cases {
            let mut counts = Vec::new();
            for features in feature_sets {
                let cfg = GupConfig {
                    features,
                    limits: SearchLimits::UNLIMITED,
                    ..GupConfig::default()
                };
                let outcome = run(q, d, &cfg);
                counts.push(outcome.stats.embeddings);
            }
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "feature combinations disagree: {counts:?}"
            );
        }
    }

    #[test]
    fn guards_never_increase_recursions() {
        let (q, d) = fixtures::paper_example();
        let baseline = run(
            &q,
            &d,
            &GupConfig {
                features: PruningFeatures::NONE,
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            },
        );
        let full = run(
            &q,
            &d,
            &GupConfig {
                features: PruningFeatures::ALL,
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            },
        );
        assert_eq!(baseline.stats.embeddings, full.stats.embeddings);
        assert!(full.stats.recursions <= baseline.stats.recursions);
    }

    #[test]
    fn embedding_limit_stops_the_search() {
        // A query with a single vertex matches every same-label data vertex; cap at 3.
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        let d = graph_from_edges(
            &[0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let cfg = GupConfig {
            limits: SearchLimits {
                max_embeddings: Some(3),
                ..SearchLimits::default()
            },
            ..GupConfig::default()
        };
        let outcome = run(&q, &d, &cfg);
        assert_eq!(outcome.stats.embeddings, 3);
        assert!(outcome.stats.hit_embedding_limit);
        assert!(outcome.stats.terminated_early());
    }

    #[test]
    fn recursion_limit_stops_the_search() {
        let q = fixtures::path(3, 0);
        let d = graph_from_edges(
            &[0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let cfg = GupConfig {
            limits: SearchLimits {
                max_recursions: Some(2),
                ..SearchLimits::UNLIMITED
            },
            ..GupConfig::default()
        };
        let outcome = run(&q, &d, &cfg);
        assert!(outcome.stats.hit_recursion_limit);
    }

    #[test]
    fn no_embeddings_when_labels_do_not_match() {
        let q = graph_from_edges(&[7, 7], &[(0, 1)]);
        let (_pq, d) = fixtures::paper_example();
        let outcome = run(&q, &d, &GupConfig::default());
        assert_eq!(outcome.stats.embeddings, 0);
        assert_eq!(outcome.stats.recursions, 0);
    }

    #[test]
    fn no_embeddings_when_cycle_cannot_close() {
        // Query: labeled triangle. Data: a labeled path (no cycle at all).
        let q = fixtures::triangle_query();
        let d = graph_from_edges(&[0, 1, 0, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let outcome = run(
            &q,
            &d,
            &GupConfig {
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            },
        );
        assert_eq!(outcome.stats.embeddings, 0);
    }

    #[test]
    fn root_slice_partitions_the_work() {
        let q = fixtures::triangle_query();
        let d = fixtures::square_with_diagonal();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            collect_embeddings: true,
            ..GupConfig::default()
        };
        let gcs = Gcs::<1>::build(&q, &d, &cfg).unwrap();
        let root_candidates = gcs.space().candidates(0).len();
        let mut total = 0u64;
        for i in 0..root_candidates {
            let mut engine = SearchEngine::new(&gcs, &cfg);
            engine.restrict_root(i, i + 1);
            total += engine.run().stats.embeddings;
        }
        let full = SearchEngine::new(&gcs, &cfg).run();
        assert_eq!(total, full.stats.embeddings);
    }

    #[test]
    fn guard_statistics_are_populated_on_hard_instances() {
        // A query 4-cycle with alternating labels over a bipartite-ish data graph with
        // many near-misses generates deadends, which must produce guards.
        let q = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = {
            // Two "layers" of label 0/1 vertices with a sparse crossing pattern: many
            // paths exist but few 4-cycles close.
            let mut labels = Vec::new();
            let mut edges = Vec::new();
            let layer = 8u32;
            for i in 0..layer {
                labels.push(0);
                labels.push(1);
                let a = 2 * i;
                let b = 2 * i + 1;
                edges.push((a, b));
                edges.push((b, (2 * (i + 1)) % (2 * layer)));
            }
            // One genuine 4-cycle.
            edges.push((0, 3));
            graph_from_edges(&labels, &edges)
        };
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let outcome = run(&q, &d, &cfg);
        assert!(outcome.stats.recursions > 0);
        assert!(outcome.stats.futile_recursions > 0);
        assert!(outcome.stats.nv_guards_recorded > 0);
        // The run must agree with the unguarded baseline.
        let baseline = run(
            &q,
            &d,
            &GupConfig {
                features: PruningFeatures::NONE,
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            },
        );
        assert_eq!(outcome.stats.embeddings, baseline.stats.embeddings);
    }
}
