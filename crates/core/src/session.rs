//! Prepared-data sessions: build per-data-graph state once, run many queries.
//!
//! The paper evaluates on *query sets* — hundreds of queries against one data graph
//! (§4.1) — and a serving deployment looks the same: the data graph is long-lived,
//! queries arrive in batches and from many threads. This module is the front door for
//! that shape:
//!
//! * [`Session`] owns an [`Arc<PreparedData>`](PreparedData) — the data graph plus
//!   its label inverted index, the NLF signature arena, and degree/label bounds,
//!   built **once** — and hands out query requests that reuse it. Sessions are cheap
//!   to clone and [`Session::from_prepared`] lets many threads share one index.
//! * [`QueryRequest`] is a builder over one query: pick the engine
//!   ([`Engine`] covers GuP sequential/parallel, the three backtracking baselines,
//!   the join baseline, and the brute-force oracle), set limits, then [`run`],
//!   [`count`], or stream into any [`EmbeddingSink`] via [`run_with_sink`].
//! * [`Session::run_batch`] executes a whole query set under one shared deadline
//!   with per-query stats and amortized preparation time in its [`BatchReport`].
//! * [`Session::with_result_cache`] opts into a bounded, engine-agnostic memo for
//!   the `count`/`first_k` finishers (hit/miss counters on [`SessionCounters`],
//!   timed-out results bypassed, [`Session::invalidate_cache`] on data change) —
//!   the serving front-end's answer to the same query arriving twice.
//!
//! Every engine family runs against the same shared `PreparedData`; the legacy
//! `(query, data)` constructors elsewhere in the workspace are thin adapters that
//! share everything downstream of the initial filter pass (which they run against
//! the borrowed graph, so one-shot callers never pay a clone or an index build).
//!
//! Queries of up to 256 vertices are accepted: each request is dispatched to the
//! narrowest monomorphized query-vertex bitset width that fits
//! ([`Qv64`]/[`Qv128`]/[`Qv256`]), so ≤64-vertex queries compile to exactly the
//! one-word engine while larger template queries run on two or four words.
//!
//! [`Qv64`]: gup_graph::Qv64
//! [`Qv128`]: gup_graph::Qv128
//! [`Qv256`]: gup_graph::Qv256
//!
//! [`run`]: QueryRequest::run
//! [`count`]: QueryRequest::count
//! [`run_with_sink`]: QueryRequest::run_with_sink
//!
//! ```
//! use gup::session::{Engine, Session};
//! use gup_graph::fixtures::paper_example;
//!
//! let (query, data) = paper_example();
//! let session = Session::new(data); // prepare once
//!
//! // Default engine (GuP), builder-style knobs.
//! let n = session.query(&query).unlimited().count().unwrap();
//! assert_eq!(n, 4);
//!
//! // The same query through another engine, first two matches only.
//! let outcome = session
//!     .query(&query)
//!     .method(Engine::Daf)
//!     .first_k(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.embeddings.len(), 2);
//!
//! // A query set through one shared index: prep time is reported once.
//! let report = session.run_batch(&[query.clone(), query]);
//! assert_eq!(report.total_embeddings(), 8);
//! ```

use crate::config::GupConfig;
use crate::gcs::GupError;
use crate::matcher::GupMatcher;
use crate::stats::SearchStats;
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineError, BaselineKind, BaselineLimits, BaselineResult,
    JoinBaseline,
};
use gup_graph::deadline::{deadline_passed, remaining_until, Stopwatch};
use gup_graph::delta::{DeltaEffects, DeltaError, GraphDelta};
use gup_graph::query::QueryGraphError;
use gup_graph::sink::{min_limit, CollectAll, CountOnly, EmbeddingSink, FirstK, SinkControl};
use gup_graph::{Graph, Label, PreparedData, QueryGraph, VertexId};
use gup_order::OrderingStrategy;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The engine families a session can dispatch a query to. All of them run against
/// the session's shared [`PreparedData`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// GuP with guard-based pruning (the configuration's [`PruningFeatures`] decide
    /// which guards; `threads > 1` selects the work-stealing parallel driver).
    ///
    /// [`PruningFeatures`]: crate::PruningFeatures
    Gup,
    /// Plain candidate-space backtracking (no guards, VC-style order).
    Plain,
    /// DAF-style failing-set backtracking.
    Daf,
    /// GraphQL-style filtering + ordering.
    Gql,
    /// RI-style ordering.
    Ri,
    /// Edge-at-a-time join enumeration (RapidMatch stand-in).
    Join,
    /// The brute-force oracle (small instances only). Time limits and the batch
    /// deadline are sampled periodically *inside* the enumeration, so even a
    /// zero-match query observes them.
    BruteForce,
}

impl Engine {
    /// Every engine family, for sweeps and differential tests.
    pub const ALL: [Engine; 7] = [
        Engine::Gup,
        Engine::Plain,
        Engine::Daf,
        Engine::Gql,
        Engine::Ri,
        Engine::Join,
        Engine::BruteForce,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Gup => "GuP",
            Engine::Plain => "Plain-BT",
            Engine::Daf => "DAF-FS",
            Engine::Gql => "GQL-G",
            Engine::Ri => "GQL-R",
            Engine::Join => "RM-join",
            Engine::BruteForce => "BruteForce",
        }
    }
}

/// Errors produced when a session cannot run a query.
#[derive(Debug)]
pub enum SessionError {
    /// The query graph is unusable (empty, disconnected, or too large).
    InvalidQuery(QueryGraphError),
    /// The time budget expired during the candidate filter pass. Session finishers
    /// intercept this and report it as `hit_time_limit` in [`SearchStats`], so it
    /// never escapes [`QueryRequest::run`] and friends; the variant exists so the
    /// conversions from the lower-level engine errors stay total for callers that
    /// construct engines directly.
    FilterTimeout,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::InvalidQuery(e) => write!(f, "invalid query graph: {e}"),
            SessionError::FilterTimeout => {
                write!(f, "time budget expired during the candidate filter pass")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<GupError> for SessionError {
    fn from(e: GupError) -> Self {
        match e {
            GupError::InvalidQuery(q) => SessionError::InvalidQuery(q),
            GupError::FilterTimeout => SessionError::FilterTimeout,
        }
    }
}

impl From<BaselineError> for SessionError {
    fn from(e: BaselineError) -> Self {
        match e {
            BaselineError::InvalidQuery(q) => SessionError::InvalidQuery(q),
            BaselineError::FilterTimeout => SessionError::FilterTimeout,
        }
    }
}

/// Monotonic counters a session keeps about the queries it has dispatched.
/// Shared by every clone of the session (clones share one `Arc`), so a serving
/// front-end can observe one set of totals across all of its worker threads —
/// and, via [`Session::with_counters`], across data-graph reloads.
#[derive(Debug, Default)]
pub struct SessionCounters {
    queries_started: AtomicU64,
    queries_ok: AtomicU64,
    queries_failed: AtomicU64,
    queries_timed_out: AtomicU64,
    embeddings_reported: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_invalidations: AtomicU64,
    deltas_applied: AtomicU64,
    incremental_matches: AtomicU64,
}

impl SessionCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        SessionCounters::default()
    }

    /// A consistent-enough snapshot for reporting (each counter is read atomically;
    /// the set is not a transaction, which is fine for monitoring).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            // Relaxed: monitoring counters, each read atomically for display;
            // no other memory is synchronized through them.
            queries_started: self.queries_started.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            queries_timed_out: self.queries_timed_out.load(Ordering::Relaxed),
            embeddings_reported: self.embeddings_reported.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            incremental_matches: self.incremental_matches.load(Ordering::Relaxed),
        }
    }

    /// Records `n` new embeddings reported by an incremental (delta-localized)
    /// match pass. Called by the continuous-matching layer, which streams new
    /// matches outside the regular query dispatch path.
    pub fn record_incremental_matches(&self, n: u64) {
        self.incremental_matches.fetch_add(n, Ordering::Relaxed); // Relaxed: stats only
    }

    fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
    }

    fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
    }

    // All orderings Relaxed: pure monitoring counters — increments race only
    // against other increments, nothing reads them for control flow.
    fn record(&self, result: &Result<SearchStats, SessionError>) {
        self.queries_started.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
        match result {
            Ok(stats) => {
                self.queries_ok.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
                self.embeddings_reported
                    .fetch_add(stats.embeddings, Ordering::Relaxed); // Relaxed: stats only
                if stats.hit_time_limit {
                    self.queries_timed_out.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
                }
            }
            Err(_) => {
                self.queries_failed.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
            }
        }
    }
}

/// A point-in-time copy of a session's [`SessionCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Queries dispatched (valid or not).
    pub queries_started: u64,
    /// Queries that ran to a result (including early-terminated ones).
    pub queries_ok: u64,
    /// Queries rejected with a [`SessionError`].
    pub queries_failed: u64,
    /// Successful queries that reported `hit_time_limit`.
    pub queries_timed_out: u64,
    /// Total embeddings reported across all successful queries.
    pub embeddings_reported: u64,
    /// Cacheable finishers answered from the session result cache.
    pub cache_hits: u64,
    /// Cacheable finishers that had to run (and, when complete, populated the cache).
    pub cache_misses: u64,
    /// Times the session result cache was dropped wholesale
    /// ([`Session::invalidate_cache`]: data-graph reloads and delta batches).
    pub cache_invalidations: u64,
    /// Delta batches applied through [`Session::apply_deltas`].
    pub deltas_applied: u64,
    /// New embeddings reported by incremental (delta-localized) match passes.
    pub incremental_matches: u64,
}

/// Default entry capacity a serving front-end passes to
/// [`Session::with_result_cache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// What a cacheable finisher asked for — part of the cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CacheMode {
    /// [`QueryRequest::count`] / [`QueryRequest::count_stats`].
    Count,
    /// [`QueryRequest::run`] with [`QueryRequest::first_k`] set to this `k`.
    FirstK(u64),
}

/// Canonicalized key of one cacheable query request: the query's labeled
/// adjacency (labels by vertex id + the canonical `a < b` sorted edge list)
/// plus the engine-agnostic semantics knobs — the embedding cap and the
/// finisher mode. Engine, thread count, pruning features, and time budgets are
/// deliberately **not** part of the key: every engine family answers the same
/// question, a complete result satisfies any budget, and results that were
/// truncated by a budget are never stored.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    labels: Vec<Label>,
    edges: Vec<(VertexId, VertexId)>,
    limit: Option<u64>,
    mode: CacheMode,
}

/// One memoized finisher result (embeddings empty for [`CacheMode::Count`]).
#[derive(Clone, Debug)]
struct CachedResult {
    stats: SearchStats,
    embeddings: Vec<Vec<VertexId>>,
}

/// Bounded FIFO memo behind the session's cacheable finishers.
#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<CacheKey, CachedResult>,
    order: VecDeque<CacheKey>,
    capacity: usize,
}

impl ResultCache {
    fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: CacheKey, value: CachedResult) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.map.remove(&oldest);
                }
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, value);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// A prepared-data session: one shared, immutable data-graph index plus default
/// query configuration. See the [module docs](self) for the workflow.
#[derive(Clone)]
pub struct Session {
    prepared: Arc<PreparedData>,
    defaults: GupConfig,
    counters: Arc<SessionCounters>,
    /// Result memo shared by every clone of this session (like the counters).
    /// Capacity 0 — the default — disables caching entirely.
    cache: Arc<Mutex<ResultCache>>,
}

impl Session {
    /// Prepares `data` (one pass building the signature arena and statistics) and
    /// opens a session over it with the default [`GupConfig`].
    pub fn new(data: Graph) -> Self {
        Session::from_prepared(Arc::new(PreparedData::new(data)))
    }

    /// Opens a session over an already-prepared index. This is how multiple threads
    /// (or multiple sessions with different defaults) share one `PreparedData`.
    pub fn from_prepared(prepared: Arc<PreparedData>) -> Self {
        Session {
            prepared,
            defaults: GupConfig::default(),
            counters: Arc::new(SessionCounters::new()),
            cache: Arc::new(Mutex::new(ResultCache::default())),
        }
    }

    /// Enables the session result cache with room for `capacity` memoized
    /// results (`0` disables it — the default). The cache memoizes the
    /// [`count`](QueryRequest::count) and
    /// [`first_k` + `run`](QueryRequest::run) finishers, keyed on the query's
    /// labeled adjacency and the embedding cap; see the field docs on
    /// [`CounterSnapshot`] for the hit/miss counters it feeds.
    ///
    /// Caching is opt-in because a hit answers from the memo *without running
    /// an engine*: correct (results are engine-agnostic), but not what a
    /// differential or ablation harness wants. Serving front-ends — where the
    /// same query arriving twice is common — turn it on.
    pub fn with_result_cache(mut self, capacity: usize) -> Self {
        self.cache = Arc::new(Mutex::new(ResultCache {
            capacity,
            ..ResultCache::default()
        }));
        self
    }

    /// Drops every memoized result and bumps the `cache_invalidations` counter.
    /// Every `PreparedData` mutation routes through here: `gup-serve` calls it on
    /// `reload`, and [`Session::apply_deltas`] calls it on every delta batch.
    pub fn invalidate_cache(&self) {
        self.cache.lock().clear();
        self.counters
            .cache_invalidations
            .fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
    }

    /// Entry capacity of the session result cache (0 when caching is disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache.lock().capacity
    }

    /// Applies a batch of [`GraphDelta`]s, returning a new session over the
    /// incrementally-updated index plus the batch's net [`DeltaEffects`].
    ///
    /// The new session shares this session's defaults and counters (running
    /// totals survive the mutation, like a `gup-serve` reload) and gets a fresh
    /// result cache of the same capacity; this session's cache is invalidated
    /// through [`Session::invalidate_cache`], since clones holding the old
    /// `Arc` would otherwise serve answers for a graph the caller considers
    /// stale. On error nothing is invalidated — the batch was rejected whole.
    pub fn apply_deltas(
        &self,
        deltas: &[GraphDelta],
    ) -> Result<(Session, DeltaEffects), DeltaError> {
        let (prepared, effects) = self.prepared.apply_with_effects(deltas)?;
        self.invalidate_cache();
        self.counters.deltas_applied.fetch_add(1, Ordering::Relaxed); // Relaxed: stats only
        let next = Session::from_prepared(Arc::new(prepared))
            .with_defaults(self.defaults.clone())
            .with_counters(Arc::clone(&self.counters))
            .with_result_cache(self.cache_capacity());
        Ok((next, effects))
    }

    /// Number of results currently memoized (0 when caching is disabled).
    pub fn cached_results(&self) -> usize {
        self.cache.lock().map.len()
    }

    /// Replaces the session's default configuration (each request clones it and may
    /// override knobs per query).
    pub fn with_defaults(mut self, defaults: GupConfig) -> Self {
        self.defaults = defaults;
        self
    }

    /// Shares an existing counter set instead of this session's own — how a serving
    /// front-end keeps one running total across data-graph reloads (each reload
    /// builds a new session over the new graph but threads the old counters in).
    pub fn with_counters(mut self, counters: Arc<SessionCounters>) -> Self {
        self.counters = counters;
        self
    }

    /// The session's query counters (shared by all clones of this session).
    pub fn counters(&self) -> &Arc<SessionCounters> {
        &self.counters
    }

    /// The shared prepared index.
    pub fn prepared(&self) -> &Arc<PreparedData> {
        &self.prepared
    }

    /// The underlying data graph.
    pub fn data(&self) -> &Graph {
        self.prepared.graph()
    }

    /// Time spent preparing the index (paid once per session).
    pub fn prep_time(&self) -> Duration {
        self.prepared.prep_time()
    }

    /// Starts a request for one query against this session's prepared data.
    pub fn query<'s, 'q>(&'s self, query: &'q Graph) -> QueryRequest<'s, 'q> {
        QueryRequest {
            session: self,
            query,
            engine: Engine::Gup,
            config: self.defaults.clone(),
            threads: 1,
            first_k: None,
        }
    }

    /// Starts a batch request (one configuration applied to a whole query set).
    pub fn batch(&self) -> BatchRequest<'_> {
        BatchRequest {
            session: self,
            engine: Engine::Gup,
            config: self.defaults.clone(),
            threads: 1,
        }
    }

    /// Runs a query set under the session defaults: every query through the shared
    /// prepared index, one shared deadline (when a time limit is configured),
    /// per-query stats and timing. Equivalent to `self.batch().run(queries)`.
    pub fn run_batch(&self, queries: &[Graph]) -> BatchReport {
        self.batch().run(queries)
    }
}

/// Result of [`QueryRequest::run`]: materialized embeddings (over original
/// query-vertex ids) plus the search counters.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// The embeddings retained by the request's sink (`first_k` keeps at most `k`).
    pub embeddings: Vec<Vec<VertexId>>,
    /// Unified search counters (baseline engines fill the subset they track).
    pub stats: SearchStats,
}

impl QueryOutcome {
    /// Number of embeddings found (whether or not they were materialized).
    pub fn embedding_count(&self) -> u64 {
        self.stats.embeddings
    }
}

/// Builder for one query against a [`Session`]. Obtained from [`Session::query`];
/// finished with [`QueryRequest::run`], [`QueryRequest::count`], or
/// [`QueryRequest::run_with_sink`].
pub struct QueryRequest<'s, 'q> {
    session: &'s Session,
    query: &'q Graph,
    engine: Engine,
    config: GupConfig,
    threads: usize,
    first_k: Option<u64>,
}

impl<'s, 'q> QueryRequest<'s, 'q> {
    /// Selects the engine family (default: [`Engine::Gup`]).
    pub fn method(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Number of worker threads for [`Engine::Gup`] (the work-stealing driver;
    /// other engines are sequential and ignore this). Default: 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Stops the search after `n` embeddings.
    pub fn limit(mut self, n: u64) -> Self {
        self.config.limits.max_embeddings = Some(n);
        self
    }

    /// Removes the embedding and time limits.
    pub fn unlimited(mut self) -> Self {
        self.config.limits = crate::config::SearchLimits::UNLIMITED;
        self
    }

    /// Per-query wall-clock limit.
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.config.limits.time_limit = Some(limit);
        self
    }

    /// Absolute per-query deadline. Takes precedence over
    /// [`QueryRequest::timeout`]; this is the knob for callers that fix the budget
    /// *before* the query runs (a serving front-end stamps the deadline at
    /// admission, so time spent queued counts against the request's budget).
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.config.limits.deadline = Some(deadline);
        self
    }

    /// Retain only the first `k` embeddings; the search stops at the `k`-th match
    /// ([`QueryRequest::run`] uses a [`FirstK`] sink, the other finishers fold `k`
    /// into the embedding limit).
    pub fn first_k(mut self, k: u64) -> Self {
        self.first_k = Some(k);
        self
    }

    /// Selects the pruning features for [`Engine::Gup`] (ablation-style toggles).
    pub fn features(mut self, features: crate::config::PruningFeatures) -> Self {
        self.config.features = features;
        self
    }

    /// Replaces the whole configuration for this request.
    pub fn config(mut self, config: GupConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the query, materializing embeddings (all of them, or the first `k` when
    /// [`QueryRequest::first_k`] was set) over original query-vertex ids.
    ///
    /// With [`QueryRequest::first_k`] set this finisher consults the session
    /// result cache (when enabled via [`Session::with_result_cache`]); a hit may
    /// return a first-`k` set found by a different engine — any valid one, since
    /// the key is engine-agnostic. Collect-all runs are never cached (unbounded
    /// payload).
    pub fn run(self) -> Result<QueryOutcome, SessionError> {
        if let Some(k) = self.first_k {
            let (stats, embeddings) = self.finish_cached(CacheMode::FirstK(k))?;
            Ok(QueryOutcome { embeddings, stats })
        } else {
            let mut sink = CollectAll::new();
            let stats = self.run_with_sink(&mut sink)?;
            Ok(QueryOutcome {
                embeddings: sink.into_embeddings(),
                stats,
            })
        }
    }

    /// Counts embeddings without materializing any (the cheapest finisher).
    /// Consults the session result cache when one is enabled
    /// ([`Session::with_result_cache`]).
    pub fn count(self) -> Result<u64, SessionError> {
        Ok(self.count_stats()?.embeddings)
    }

    /// Like [`QueryRequest::count`], but returns the full [`SearchStats`] —
    /// what a serving front-end reports per response line. On a cache hit the
    /// stats are the memoized run's (the work that was actually performed,
    /// once).
    pub fn count_stats(self) -> Result<SearchStats, SessionError> {
        let (stats, _embeddings) = self.finish_cached(CacheMode::Count)?;
        Ok(stats)
    }

    /// Shared implementation of the cacheable finishers: look up the memo,
    /// else run and (for complete results) populate it. Results truncated by a
    /// wall-clock or recursion budget are engine- and budget-dependent, so
    /// they are never stored; hits still feed the regular query counters so
    /// front-end totals stay meaningful.
    fn finish_cached(
        self,
        mode: CacheMode,
    ) -> Result<(SearchStats, Vec<Vec<VertexId>>), SessionError> {
        let session = self.session;
        let enabled = session.cache.lock().capacity > 0;
        let key = enabled.then(|| CacheKey {
            labels: self.query.labels().to_vec(),
            edges: self.query.edges().collect(),
            // The effective embedding cap: `first_k` folds into the limit for
            // counting finishers, exactly as `run_with_sink` applies it.
            limit: min_limit(self.config.limits.max_embeddings, self.first_k),
            mode,
        });
        if let Some(key) = &key {
            if let Some(hit) = session.cache.lock().get(key) {
                session.counters.record_cache_hit();
                session.counters.record(&Ok(hit.stats.clone()));
                return Ok((hit.stats, hit.embeddings));
            }
            session.counters.record_cache_miss();
        }
        let outcome = match mode {
            CacheMode::Count => {
                let mut sink = CountOnly::new();
                let stats = self.run_with_sink(&mut sink)?;
                (stats, Vec::new())
            }
            CacheMode::FirstK(k) => {
                let mut sink = FirstK::new(k);
                let stats = self.run_with_sink(&mut sink)?;
                (stats, sink.into_embeddings())
            }
        };
        if let Some(key) = key {
            if !outcome.0.hit_time_limit && !outcome.0.hit_recursion_limit {
                session.cache.lock().insert(
                    key,
                    CachedResult {
                        stats: outcome.0.clone(),
                        embeddings: outcome.1.clone(),
                    },
                );
            }
        }
        Ok(outcome)
    }

    /// Runs the query, streaming every embedding into `sink` over original
    /// query-vertex ids — the same [`EmbeddingSink`] protocol every engine speaks.
    /// Returns the unified [`SearchStats`].
    pub fn run_with_sink(
        mut self,
        sink: &mut dyn EmbeddingSink,
    ) -> Result<SearchStats, SessionError> {
        if let Some(k) = self.first_k {
            self.config.limits.max_embeddings =
                min_limit(self.config.limits.max_embeddings, Some(k));
        }
        dispatch(
            self.session,
            self.query,
            self.engine,
            self.config,
            self.threads,
            sink,
        )
    }
}

/// Routes one query to its engine family, all against the session's shared
/// [`PreparedData`]. The engine is monomorphized over the narrowest query-vertex
/// bitset width that fits the query (≤64 vertices compile to exactly the one-word
/// fast path), and the time budget is hoisted into one absolute deadline up front:
/// a budget that is already exhausted — e.g. by an earlier query of a batch —
/// fails fast with `hit_time_limit` before any filter pass runs. The filter pass
/// itself samples the hoisted deadline at a work-bounded cadence, so a budget
/// smaller than the candidate-space build also comes back as `hit_time_limit`
/// (within roughly one sampling interval) instead of blowing through the budget.
fn dispatch(
    session: &Session,
    query: &Graph,
    engine: Engine,
    config: GupConfig,
    threads: usize,
    sink: &mut dyn EmbeddingSink,
) -> Result<SearchStats, SessionError> {
    let result = dispatch_inner(session, query, engine, config, threads, sink);
    session.counters.record(&result);
    result
}

fn dispatch_inner(
    session: &Session,
    query: &Graph,
    engine: Engine,
    mut config: GupConfig,
    threads: usize,
    sink: &mut dyn EmbeddingSink,
) -> Result<SearchStats, SessionError> {
    let prepared: &PreparedData = &session.prepared;
    // Hoist the budget once so every engine (and every parallel worker) shares the
    // same clock, then fail fast when nothing of it remains: an expired deadline
    // must not buy a candidate-space build, a filter pass, or an unlimited run.
    config.limits.deadline = config.limits.effective_deadline();
    if let Some(deadline) = config.limits.deadline {
        if deadline_passed(deadline) {
            return Ok(timed_out_stats());
        }
    }
    match engine {
        Engine::Gup => crate::with_qv_width!(query.vertex_count(), W, {
            let matcher = match GupMatcher::<W>::with_prepared(query, prepared, config) {
                Ok(matcher) => matcher,
                Err(GupError::FilterTimeout) => return Ok(timed_out_stats()),
                Err(e) => return Err(e.into()),
            };
            Ok(if threads > 1 {
                matcher.run_parallel_with_sink(threads, sink)
            } else {
                matcher.run_with_sink(sink)
            })
        }),
        Engine::Plain | Engine::Daf | Engine::Gql | Engine::Ri => {
            // This arm is exactly the backtracking-baseline engines, so the kind
            // can be matched directly — no Option, nothing to unwrap.
            let kind = match engine {
                Engine::Daf => BaselineKind::DafFailingSet,
                Engine::Gql => BaselineKind::GqlStyle,
                Engine::Ri => BaselineKind::RiStyle,
                _ => BaselineKind::Plain,
            };
            crate::with_qv_width!(query.vertex_count(), W, {
                let matcher = match BacktrackingBaseline::<W>::with_prepared_deadline(
                    query,
                    prepared,
                    kind,
                    config.limits.deadline,
                ) {
                    Ok(matcher) => matcher,
                    Err(BaselineError::FilterTimeout) => return Ok(timed_out_stats()),
                    Err(e) => return Err(e.into()),
                };
                let result = matcher.run_with_sink(baseline_limits(&config), sink);
                Ok(stats_from_baseline(&result))
            })
        }
        Engine::Join => {
            let matcher = match JoinBaseline::with_prepared_deadline(
                query,
                prepared,
                OrderingStrategy::GqlStyle,
                config.limits.deadline,
            ) {
                Ok(matcher) => matcher,
                Err(BaselineError::FilterTimeout) => return Ok(timed_out_stats()),
                Err(e) => return Err(e.into()),
            };
            let result = matcher.run_with_sink(baseline_limits(&config), sink);
            Ok(stats_from_baseline(&result))
        }
        Engine::BruteForce => {
            // Validate up front so the oracle rejects exactly the queries every
            // other engine rejects (it could otherwise enumerate disconnected ones).
            QueryGraph::new(query.clone()).map_err(SessionError::InvalidQuery)?;
            let configured_limit = config.limits.max_embeddings;
            let capacity = sink.capacity();
            let deadline = config.limits.deadline;
            let mut limited = LimitSink {
                inner: sink,
                reported: 0,
                max: min_limit(configured_limit, capacity),
                deadline,
                hit_limit: false,
                hit_deadline: false,
                inner_stopped: false,
            };
            // The deadline is threaded into the enumeration itself (sampled every
            // `brute_force::DEADLINE_CHECK_INTERVAL` steps), so a zero-match query
            // — whose sink is never called — still observes the budget.
            let expired = brute_force::enumerate_with_sink_prepared_deadline(
                query,
                prepared,
                &mut limited,
                deadline,
            );
            let mut stats = SearchStats {
                embeddings: limited.reported,
                hit_embedding_limit: limited.hit_limit,
                hit_time_limit: limited.hit_deadline || expired,
                stopped_by_sink: limited.inner_stopped,
                ..SearchStats::default()
            };
            stats.attribute_capacity_stop(configured_limit, capacity);
            Ok(stats)
        }
    }
}

/// The uniform outcome for a budget that expired before or during the filter
/// pass: not an error, just a search that never got to run.
fn timed_out_stats() -> SearchStats {
    SearchStats {
        hit_time_limit: true,
        ..SearchStats::default()
    }
}

/// Translates the session's limits into the baseline engines' record. A hoisted
/// shared deadline (batch mode) becomes the remaining wall-clock budget. An
/// already-expired deadline never reaches this point — [`dispatch`] fails fast
/// before constructing an engine — so the saturation to `Duration::ZERO` can only
/// shave the final scheduling jitter, not silently grant an unlimited run.
fn baseline_limits(config: &GupConfig) -> BaselineLimits {
    let time_limit = match config.limits.deadline {
        Some(deadline) => Some(remaining_until(deadline)),
        None => config.limits.time_limit,
    };
    BaselineLimits {
        max_embeddings: config.limits.max_embeddings,
        time_limit,
    }
}

/// Lifts a [`BaselineResult`] into the unified [`SearchStats`] record (the counters
/// the baselines do not track stay zero).
fn stats_from_baseline(result: &BaselineResult) -> SearchStats {
    SearchStats {
        embeddings: result.embeddings,
        recursions: result.recursions,
        futile_recursions: result.futile_recursions,
        hit_embedding_limit: result.hit_embedding_limit,
        hit_time_limit: result.hit_time_limit,
        stopped_by_sink: result.stopped_by_sink,
        ..SearchStats::default()
    }
}

/// Enforces an embedding limit and a wall-clock deadline around a sink for engines
/// that do not implement the limit themselves (the brute-force oracle). The
/// deadline here fires between reported embeddings; the stretch-of-search-finding-
/// nothing case is covered by the deadline threaded into the enumeration itself
/// ([`brute_force::enumerate_with_sink_prepared_deadline`]).
struct LimitSink<'a> {
    inner: &'a mut dyn EmbeddingSink,
    reported: u64,
    max: Option<u64>,
    deadline: Option<Instant>,
    hit_limit: bool,
    hit_deadline: bool,
    inner_stopped: bool,
}

impl EmbeddingSink for LimitSink<'_> {
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl {
        if let Some(deadline) = self.deadline {
            if deadline_passed(deadline) {
                self.hit_deadline = true;
                return SinkControl::Stop;
            }
        }
        if let Some(max) = self.max {
            if self.reported >= max {
                self.hit_limit = true;
                return SinkControl::Stop;
            }
        }
        self.reported += 1;
        if self.inner.report(embedding) == SinkControl::Stop {
            self.inner_stopped = true;
            return SinkControl::Stop;
        }
        if self.max.is_some_and(|max| self.reported >= max) {
            self.hit_limit = true;
            return SinkControl::Stop;
        }
        SinkControl::Continue
    }

    fn wants_embeddings(&self) -> bool {
        self.inner.wants_embeddings()
    }
}

/// Builder for a batch run: one engine + configuration applied to a whole query
/// set. Obtained from [`Session::batch`].
pub struct BatchRequest<'s> {
    session: &'s Session,
    engine: Engine,
    config: GupConfig,
    threads: usize,
}

impl<'s> BatchRequest<'s> {
    /// Selects the engine family (default: [`Engine::Gup`]).
    pub fn method(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Number of worker threads for [`Engine::Gup`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Per-query embedding cap.
    pub fn limit(mut self, n: u64) -> Self {
        self.config.limits.max_embeddings = Some(n);
        self
    }

    /// Removes the embedding and time limits.
    pub fn unlimited(mut self) -> Self {
        self.config.limits = crate::config::SearchLimits::UNLIMITED;
        self
    }

    /// Wall-clock budget for the **whole batch**: hoisted into one absolute
    /// deadline shared by every query (and every parallel worker).
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.config.limits.time_limit = Some(limit);
        self
    }

    /// Pruning features for [`Engine::Gup`].
    pub fn features(mut self, features: crate::config::PruningFeatures) -> Self {
        self.config.features = features;
        self
    }

    /// Runs the whole query set through the shared prepared index, counting each
    /// query's embeddings through one reused counting sink. Invalid queries are
    /// reported per entry instead of aborting the batch.
    pub fn run(&self, queries: &[Graph]) -> BatchReport {
        let mut config = self.config.clone();
        // One shared deadline: the batch's time budget starts now and is observed by
        // every query (and inherited by the baselines as remaining wall-clock time).
        config.limits.deadline = config.limits.effective_deadline();
        let prep_time = self.session.prep_time();
        let prep_amortized = if queries.is_empty() {
            Duration::ZERO
        } else {
            prep_time / queries.len() as u32
        };
        let batch_watch = Stopwatch::started();
        let mut sink = CountOnly::new();
        let mut reports = Vec::with_capacity(queries.len());
        for (index, query) in queries.iter().enumerate() {
            let watch = Stopwatch::started();
            let result = dispatch(
                self.session,
                query,
                self.engine,
                config.clone(),
                self.threads,
                &mut sink,
            );
            reports.push(QueryReport {
                index,
                result,
                elapsed: watch.elapsed(),
                prep_amortized,
            });
        }
        BatchReport {
            prep_time,
            prepared_index_bytes: self.session.prepared.index_bytes(),
            total_elapsed: batch_watch.elapsed(),
            queries: reports,
        }
    }
}

/// Per-query entry of a [`BatchReport`].
#[derive(Debug)]
pub struct QueryReport {
    /// Position of the query in the batch.
    pub index: usize,
    /// The query's unified stats, or why it could not run.
    pub result: Result<SearchStats, SessionError>,
    /// Wall-clock time of this query alone (preparation excluded — that is the
    /// point of the session model).
    pub elapsed: Duration,
    /// The session's one-time preparation cost divided by the batch size: add it to
    /// `elapsed` to compare against a cold `(query, data)` run honestly.
    pub prep_amortized: Duration,
}

impl QueryReport {
    /// Embeddings found (0 for failed queries).
    pub fn embeddings(&self) -> u64 {
        self.result.as_ref().map_or(0, |s| s.embeddings)
    }
}

/// Result of a batch run: per-query reports plus the once-per-session costs.
#[derive(Debug)]
pub struct BatchReport {
    /// Time the session spent preparing the shared index (paid once, **not** per
    /// query; also available as [`Session::prep_time`]).
    pub prep_time: Duration,
    /// Heap bytes of the shared prepared index.
    pub prepared_index_bytes: usize,
    /// Wall-clock time of the whole batch (preparation excluded).
    pub total_elapsed: Duration,
    /// One report per query, in input order.
    pub queries: Vec<QueryReport>,
}

impl BatchReport {
    /// Total embeddings found across the batch.
    pub fn total_embeddings(&self) -> u64 {
        self.queries.iter().map(QueryReport::embeddings).sum()
    }

    /// Number of queries that ran without error.
    pub fn succeeded(&self) -> usize {
        self.queries.iter().filter(|q| q.result.is_ok()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruningFeatures;
    use gup_graph::fixtures;

    #[test]
    fn every_engine_agrees_on_the_paper_example() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        for engine in Engine::ALL {
            let n = session.query(&query).method(engine).unlimited().count();
            assert_eq!(n.unwrap(), 4, "engine {}", engine.name());
        }
    }

    #[test]
    fn builder_knobs_compose() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        let outcome = session
            .query(&query)
            .features(PruningFeatures::NONE)
            .threads(2)
            .limit(3)
            .run()
            .unwrap();
        assert_eq!(outcome.embedding_count(), 3);
        assert_eq!(outcome.embeddings.len(), 3);
        let first = session.query(&query).first_k(2).run().unwrap();
        assert_eq!(first.embeddings.len(), 2);
        assert!(first.stats.terminated_early());
    }

    #[test]
    fn invalid_queries_error_uniformly() {
        let (_q, data) = fixtures::paper_example();
        let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let session = Session::new(data);
        for engine in Engine::ALL {
            let err = session
                .query(&disconnected)
                .method(engine)
                .count()
                .unwrap_err();
            assert!(
                matches!(err, SessionError::InvalidQuery(_)),
                "engine {}",
                engine.name()
            );
            assert!(format!("{err}").contains("invalid query"));
        }
    }

    #[test]
    fn batch_reports_prep_once_and_per_query_stats() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        let queries = vec![query.clone(), fixtures::triangle_query(), query];
        let report = session.batch().unlimited().run(&queries);
        assert_eq!(report.queries.len(), 3);
        assert_eq!(report.succeeded(), 3);
        // Paper query twice (4 each) + the triangle in the paper data graph (2).
        assert_eq!(report.total_embeddings(), 10);
        for q in &report.queries {
            assert_eq!(q.prep_amortized, report.prep_time / 3);
        }
        assert_eq!(
            report.prepared_index_bytes,
            session.prepared().index_bytes()
        );
    }

    #[test]
    fn batch_isolates_invalid_queries() {
        let (query, data) = fixtures::paper_example();
        let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let session = Session::new(data);
        let report = session
            .batch()
            .method(Engine::Daf)
            .unlimited()
            .run(&[query, disconnected]);
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.total_embeddings(), 4);
        assert!(report.queries[1].result.is_err());
    }

    #[test]
    fn sessions_share_one_prepared_index() {
        let (query, data) = fixtures::paper_example();
        let prepared = Arc::new(PreparedData::new(data));
        let a = Session::from_prepared(Arc::clone(&prepared));
        let b = Session::from_prepared(Arc::clone(&prepared));
        assert_eq!(a.query(&query).unlimited().count().unwrap(), 4);
        assert_eq!(b.query(&query).unlimited().count().unwrap(), 4);
        assert!(Arc::ptr_eq(a.prepared(), b.prepared()));
    }

    #[test]
    fn brute_force_honors_an_expired_deadline() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        // A deadline already in the past stops the oracle at its first report.
        let stats = session
            .query(&query)
            .method(Engine::BruteForce)
            .unlimited()
            .timeout(Duration::ZERO)
            .run_with_sink(&mut CountOnly::new())
            .unwrap();
        assert_eq!(stats.embeddings, 0);
        assert!(stats.hit_time_limit);
        // And the same through a batch's shared deadline.
        let report = session
            .batch()
            .method(Engine::BruteForce)
            .unlimited()
            .timeout(Duration::ZERO)
            .run(&[query]);
        assert!(report.queries[0].result.as_ref().unwrap().hit_time_limit);
    }

    #[test]
    fn counters_accumulate_across_clones_and_reloads() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data.clone());
        assert_eq!(session.counters().snapshot(), CounterSnapshot::default());
        session.query(&query).unlimited().count().unwrap();
        let clone = session.clone();
        clone.query(&query).unlimited().count().unwrap();
        let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let _ = clone.query(&disconnected).count();
        // Clones share one counter set.
        let snap = session.counters().snapshot();
        assert_eq!(snap.queries_started, 3);
        assert_eq!(snap.queries_ok, 2);
        assert_eq!(snap.queries_failed, 1);
        assert_eq!(snap.embeddings_reported, 8);
        // A "reload" (new session, same counters) keeps the running totals.
        let reloaded = Session::new(data).with_counters(Arc::clone(session.counters()));
        reloaded.query(&query).unlimited().count().unwrap();
        assert_eq!(session.counters().snapshot().queries_started, 4);
    }

    #[test]
    fn expired_deadline_counts_as_timed_out() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        let stats = session
            .query(&query)
            .unlimited()
            .deadline(Instant::now() - Duration::from_millis(1))
            .run_with_sink(&mut CountOnly::new())
            .unwrap();
        assert!(stats.hit_time_limit);
        assert_eq!(stats.embeddings, 0);
        let snap = session.counters().snapshot();
        assert_eq!(snap.queries_timed_out, 1);
        assert_eq!(snap.queries_ok, 1);
    }

    #[test]
    fn absolute_deadline_takes_precedence_over_timeout() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        // A generous relative timeout does not resurrect an expired deadline.
        let stats = session
            .query(&query)
            .unlimited()
            .timeout(Duration::from_secs(3600))
            .deadline(Instant::now() - Duration::from_millis(1))
            .run_with_sink(&mut CountOnly::new())
            .unwrap();
        assert!(stats.hit_time_limit);
    }

    #[test]
    fn filter_timeout_error_displays_and_converts() {
        let err = SessionError::from(GupError::FilterTimeout);
        assert!(matches!(err, SessionError::FilterTimeout));
        assert!(format!("{err}").contains("filter pass"));
        let err = SessionError::from(BaselineError::FilterTimeout);
        assert!(matches!(err, SessionError::FilterTimeout));
    }

    #[test]
    fn cache_disabled_by_default() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        session.query(&query).unlimited().count().unwrap();
        session.query(&query).unlimited().count().unwrap();
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(session.cached_results(), 0);
    }

    #[test]
    fn cache_hits_repeat_counts_and_feeds_counters() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        assert_eq!(session.query(&query).unlimited().count().unwrap(), 4);
        assert_eq!(session.cached_results(), 1);
        // Second run — and a clone's run — are answered from the memo.
        assert_eq!(session.query(&query).unlimited().count().unwrap(), 4);
        assert_eq!(
            session.clone().query(&query).unlimited().count().unwrap(),
            4
        );
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 2);
        // Hits still count as served queries.
        assert_eq!(snap.queries_started, 3);
        assert_eq!(snap.embeddings_reported, 12);
    }

    #[test]
    fn cache_key_separates_limits_and_modes() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        assert_eq!(session.query(&query).unlimited().count().unwrap(), 4);
        // A capped count is a different question, not a hit.
        assert_eq!(
            session.query(&query).unlimited().limit(2).count().unwrap(),
            2
        );
        // So is a first-k run, and a first-k count (k folds into the limit).
        let first = session.query(&query).unlimited().first_k(2).run().unwrap();
        assert_eq!(first.embeddings.len(), 2);
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 3);
        assert_eq!(session.cached_results(), 3);
        // Re-asking each question hits.
        assert_eq!(
            session.query(&query).unlimited().limit(2).count().unwrap(),
            2
        );
        let again = session.query(&query).unlimited().first_k(2).run().unwrap();
        assert_eq!(again.embeddings, first.embeddings);
        assert_eq!(session.counters().snapshot().cache_hits, 2);
    }

    #[test]
    fn cache_is_engine_agnostic() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        assert_eq!(
            session
                .query(&query)
                .method(Engine::Daf)
                .unlimited()
                .count()
                .unwrap(),
            4
        );
        // The same question through any other engine is a hit: one miss total.
        for engine in Engine::ALL {
            assert_eq!(
                session
                    .query(&query)
                    .method(engine)
                    .unlimited()
                    .count()
                    .unwrap(),
                4,
                "engine {}",
                engine.name()
            );
        }
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, Engine::ALL.len() as u64);
    }

    #[test]
    fn timed_out_results_are_not_cached() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        let stats = session
            .query(&query)
            .unlimited()
            .deadline(Instant::now() - Duration::from_millis(1))
            .count_stats()
            .unwrap();
        assert!(stats.hit_time_limit);
        assert_eq!(session.cached_results(), 0);
        // The truncated answer must not poison the real one.
        assert_eq!(session.query(&query).unlimited().count().unwrap(), 4);
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 2);
    }

    #[test]
    fn invalidate_cache_forces_a_rerun() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        session.query(&query).unlimited().count().unwrap();
        assert_eq!(session.cached_results(), 1);
        session.invalidate_cache();
        assert_eq!(session.cached_results(), 0);
        session.query(&query).unlimited().count().unwrap();
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 2);
    }

    #[test]
    fn cache_capacity_is_bounded_fifo() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(2);
        let triangle = fixtures::triangle_query();
        session.query(&query).unlimited().count().unwrap();
        session.query(&triangle).unlimited().count().unwrap();
        assert_eq!(session.cached_results(), 2);
        // A third distinct question evicts the oldest (the paper query).
        session.query(&query).unlimited().limit(1).count().unwrap();
        assert_eq!(session.cached_results(), 2);
        session.query(&query).unlimited().count().unwrap();
        let snap = session.counters().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.cache_misses, 4);
    }

    #[test]
    fn failed_queries_are_not_cached() {
        let (_q, data) = fixtures::paper_example();
        let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        assert!(session.query(&disconnected).count().is_err());
        assert_eq!(session.cached_results(), 0);
    }

    #[test]
    fn invalidations_are_counted() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        session.query(&query).unlimited().count().unwrap();
        session.invalidate_cache();
        session.invalidate_cache();
        assert_eq!(session.counters().snapshot().cache_invalidations, 2);
    }

    #[test]
    fn apply_deltas_updates_index_and_counters() {
        use gup_graph::delta::GraphDelta;
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data).with_result_cache(DEFAULT_CACHE_CAPACITY);
        assert_eq!(session.query(&query).unlimited().count().unwrap(), 4);
        assert_eq!(session.cached_results(), 1);
        // Delete one data edge: the old session's cache is dropped, the new
        // session answers against the mutated graph with shared counters.
        let victim = session.data().edges().next().unwrap();
        let (next, effects) = session
            .apply_deltas(&[GraphDelta::RemoveEdge {
                a: victim.0,
                b: victim.1,
            }])
            .unwrap();
        assert_eq!(effects.removed_edges, vec![victim]);
        assert_eq!(session.cached_results(), 0);
        assert_eq!(next.cache_capacity(), DEFAULT_CACHE_CAPACITY);
        assert!(Arc::ptr_eq(session.counters(), next.counters()));
        assert_eq!(next.data().edge_count(), session.data().edge_count() - 1);
        let snap = session.counters().snapshot();
        assert_eq!(snap.deltas_applied, 1);
        assert_eq!(snap.cache_invalidations, 1);
        // An invalid batch mutates nothing and invalidates nothing.
        next.query(&query).unlimited().count().unwrap();
        let cached = next.cached_results();
        assert!(next
            .apply_deltas(&[GraphDelta::RemoveEdge {
                a: victim.0,
                b: victim.1,
            }])
            .is_err());
        assert_eq!(next.cached_results(), cached);
        assert_eq!(session.counters().snapshot().deltas_applied, 1);
    }

    #[test]
    fn brute_force_respects_limits_and_sinks() {
        let (query, data) = fixtures::paper_example();
        let session = Session::new(data);
        let limited = session
            .query(&query)
            .method(Engine::BruteForce)
            .limit(2)
            .run()
            .unwrap();
        assert_eq!(limited.embedding_count(), 2);
        assert!(limited.stats.hit_embedding_limit);
        let first = session
            .query(&query)
            .method(Engine::BruteForce)
            .unlimited()
            .first_k(1)
            .run()
            .unwrap();
        assert_eq!(first.embeddings.len(), 1);
        assert!(first.stats.stopped_by_sink);
    }
}
