//! Reservation-guard generation (paper §3.2.2, Algorithm 1).
//!
//! For every candidate vertex `(u_i, v)` we pick a *reservation*: a set of data
//! vertices that every subembedding rooted at `(u_i, v)` must use. Generation walks the
//! query vertices in reverse matching order and, for each forward neighbor `u_j`,
//! builds the graph `G_R` of Eq. (1) and covers it with a small vertex cover
//! (Lemma 3.11), subject to two constraints:
//!
//! * **matchability** (Lemma 3.7): a reservation that no partial embedding can ever
//!   contain is useless, so candidate sets are rejected when condition (i) or (ii) of
//!   the lemma holds;
//! * **size limit `r`** (default 3): large reservations are rarely matched and are
//!   expensive to generate and test (§3.2.2, Fig. 8).
//!
//! The smallest matchable cover over all forward neighbors becomes the reservation
//! guard; if none exists, the trivial reservation `{v}` is used. Note that correctness
//! never depends on how small or how matchable the chosen reservation is — any set
//! satisfying Definition 3.9 is a valid reservation (Lemma 3.10) — so the heuristics
//! here only influence pruning power.

use crate::guards::ReservationGuard;
use gup_candidate::CandidateSpace;
use gup_graph::query::OrderedQuery;
use gup_graph::{QVSet, VertexId};

/// Inverse candidate index: for each data vertex, the set of query vertices that have
/// it as a candidate (`C⁻¹(v)` in the paper).
pub(crate) struct InverseCandidates<const W: usize> {
    sets: Vec<QVSet<W>>,
}

impl<const W: usize> InverseCandidates<W> {
    /// Builds the inverse index from a candidate space. `data_vertex_count` bounds the
    /// data-vertex id range.
    pub(crate) fn build(space: &CandidateSpace, data_vertex_count: usize) -> Self {
        let mut sets = vec![QVSet::EMPTY; data_vertex_count];
        for u in 0..space.query_vertex_count() {
            for &v in space.candidates(u) {
                sets[v as usize].insert(u);
            }
        }
        InverseCandidates { sets }
    }

    /// `C⁻¹(v)[: i]`: query vertices earlier than `u_i` that have `v` as a candidate.
    #[inline]
    fn before(&self, v: VertexId, i: usize) -> QVSet<W> {
        self.sets[v as usize].below(i)
    }
}

/// Checks Lemma 3.7: returns `true` if some partial embedding of length `i` could
/// contain assignments to every vertex of `set`.
///
/// Condition (i): every member must be a candidate of some query vertex before `u_i`.
/// Condition (ii): Hall-style counting — no subset may be larger than the union of the
/// query vertices (before `u_i`) it can be assigned from. Subsets are enumerated
/// exhaustively up to 12 members; for larger sets only the full set and singletons are
/// checked (an over-approximation of matchability, which can only cost pruning power,
/// never correctness).
pub(crate) fn is_matchable<const W: usize>(
    set: &[VertexId],
    i: usize,
    inverse: &InverseCandidates<W>,
) -> bool {
    // Condition (i).
    let per_vertex: Vec<QVSet<W>> = set.iter().map(|&v| inverse.before(v, i)).collect();
    if per_vertex.iter().any(|s| s.is_empty()) {
        return false;
    }
    let k = set.len();
    if k <= 12 {
        // Condition (ii), exhaustively over non-empty subsets.
        for mask in 1u32..(1u32 << k) {
            let mut union = QVSet::EMPTY;
            let size = mask.count_ones() as usize;
            for (idx, s) in per_vertex.iter().enumerate() {
                if mask & (1 << idx) != 0 {
                    union |= *s;
                }
            }
            if size > union.len() {
                return false;
            }
        }
        true
    } else {
        let mut union = QVSet::EMPTY;
        for s in &per_vertex {
            union |= *s;
        }
        k <= union.len()
    }
}

/// Greedy vertex cover of the edge list `edges`, constrained to stay matchable and to
/// contain at most `limit` vertices. Follows the 2-approximation of CLRS (add both
/// endpoints of an uncovered edge), falling back to a single endpoint when adding both
/// would violate a constraint. Returns `None` when no constrained cover is found.
pub(crate) fn constrained_vertex_cover<const W: usize>(
    edges: &[(VertexId, VertexId)],
    limit: Option<usize>,
    i: usize,
    inverse: &InverseCandidates<W>,
) -> Option<Vec<VertexId>> {
    let fits = |s: &[VertexId]| limit.map_or(true, |r| s.len() <= r);
    let mut cover: Vec<VertexId> = Vec::new();
    for &(a, b) in edges {
        if cover.contains(&a) || cover.contains(&b) {
            continue;
        }
        // Try both endpoints (classic 2-approximation), then each endpoint alone.
        let mut with_both = cover.clone();
        with_both.push(a);
        if b != a {
            with_both.push(b);
        }
        if fits(&with_both) && is_matchable(&with_both, i, inverse) {
            cover = with_both;
            continue;
        }
        let mut with_a = cover.clone();
        with_a.push(a);
        if fits(&with_a) && is_matchable(&with_a, i, inverse) {
            cover = with_a;
            continue;
        }
        if b != a {
            let mut with_b = cover.clone();
            with_b.push(b);
            if fits(&with_b) && is_matchable(&with_b, i, inverse) {
                cover = with_b;
                continue;
            }
        }
        return None;
    }
    Some(cover)
}

/// Generates the reservation guards of every candidate vertex (Algorithm 1).
///
/// `size_limit` is the paper's `r` (`None` = unbounded, the "r = ∞" setting of Fig. 8).
pub fn generate_reservation_guards<const W: usize>(
    query: &OrderedQuery<W>,
    space: &CandidateSpace,
    data_vertex_count: usize,
    size_limit: Option<usize>,
) -> Vec<Vec<ReservationGuard>> {
    let n = query.vertex_count();
    let inverse = InverseCandidates::<W>::build(space, data_vertex_count);
    let mut guards: Vec<Vec<ReservationGuard>> = (0..n)
        .map(|u| vec![ReservationGuard::default(); space.candidates(u).len()])
        .collect();

    // Reverse matching order so that forward neighbors are already processed.
    for i in (0..n).rev() {
        for (ci, &v) in space.candidates(i).iter().enumerate() {
            let mut best: Option<Vec<VertexId>> = None;
            for &j in query.forward_neighbors(i) {
                // Build E_R (Eq. 1): for every forward-adjacent candidate v' of u_j,
                // connect v' with each member of R(u_j, v') other than v.
                let adjacent = space.adjacent_candidates(i, ci, j);
                let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
                for &cj in adjacent {
                    let v_prime = space.candidates(j)[cj as usize];
                    for &w in guards[j][cj as usize].vertices() {
                        if w != v {
                            edges.push((v_prime, w));
                        }
                    }
                }
                let candidate_cover = constrained_vertex_cover(&edges, size_limit, i, &inverse);
                if let Some(cover) = candidate_cover {
                    let better = match &best {
                        None => true,
                        Some(b) => cover.len() < b.len(),
                    };
                    if better {
                        let empty = cover.is_empty();
                        best = Some(cover);
                        if empty {
                            // Nothing can beat the empty reservation.
                            break;
                        }
                    }
                }
            }
            guards[i][ci] = match best {
                Some(cover) => ReservationGuard::new(cover),
                None => ReservationGuard::trivial(v),
            };
        }
    }
    guards
}

/// Total heap bytes used by a reservation-guard table (for the Table-3 memory report).
pub fn reservation_heap_bytes(guards: &[Vec<ReservationGuard>]) -> usize {
    guards
        .iter()
        .map(|per_vertex| {
            per_vertex
                .iter()
                .map(ReservationGuard::heap_bytes)
                .sum::<usize>()
                + per_vertex.capacity() * std::mem::size_of::<ReservationGuard>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_candidate::{CandidateSpace, FilterConfig};
    use gup_graph::fixtures::paper_example;
    use gup_graph::QueryGraph;

    fn paper_setup() -> (OrderedQuery, CandidateSpace, usize) {
        let (q, d) = paper_example();
        let cs = CandidateSpace::build(&q, &d, &FilterConfig::default());
        let query = QueryGraph::new(q).unwrap();
        // Identity order: the paper's own numbering u0..u4 is already connected.
        let order: Vec<u32> = (0..query.vertex_count() as u32).collect();
        let oq = query.with_order(&order).unwrap();
        (oq, cs, d.vertex_count())
    }

    #[test]
    fn inverse_candidates_reflect_membership() {
        let (_oq, cs, n) = paper_setup();
        let inv = InverseCandidates::<1>::build(&cs, n);
        // v0 (label A) is a candidate of u0 and u4 only.
        assert_eq!(inv.sets[0], QVSet::from_iter([0, 4]));
        // Restriction below u1 keeps only u0.
        assert_eq!(inv.before(0, 1), QVSet::from_iter([0]));
        assert_eq!(inv.before(0, 0), QVSet::EMPTY);
    }

    #[test]
    fn matchability_conditions() {
        let (_oq, cs, n) = paper_setup();
        let inv = InverseCandidates::<1>::build(&cs, n);
        // Example 3.8 of the paper: {v0, v1} is NOT matchable as a reservation guard of
        // a u1 candidate because both can only be assigned from u0 before u1.
        assert!(!is_matchable(&[0, 1], 1, &inv));
        // A single one of them is matchable before u1.
        assert!(is_matchable(&[0], 1, &inv));
        // Before u0 nothing is assigned, so nothing is matchable (condition (i)).
        assert!(!is_matchable(&[0], 0, &inv));
        // Both are matchable before u5 (u0 and u4 both precede it conceptually).
        assert!(is_matchable(&[0, 1], 5, &inv));
        // A data vertex that is nobody's candidate is never matchable.
        assert!(!is_matchable(&[2, 6], 1, &inv) || !inv.before(6, 1).is_empty());
    }

    #[test]
    fn constrained_cover_respects_limit_and_matchability() {
        let (_oq, cs, n) = paper_setup();
        let inv = InverseCandidates::<1>::build(&cs, n);
        // Edges that force {v0} as a cover at i = 4 (v0 is assignable from u0 before u4).
        let edges = vec![(0u32, 0u32)];
        let cover = constrained_vertex_cover(&edges, Some(3), 4, &inv).unwrap();
        assert_eq!(cover, vec![0]);
        // Empty edge list -> empty cover.
        assert_eq!(
            constrained_vertex_cover(&[], Some(3), 2, &inv).unwrap(),
            Vec::<u32>::new()
        );
        // A cover that would need an unmatchable vertex fails.
        // v13 is not a candidate of anything before u1 after NLF, so covering a
        // self-loop on v13 at i = 1 is impossible.
        assert!(constrained_vertex_cover(&[(13, 13)], Some(3), 1, &inv).is_none());
        // Size limit 0 rejects any non-empty cover.
        assert!(constrained_vertex_cover(&[(0, 0)], Some(0), 4, &inv).is_none());
    }

    #[test]
    fn generation_produces_guard_per_candidate() {
        let (oq, cs, n) = paper_setup();
        let guards = generate_reservation_guards(&oq, &cs, n, Some(3));
        assert_eq!(guards.len(), 5);
        for (u, per_candidate) in guards.iter().enumerate() {
            assert_eq!(per_candidate.len(), cs.candidates(u).len());
            for g in per_candidate {
                assert!(g.len() <= 3 || g.is_empty());
            }
        }
        // The last query vertex has no forward neighbors: all guards are trivial.
        let last = 4;
        for (ci, g) in guards[last].iter().enumerate() {
            assert!(g.is_trivial_for(cs.candidates(last)[ci]));
        }
        assert!(reservation_heap_bytes(&guards) > 0);
    }

    #[test]
    fn size_limit_is_respected() {
        let (oq, cs, n) = paper_setup();
        for limit in [0usize, 1, 2, 3, 5] {
            let guards = generate_reservation_guards(&oq, &cs, n, Some(limit));
            for per_vertex in &guards {
                for (ci, g) in per_vertex.iter().enumerate() {
                    // Trivial guards always have size 1 regardless of the limit.
                    let _ = ci;
                    assert!(g.len() <= limit.max(1));
                }
            }
        }
    }

    #[test]
    fn unlimited_guards_never_smaller_coverage_than_limited() {
        let (oq, cs, n) = paper_setup();
        let limited = generate_reservation_guards(&oq, &cs, n, Some(1));
        let unlimited = generate_reservation_guards(&oq, &cs, n, None);
        // Both tables must exist and have identical shape.
        for u in 0..5 {
            assert_eq!(limited[u].len(), unlimited[u].len());
        }
    }
}
