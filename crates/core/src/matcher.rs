//! High-level matcher API.
//!
//! [`GupMatcher`] ties the pipeline together: build the GCS once, then run one or more
//! searches over it (sequentially or in parallel). For one-shot use there are the
//! convenience functions [`find_embeddings`] and [`count_embeddings`].

use crate::config::GupConfig;
use crate::gcs::{Gcs, GupError};
use crate::search::{SearchEngine, SearchOutcome};
use crate::stats::{MemoryReport, SearchStats};
use gup_graph::sink::{CountOnly, EmbeddingSink, SinkControl};
use gup_graph::{Graph, PreparedData, VertexId};

/// Result of a matching run.
#[derive(Clone, Debug, Default)]
pub struct MatchResult {
    /// Found embeddings, expressed over the *original* query-vertex ids: entry `u` of
    /// an embedding is the data vertex assigned to query vertex `u`. Populated only
    /// when the configuration requests embedding collection.
    pub embeddings: Vec<Vec<VertexId>>,
    /// Search counters.
    pub stats: SearchStats,
}

impl MatchResult {
    /// Number of embeddings found (whether or not they were materialized).
    pub fn embedding_count(&self) -> u64 {
        self.stats.embeddings
    }
}

/// A GuP matcher instance: a guarded candidate space plus its configuration,
/// generic over the query-vertex bitset width `W` (`W = 1`, queries of at most 64
/// vertices, is the default fast path; the session layer auto-dispatches to the
/// narrowest sufficient width).
pub struct GupMatcher<const W: usize = 1> {
    gcs: Gcs<W>,
    config: GupConfig,
    /// Size of the shared prepared index this matcher was built against, surfaced in
    /// the memory report (paid once per session, not per query).
    prepared_index_bytes: usize,
}

impl<const W: usize> GupMatcher<W> {
    /// Builds the matcher (GCS construction + reservation-guard generation) for
    /// `query` against `data`. Legacy one-shot adapter: borrows `data` directly (no
    /// clone, no index build — the filter pass rescans neighbors with a reused
    /// scratch buffer) and shares everything downstream with
    /// [`GupMatcher::with_prepared`]. Batched workloads should prepare once — see
    /// [`crate::session`].
    pub fn new(query: &Graph, data: &Graph, config: GupConfig) -> Result<Self, GupError> {
        let gcs = Gcs::build(query, data, &config)?;
        Ok(GupMatcher {
            gcs,
            config,
            prepared_index_bytes: 0,
        })
    }

    /// Builds the matcher for `query` against a prepared data graph: candidate
    /// filtering runs against the precomputed signature arena, and nothing
    /// per-data-graph is rebuilt.
    pub fn with_prepared(
        query: &Graph,
        prepared: &PreparedData,
        config: GupConfig,
    ) -> Result<Self, GupError> {
        let gcs = Gcs::build_prepared(query, prepared, &config)?;
        Ok(GupMatcher {
            gcs,
            config,
            prepared_index_bytes: prepared.index_bytes(),
        })
    }

    /// The underlying guarded candidate space.
    pub fn gcs(&self) -> &Gcs<W> {
        &self.gcs
    }

    /// The active configuration.
    pub fn config(&self) -> &GupConfig {
        &self.config
    }

    /// Runs the sequential guarded backtracking search.
    pub fn run(&self) -> MatchResult {
        let outcome = SearchEngine::new(&self.gcs, &self.config).run();
        self.finish_result(outcome)
    }

    /// Runs the sequential search, streaming every embedding into `sink` over the
    /// *original* query-vertex ids (unlike the matching-order ids the raw
    /// [`SearchEngine`] reports). The sink's capacity is folded into the embedding
    /// limit and a [`SinkControl::Stop`] ends the search immediately, so the search
    /// performs no more work than the output demands: a counting sink materializes
    /// nothing, a `FirstK` sink stops after `k` matches.
    ///
    /// ```
    /// use gup::{GupConfig, GupMatcher};
    /// use gup::sink::{CountOnly, FirstK};
    /// use gup_graph::fixtures::paper_example;
    ///
    /// let (query, data) = paper_example();
    /// let matcher = GupMatcher::<1>::new(&query, &data, GupConfig::default()).unwrap();
    ///
    /// let mut count = CountOnly::new();
    /// let stats = matcher.run_with_sink(&mut count);
    /// assert_eq!(count.count(), 4);
    /// assert_eq!(stats.embeddings, 4);
    ///
    /// let mut first = FirstK::new(2);
    /// matcher.run_with_sink(&mut first);
    /// assert_eq!(first.embeddings().len(), 2);
    /// ```
    pub fn run_with_sink(&self, sink: &mut dyn EmbeddingSink) -> SearchStats {
        let mut translate = OriginalIdSink::new(&self.gcs, sink);
        SearchEngine::new(&self.gcs, &self.config).run_with_sink(&mut translate)
    }

    /// Parallel counterpart of [`GupMatcher::run_with_sink`]: runs on `threads`
    /// workers, each streaming into a worker-local buffer, and delivers the merged
    /// embeddings to `sink` in worker-index order (original query-vertex ids). The
    /// embedding count delivered is schedule-independent; under a limit (or a
    /// `FirstK` capacity) exactly `min(limit, total)` embeddings are delivered.
    pub fn run_parallel_with_sink(
        &self,
        threads: usize,
        sink: &mut dyn EmbeddingSink,
    ) -> SearchStats {
        if threads <= 1 {
            return self.run_with_sink(sink);
        }
        let mut translate = OriginalIdSink::new(&self.gcs, sink);
        crate::parallel::run_parallel_with_sink(&self.gcs, &self.config, threads, &mut translate)
    }

    /// Counts the embeddings without materializing any of them (the cheapest output
    /// mode: no per-embedding allocation or translation happens anywhere).
    pub fn count(&self) -> u64 {
        let mut sink = CountOnly::new();
        self.run_with_sink(&mut sink);
        sink.count()
    }

    /// Runs the search and also returns the memory breakdown of the GCS including the
    /// nogood guards accumulated during the search (Table 3 of the paper).
    pub fn run_with_memory_report(&self) -> (MatchResult, MemoryReport) {
        let (outcome, nv, ne) = SearchEngine::new(&self.gcs, &self.config).run_with_guards();
        let mut report = self.gcs.memory_report(Some(&nv), Some(&ne));
        report.prepared_index_bytes = self.prepared_index_bytes;
        (self.finish_result(outcome), report)
    }

    /// Runs the search on `threads` worker threads with recursive subtree splitting
    /// and work stealing (§3.5.2). Exact: reports the same embedding count as
    /// [`GupMatcher::run`]; with `threads <= 1` it *is* the sequential run. The time
    /// budget, when set, is hoisted into one absolute deadline shared by all
    /// workers, and the embedding limit is reserved atomically so the merged result
    /// never overshoots it. Steal/split activity is visible in
    /// [`SearchStats::tasks_executed`], [`SearchStats::frames_split`], and
    /// [`SearchStats::tasks_stolen`].
    pub fn run_parallel(&self, threads: usize) -> MatchResult {
        if threads <= 1 {
            return self.run();
        }
        let outcome = crate::parallel::run_parallel(&self.gcs, &self.config, threads);
        self.finish_result(outcome)
    }

    fn finish_result(&self, outcome: SearchOutcome) -> MatchResult {
        let embeddings = outcome
            .embeddings
            .iter()
            .map(|e| self.gcs.embedding_in_original_ids(e))
            .collect();
        MatchResult {
            embeddings,
            stats: outcome.stats,
        }
    }
}

/// Wraps a user sink so that embeddings reported by the engine (matching-order ids)
/// arrive at the user sink in original query-vertex numbering. The translation
/// reuses one scratch buffer across reports (no per-embedding allocation) and is
/// skipped entirely for sinks that never look at embedding contents.
struct OriginalIdSink<'g, 's, const W: usize> {
    gcs: &'g Gcs<W>,
    inner: &'s mut dyn EmbeddingSink,
    scratch: Vec<VertexId>,
}

impl<'g, 's, const W: usize> OriginalIdSink<'g, 's, W> {
    fn new(gcs: &'g Gcs<W>, inner: &'s mut dyn EmbeddingSink) -> Self {
        OriginalIdSink {
            gcs,
            inner,
            scratch: Vec::new(),
        }
    }
}

impl<const W: usize> EmbeddingSink for OriginalIdSink<'_, '_, W> {
    fn report(&mut self, embedding: &[VertexId]) -> SinkControl {
        if self.inner.wants_embeddings() {
            self.gcs
                .embedding_in_original_ids_into(embedding, &mut self.scratch);
            self.inner.report(&self.scratch)
        } else {
            self.inner.report(embedding)
        }
    }

    fn wants_embeddings(&self) -> bool {
        self.inner.wants_embeddings()
    }

    fn capacity(&self) -> Option<u64> {
        self.inner.capacity()
    }

    fn may_stop(&self) -> bool {
        self.inner.may_stop()
    }

    fn report_count(&mut self, n: u64) -> SinkControl {
        self.inner.report_count(n)
    }
}

/// One-shot convenience: finds (and materializes) all embeddings of `query` in `data`
/// under the default configuration, with no embedding cap. Auto-dispatches to the
/// narrowest bitset width that fits the query (≤64-vertex queries run the one-word
/// fast path).
pub fn find_embeddings(query: &Graph, data: &Graph) -> Result<MatchResult, GupError> {
    let config = GupConfig {
        collect_embeddings: true,
        limits: crate::config::SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    crate::with_qv_width!(query.vertex_count(), W, {
        Ok(GupMatcher::<W>::new(query, data, config)?.run())
    })
}

/// One-shot convenience: counts all embeddings of `query` in `data` (no cap, nothing
/// materialized — the count streams through a [`CountOnly`] sink). Auto-dispatches
/// on query width like [`find_embeddings`].
pub fn count_embeddings(query: &Graph, data: &Graph) -> Result<u64, GupError> {
    let config = GupConfig {
        collect_embeddings: false,
        limits: crate::config::SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    crate::with_qv_width!(query.vertex_count(), W, {
        Ok(GupMatcher::<W>::new(query, data, config)?.count())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchLimits;
    use gup_graph::fixtures;

    #[test]
    fn find_embeddings_returns_original_id_mappings() {
        let (q, d) = fixtures::paper_example();
        let result = find_embeddings(&q, &d).unwrap();
        assert!(result.embedding_count() >= 1);
        assert_eq!(result.embeddings.len() as u64, result.embedding_count());
        for emb in &result.embeddings {
            assert_eq!(emb.len(), q.vertex_count());
            for u in q.vertices() {
                assert_eq!(q.label(u), d.label(emb[u as usize]));
            }
            for (a, b) in q.edges() {
                assert!(d.has_edge(emb[a as usize], emb[b as usize]));
            }
        }
    }

    #[test]
    fn count_matches_find() {
        let q = fixtures::triangle_query();
        let d = fixtures::square_with_diagonal();
        let count = count_embeddings(&q, &d).unwrap();
        let found = find_embeddings(&q, &d).unwrap();
        assert_eq!(count, found.embeddings.len() as u64);
        assert_eq!(count, 4);
    }

    #[test]
    fn matcher_reuse_is_deterministic() {
        let (q, d) = fixtures::paper_example();
        let matcher = GupMatcher::<1>::new(&q, &d, GupConfig::default()).unwrap();
        let a = matcher.run();
        let b = matcher.run();
        assert_eq!(a.stats.embeddings, b.stats.embeddings);
        assert_eq!(a.stats.recursions, b.stats.recursions);
    }

    #[test]
    fn memory_report_accounts_for_guards() {
        let (q, d) = fixtures::paper_example();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let matcher = GupMatcher::<1>::new(&q, &d, cfg).unwrap();
        let (result, report) = matcher.run_with_memory_report();
        assert!(result.embedding_count() >= 1);
        assert!(report.candidate_space_bytes > 0);
        assert!(report.reservation_bytes > 0);
        assert!(report.guard_share_percent() > 0.0);
        assert!(report.guard_share_percent() < 100.0);
    }

    #[test]
    fn invalid_query_is_reported() {
        let (_q, d) = fixtures::paper_example();
        let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        assert!(GupMatcher::<1>::new(&disconnected, &d, GupConfig::default()).is_err());
    }

    #[test]
    fn run_parallel_single_thread_equals_sequential() {
        let (q, d) = fixtures::paper_example();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let matcher = GupMatcher::<1>::new(&q, &d, cfg).unwrap();
        assert_eq!(
            matcher.run().embedding_count(),
            matcher.run_parallel(1).embedding_count()
        );
    }
}
