//! Search statistics and memory accounting.
//!
//! The evaluation of the paper reports, besides wall-clock time: the number of
//! recursive calls (Fig. 7), the number of *futile* recursions — calls whose partial
//! embedding turns out to be a deadend (Fig. 9) —, the fraction of local candidates
//! pruned adaptively by guards (§4.2.3), and the memory devoted to guards versus the
//! whole process (Table 3). [`SearchStats`] and [`MemoryReport`] collect exactly those
//! quantities.

/// Counters collected during one backtracking search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of embeddings reported (capped by the embedding limit).
    pub embeddings: u64,
    /// Number of calls to the recursive backtracking function.
    pub recursions: u64,
    /// Number of recursive calls whose partial embedding was a deadend (yielded no
    /// embedding in its subtree).
    pub futile_recursions: u64,
    /// Local candidate vertices considered across all recursions.
    pub local_candidates_seen: u64,
    /// Local candidates filtered out by a reservation guard.
    pub pruned_by_reservation: u64,
    /// Local candidates filtered out by a nogood guard on vertices.
    pub pruned_by_nogood_vertex: u64,
    /// Candidate edges filtered out by a nogood guard on edges during refinement.
    pub pruned_by_nogood_edge: u64,
    /// Extensions rejected by the plain injectivity check.
    pub pruned_by_injectivity: u64,
    /// Extensions rejected because some future vertex lost all local candidates.
    pub no_candidate_conflicts: u64,
    /// Number of times backjumping abandoned the remaining siblings of a level.
    pub backjumps: u64,
    /// Number of nogood guards recorded on vertices.
    pub nv_guards_recorded: u64,
    /// Number of nogood guards recorded on edges.
    pub ne_guards_recorded: u64,
    /// Number of search tasks (suspendable frames) executed. A sequential run is one
    /// task; the work-stealing driver counts every seeded chunk and stolen frame.
    pub tasks_executed: u64,
    /// Number of times a running worker split an active search frame and donated the
    /// unexplored half to the task queue (work-stealing driver only).
    pub frames_split: u64,
    /// Number of tasks a worker stole from another worker's deque.
    pub tasks_stolen: u64,
    /// `true` if the search stopped because of the embedding limit.
    pub hit_embedding_limit: bool,
    /// `true` if the search stopped because of the time limit.
    pub hit_time_limit: bool,
    /// `true` if the search stopped because of the recursion limit.
    pub hit_recursion_limit: bool,
    /// `true` if the search stopped because an [`EmbeddingSink`] returned
    /// [`SinkControl::Stop`] (e.g. a satisfied `FirstK` or a callback that found what
    /// it was looking for).
    ///
    /// [`EmbeddingSink`]: gup_graph::sink::EmbeddingSink
    /// [`SinkControl::Stop`]: gup_graph::sink::SinkControl::Stop
    pub stopped_by_sink: bool,
}

impl SearchStats {
    /// `true` if any early-termination condition fired (a limit or a sink stop).
    pub fn terminated_early(&self) -> bool {
        self.hit_embedding_limit
            || self.hit_time_limit
            || self.hit_recursion_limit
            || self.stopped_by_sink
    }

    /// Fraction of local candidates that guards filtered out (0.0 when none were seen).
    /// §4.2.3 of the paper reports this as ~11.5 % on average.
    pub fn guard_prune_rate(&self) -> f64 {
        if self.local_candidates_seen == 0 {
            return 0.0;
        }
        (self.pruned_by_reservation + self.pruned_by_nogood_vertex) as f64
            / self.local_candidates_seen as f64
    }

    /// When the embedding budget that fired was a sink's capacity (folded into the
    /// limit) rather than a configured limit, re-reports it as a sink stop — the one
    /// attribution rule shared by the sequential engine and the parallel driver, so
    /// the public flags never depend on the thread count or on whether the sink's
    /// own `Stop` or its folded capacity happened to fire first. A capacity equal to
    /// the configured limit counts as the sink's stop (both budgets ran out
    /// together; the sink-side attribution is the one every thread count can agree
    /// on).
    pub(crate) fn attribute_capacity_stop(
        &mut self,
        configured_limit: Option<u64>,
        capacity: Option<u64>,
    ) {
        if self.hit_embedding_limit
            && capacity.is_some_and(|cap| configured_limit.map_or(true, |limit| cap <= limit))
        {
            self.hit_embedding_limit = false;
            self.stopped_by_sink = true;
        }
    }

    /// Merges another run's counters into this one (used by the parallel engine and by
    /// query-set aggregation in the benchmark harness).
    pub fn merge(&mut self, other: &SearchStats) {
        self.embeddings += other.embeddings;
        self.recursions += other.recursions;
        self.futile_recursions += other.futile_recursions;
        self.local_candidates_seen += other.local_candidates_seen;
        self.pruned_by_reservation += other.pruned_by_reservation;
        self.pruned_by_nogood_vertex += other.pruned_by_nogood_vertex;
        self.pruned_by_nogood_edge += other.pruned_by_nogood_edge;
        self.pruned_by_injectivity += other.pruned_by_injectivity;
        self.no_candidate_conflicts += other.no_candidate_conflicts;
        self.backjumps += other.backjumps;
        self.nv_guards_recorded += other.nv_guards_recorded;
        self.ne_guards_recorded += other.ne_guards_recorded;
        self.tasks_executed += other.tasks_executed;
        self.frames_split += other.frames_split;
        self.tasks_stolen += other.tasks_stolen;
        self.hit_embedding_limit |= other.hit_embedding_limit;
        self.hit_time_limit |= other.hit_time_limit;
        self.hit_recursion_limit |= other.hit_recursion_limit;
        self.stopped_by_sink |= other.stopped_by_sink;
    }
}

/// Breakdown of the memory consumed by an instantiated matcher, mirroring Table 3 of
/// the paper (whole structure versus each guard family).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes used by the candidate space (candidate vertices + candidate edges).
    pub candidate_space_bytes: usize,
    /// Bytes used by reservation guards.
    pub reservation_bytes: usize,
    /// Bytes used by nogood guards on vertices.
    pub nogood_vertex_bytes: usize,
    /// Bytes used by nogood guards on edges.
    pub nogood_edge_bytes: usize,
    /// Bytes used by the prepared data-graph index (the NLF signature arena and
    /// statistics a session builds once and amortizes over its queries). Zero when
    /// the matcher was built through a legacy entry point that did not retain the
    /// index. Accounted separately from [`MemoryReport::total_bytes`], which keeps
    /// the paper's Table-3 meaning (per-query GCS + guards).
    pub prepared_index_bytes: usize,
}

impl MemoryReport {
    /// Total bytes attributed to guards.
    pub fn guard_bytes(&self) -> usize {
        self.reservation_bytes + self.nogood_vertex_bytes + self.nogood_edge_bytes
    }

    /// Total bytes of the guarded candidate space (candidate space + guards). The
    /// shared prepared index is *not* included — see
    /// [`MemoryReport::total_with_prepared_bytes`].
    pub fn total_bytes(&self) -> usize {
        self.candidate_space_bytes + self.guard_bytes()
    }

    /// Total bytes including the session's shared prepared index. In a batch, the
    /// prepared share is paid once while every query pays its own GCS.
    pub fn total_with_prepared_bytes(&self) -> usize {
        self.total_bytes() + self.prepared_index_bytes
    }

    /// Guard share of the total, in percent (the "Guard/Whole" column of Table 3).
    pub fn guard_share_percent(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            100.0 * self.guard_bytes() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_rate_and_early_termination() {
        let mut s = SearchStats::default();
        assert_eq!(s.guard_prune_rate(), 0.0);
        assert!(!s.terminated_early());
        s.local_candidates_seen = 100;
        s.pruned_by_reservation = 5;
        s.pruned_by_nogood_vertex = 6;
        assert!((s.guard_prune_rate() - 0.11).abs() < 1e-9);
        s.hit_time_limit = true;
        assert!(s.terminated_early());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SearchStats {
            embeddings: 2,
            recursions: 10,
            futile_recursions: 3,
            ..Default::default()
        };
        let b = SearchStats {
            embeddings: 5,
            recursions: 7,
            futile_recursions: 1,
            hit_embedding_limit: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.embeddings, 7);
        assert_eq!(a.recursions, 17);
        assert_eq!(a.futile_recursions, 4);
        assert!(a.hit_embedding_limit);
    }

    #[test]
    fn memory_report_shares() {
        let m = MemoryReport {
            candidate_space_bytes: 900,
            reservation_bytes: 40,
            nogood_vertex_bytes: 30,
            nogood_edge_bytes: 30,
            prepared_index_bytes: 500,
        };
        assert_eq!(m.guard_bytes(), 100);
        assert_eq!(m.total_bytes(), 1000);
        assert_eq!(m.total_with_prepared_bytes(), 1500);
        assert!((m.guard_share_percent() - 10.0).abs() < 1e-9);
        assert_eq!(MemoryReport::default().guard_share_percent(), 0.0);
    }
}
