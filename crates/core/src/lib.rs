//! # gup — Fast Subgraph Matching by Guard-based Pruning
//!
//! A from-scratch Rust implementation of **GuP** (Arai, Fujiwara, Onizuka; SIGMOD
//! 2023): subgraph-isomorphism matching with *guard-based pruning*. Given a small
//! vertex-labeled query graph and a large vertex-labeled data graph, the matcher
//! enumerates every embedding of the query (label-preserving, adjacency-preserving,
//! injective mapping of query vertices to data vertices).
//!
//! ## How it works
//!
//! 1. A **guarded candidate space** ([`Gcs`]) is built: candidate vertices and
//!    candidate edges from LDF/NLF/DAG-DP filtering (`gup-candidate`), a matching
//!    order (`gup-order`), and a **reservation guard** per candidate vertex — a small
//!    set of data vertices every subembedding rooted there must use, which propagates
//!    the injectivity constraint upwards (paper §3.2).
//! 2. The **backtracking search** ([`SearchEngine`]) extends partial embeddings while
//!    filtering candidates adaptively: an extension is pruned when it conflicts with
//!    injectivity, with a reservation guard, or with a **nogood guard** learned from a
//!    previously-explored deadend (paper §3.3). Nogood guards are stored with the O(1)
//!    *search-node encoding* (§3.5.1); discovered nogoods also drive backjumping.
//! 3. Multi-core execution splits search subtrees recursively with work stealing:
//!    the GCS is shared read-only, while every worker owns one long-lived engine
//!    whose nogood guards persist across all tasks it executes ([`parallel`],
//!    paper §3.5.2).
//!
//! ## Quick start
//!
//! The front door is the prepared-data session model ([`session`]): the data graph
//! is indexed **once** and every query — through any engine family — reuses that
//! index. One-shot helpers remain as thin adapters.
//!
//! ```
//! use gup::session::{Engine, Session};
//! use gup::{find_embeddings, GupConfig};
//! use gup_graph::fixtures::paper_example;
//!
//! // The running example of the paper (Fig. 1).
//! let (query, data) = paper_example();
//!
//! // Prepare once, query many times (batched, concurrent, any engine).
//! let session = Session::new(data.clone());
//! let n = session.query(&query).unlimited().count().unwrap();
//! assert_eq!(n, 4);
//! let outcome = session
//!     .query(&query)
//!     .method(Engine::Daf)
//!     .first_k(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(outcome.embeddings.len(), 2);
//!
//! // One-shot adapter: same machinery, no per-call clone or index build.
//! let result = find_embeddings(&query, &data).unwrap();
//! assert!(result.embedding_count() >= 1);
//! ```

/// Monomorphized width dispatch: binds `$W` to the narrowest supported bitset
/// width (1, 2, or 4 words — [`Qv64`]/[`Qv128`]/[`Qv256`]) that fits a query of
/// `$n` vertices and evaluates `$body` once with that constant. Queries of at most
/// 64 vertices therefore compile to exactly the one-word engine that existed
/// before the width generalization; queries beyond 256 vertices fall through to
/// the widest instantiation, whose validation rejects them with a typed
/// `TooLarge` error.
///
/// [`Qv64`]: gup_graph::Qv64
/// [`Qv128`]: gup_graph::Qv128
/// [`Qv256`]: gup_graph::Qv256
macro_rules! with_qv_width {
    ($n:expr, $W:ident, $body:expr) => {{
        // `words_for` is the single source of the vertex-count → word-count rule;
        // 3 words round up to the 4-word instantiation (only 1/2/4 are compiled).
        match gup_graph::words_for($n) {
            1 => {
                const $W: usize = 1;
                $body
            }
            2 => {
                const $W: usize = 2;
                $body
            }
            _ => {
                const $W: usize = 4;
                $body
            }
        }
    }};
}
pub(crate) use with_qv_width;

pub mod config;
pub mod gcs;
pub mod guards;
pub mod matcher;
pub mod parallel;
pub mod reservation;
pub mod search;
pub mod session;
pub mod stats;

/// Streaming output sinks shared by every engine in the workspace (re-exported from
/// `gup_graph::sink`): the search pushes embeddings into an
/// [`EmbeddingSink`] so the output demand — count, first `k`,
/// everything, or a callback — decides how much work is done and what is allocated.
pub use gup_graph::sink;

pub use config::{GupConfig, ParallelConfig, PruningFeatures, SearchLimits};
pub use gcs::{Gcs, GupError};
pub use guards::{NogoodRef, ReservationGuard};
pub use gup_graph::{PreparedData, QVSet, Qv128, Qv256, Qv64, MAX_QUERY_VERTICES};
pub use matcher::{count_embeddings, find_embeddings, GupMatcher, MatchResult};
pub use search::{SearchEngine, SearchOutcome, SearchTask, SplitHandle};
pub use session::{
    BatchReport, BatchRequest, CounterSnapshot, Engine, QueryOutcome, QueryRequest, Session,
    SessionCounters, SessionError,
};
pub use sink::{
    CallbackSink, CollectAll, CountOnly, EmbeddingReservation, EmbeddingSink, FirstK, SinkControl,
};
pub use stats::{MemoryReport, SearchStats};
