//! Parallel search (§3.5.2 of the paper).
//!
//! The search tree is split at the candidates of `u_0`; worker threads dynamically
//! claim the next unexplored root candidate from a shared atomic cursor, which gives
//! work-sharing load balancing without any locking in the hot path. As in the paper,
//! the GCS and the reservation guards are shared (read-only) across threads, while
//! every thread keeps **thread-local nogood guards** — they are mutated during the
//! search, and §4.3.4 of the paper reports that not sharing them has no observable
//! impact on pruning.
//!
//! The paper's implementation splits subtrees recursively with work stealing; this
//! reproduction only splits at the root level but claims root candidates dynamically
//! (one at a time), which already load-balances far better than a static partition —
//! the comparison the Fig. 10 experiment makes against a DAF-style static root split.
//! The difference is documented in DESIGN.md.

use crate::config::GupConfig;
use crate::gcs::Gcs;
use crate::search::{SearchEngine, SearchOutcome};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Runs a guarded search over `gcs` using `threads` worker threads and merges the
/// per-thread outcomes.
pub fn run_parallel(gcs: &Gcs, config: &GupConfig, threads: usize) -> SearchOutcome {
    let threads = threads.max(1);
    if gcs.is_empty() {
        return SearchOutcome::default();
    }
    let root_candidates = gcs.space().candidates(0).len();
    if threads == 1 || root_candidates <= 1 {
        return SearchEngine::new(gcs, config).run();
    }

    let cursor = AtomicUsize::new(0);
    let shared_embeddings = Arc::new(AtomicU64::new(0));
    let merged: Mutex<SearchOutcome> = Mutex::new(SearchOutcome::default());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(root_candidates) {
            let cursor = &cursor;
            let merged = &merged;
            let shared = Arc::clone(&shared_embeddings);
            let config = config.clone();
            scope.spawn(move || {
                let mut local = SearchOutcome::default();
                loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    if next >= root_candidates {
                        break;
                    }
                    // Stop claiming work once the global embedding limit is reached.
                    if let Some(max) = config.limits.max_embeddings {
                        if shared.load(Ordering::Relaxed) >= max {
                            break;
                        }
                    }
                    let mut engine = SearchEngine::new(gcs, &config);
                    engine.restrict_root(next, next + 1);
                    engine.share_embedding_counter(Arc::clone(&shared));
                    let outcome = engine.run();
                    local.stats.merge(&outcome.stats);
                    local.embeddings.extend(outcome.embeddings);
                }
                let mut guard = merged.lock();
                guard.stats.merge(&local.stats);
                guard.embeddings.extend(local.embeddings);
            });
        }
    });

    let mut outcome = merged.into_inner();
    // When the limit fired, threads may have slightly overshot individually; clamp the
    // reported totals to the shared count, which respects the limit.
    if let Some(max) = config.limits.max_embeddings {
        if outcome.stats.embeddings > max {
            outcome.stats.embeddings = max;
            outcome.embeddings.truncate(max as usize);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GupConfig, SearchLimits};
    use gup_graph::fixtures;
    use gup_graph::generate::{power_law_graph, PowerLawConfig};

    fn build(query: &gup_graph::Graph, data: &gup_graph::Graph, cfg: &GupConfig) -> Gcs {
        Gcs::build(query, data, cfg).unwrap()
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 300,
            edges_per_vertex: 3,
            labels: 4,
            seed: 5,
            ..Default::default()
        });
        let query = fixtures::triangle_query();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &cfg);
        let sequential = SearchEngine::new(&gcs, &cfg).run();
        for threads in [2, 4] {
            let parallel = run_parallel(&gcs, &cfg, threads);
            assert_eq!(parallel.stats.embeddings, sequential.stats.embeddings);
        }
    }

    #[test]
    fn parallel_collects_all_embeddings() {
        let query = fixtures::triangle_query();
        let data = fixtures::square_with_diagonal();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            collect_embeddings: true,
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &cfg);
        let outcome = run_parallel(&gcs, &cfg, 3);
        assert_eq!(outcome.stats.embeddings, 4);
        assert_eq!(outcome.embeddings.len(), 4);
    }

    #[test]
    fn parallel_respects_embedding_limit() {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 200,
            edges_per_vertex: 4,
            labels: 2,
            seed: 11,
            ..Default::default()
        });
        let query = fixtures::path(3, 0);
        let cfg = GupConfig {
            limits: SearchLimits {
                max_embeddings: Some(50),
                ..SearchLimits::default()
            },
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &cfg);
        let outcome = run_parallel(&gcs, &cfg, 4);
        assert!(outcome.stats.embeddings <= 50);
        assert!(outcome.stats.hit_embedding_limit || outcome.stats.embeddings < 50);
    }

    #[test]
    fn empty_space_short_circuits() {
        let (_q, d) = fixtures::paper_example();
        let q = gup_graph::builder::graph_from_edges(&[9, 9], &[(0, 1)]);
        let cfg = GupConfig::default();
        let gcs = build(&q, &d, &cfg);
        let outcome = run_parallel(&gcs, &cfg, 4);
        assert_eq!(outcome.stats.embeddings, 0);
        assert_eq!(outcome.stats.recursions, 0);
    }
}
