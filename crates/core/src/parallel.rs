//! Work-stealing parallel search (§3.5.2 of the paper).
//!
//! The search tree is split **recursively**: every worker owns a deque of
//! [`SearchTask`]s (a replayable prefix plus an unexplored candidate range — see
//! `search.rs`). The root candidate range is seeded as a few chunks per worker; from
//! there, balancing is pull-based. An idle worker first drains its own deque from the
//! back (deepest frame, best cache locality), then steals from the *front* of the
//! busiest peer's deque — the front holds the shallowest frame, i.e. the largest
//! subtree. When every deque is empty, idle workers advertise hunger through a shared
//! counter; running workers notice it inside the search recursion and split their
//! shallowest active frame, donating the unexplored half of its sibling range as a
//! fresh task (`SearchEngine::maybe_donate`). Donation self-throttles: frames are
//! only split while hungry workers outnumber queued tasks.
//!
//! As in the paper, the GCS and the reservation guards are shared read-only across
//! threads, while nogood guards are **thread-local**: each worker's single long-lived
//! `SearchEngine` keeps its `VertexGuardStore`/`EdgeGuardStore` across *every* task it
//! executes (§4.3.4 reports that not sharing them across threads has no observable
//! impact on pruning). Persisting the engine also means the per-search scratch state
//! (owner array, candidate stacks, guard stores) is allocated once per worker instead
//! of once per claimed subtree, which the old root-splitting driver paid on every
//! root candidate.
//!
//! Global termination limits are shared: the embedding budget is one atomic counter
//! reserved with check-and-increment (no worker can overshoot the limit), and the
//! time budget is hoisted into one absolute deadline before the workers start, so
//! engine reuse across tasks cannot restart the clock.
//!
//! Lock discipline: this module's locks rank `deques ≺ sink ≺ slot ≺ cache` in
//! the `crates/core` manifest (`gup_analysis::rules::LOCK_MANIFESTS`), and
//! gup-lint's scope-aware rules enforce that nesting order — plus
//! no-guard-across-blocking — in tier-1.

use crate::config::GupConfig;
use crate::gcs::Gcs;
use crate::search::{SearchEngine, SearchOutcome, SearchTask, SplitHandle};
use crate::stats::SearchStats;
use gup_graph::sink::{min_limit, CollectAll, CountOnly, EmbeddingSink, SinkControl};
use gup_graph::VertexId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared coordination state of one parallel run. The `hungry` and `queued`
/// counters are `Arc`ed because every worker's [`SplitHandle`] aliases them.
struct Coordinator {
    /// One task deque per worker. Owners push/pop at the back; thieves steal from
    /// the front (the shallowest, largest task).
    deques: Vec<Arc<Mutex<VecDeque<SearchTask>>>>,
    /// Number of tasks sitting in deques, not yet claimed.
    queued: Arc<AtomicUsize>,
    /// Number of workers currently spinning for work.
    hungry: Arc<AtomicUsize>,
    /// Number of workers currently executing a task. Checked together with `queued`
    /// for termination: no queued task + no running task = no future donation.
    in_flight: AtomicUsize,
    /// Set when a worker hits a global limit; makes everyone stop claiming work.
    abort: AtomicBool,
}

impl Coordinator {
    fn new(workers: usize) -> Self {
        Coordinator {
            deques: (0..workers)
                .map(|_| Arc::new(Mutex::new(VecDeque::new())))
                .collect(),
            queued: Arc::new(AtomicUsize::new(0)),
            hungry: Arc::new(AtomicUsize::new(0)),
            in_flight: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
        }
    }

    /// Claims a task for worker `me`: own deque from the back, else steal the front
    /// of the busiest peer. Returns the task and whether it was stolen.
    fn claim(&self, me: usize) -> Option<(SearchTask, bool)> {
        // `queued` is incremented before a task is pushed and decremented after one
        // is popped, so 0 here proves every deque is empty — skip all the locking
        // that idle spins would otherwise inflict on running donors.
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        if let Some(task) = self.deques[me].lock().pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some((task, false));
        }
        // Probe peers from the busiest downwards so the steal grabs the shallowest
        // frame of the worker with the most spare work. Lengths are snapshotted with
        // one lock acquisition per peer; the snapshot can go stale, so every peer is
        // still probed until a task is found.
        let mut order: Vec<(usize, usize)> = (0..self.deques.len())
            .filter(|&i| i != me)
            .map(|i| (self.deques[i].lock().len(), i))
            .collect();
        order.sort_unstable_by_key(|&(len, _)| std::cmp::Reverse(len));
        for (_, peer) in order {
            if let Some(task) = self.deques[peer].lock().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some((task, true));
            }
        }
        None
    }

    fn seed(&self, tasks: Vec<SearchTask>) {
        self.queued.fetch_add(tasks.len(), Ordering::SeqCst);
        for (i, task) in tasks.into_iter().enumerate() {
            self.deques[i % self.deques.len()].lock().push_back(task);
        }
    }
}

/// Runs a guarded search over `gcs` using `threads` worker threads and merges the
/// per-worker outcomes. Exact: reports bit-identical embedding counts to the
/// sequential engine (the golden fixtures and the determinism suite pin this). Thin
/// adapter over [`run_parallel_with_sink`]; embeddings are collected or discarded
/// according to `GupConfig::collect_embeddings`.
pub fn run_parallel<const W: usize>(
    gcs: &Gcs<W>,
    config: &GupConfig,
    threads: usize,
) -> SearchOutcome {
    if config.collect_embeddings {
        let mut sink = CollectAll::new();
        let stats = run_parallel_with_sink(gcs, config, threads, &mut sink);
        SearchOutcome {
            embeddings: sink.into_embeddings(),
            stats,
        }
    } else {
        let mut sink = CountOnly::new();
        let stats = run_parallel_with_sink(gcs, config, threads, &mut sink);
        SearchOutcome {
            embeddings: Vec::new(),
            stats,
        }
    }
}

/// Runs a guarded parallel search, streaming every found embedding into `sink`
/// (over the *matching-order* vertex ids; use `GupMatcher::run_parallel_with_sink`
/// for original ids).
///
/// The sink's [`EmbeddingSink::capacity`] is folded into the embedding limit, so the
/// shared check-and-increment reservation stops all workers once the sink can take
/// no more — the one place where the limit lives, identical to the sequential path.
/// Workers report into per-worker buffers (none at all when the sink does not want
/// embedding contents); the buffers are drained into `sink` in worker-index order
/// after the run, so for a fixed schedule the merge is deterministic, and without an
/// embedding limit the delivered multiset of embeddings is schedule-independent.
///
/// A sink that declares [`EmbeddingSink::may_stop`] (it can return
/// [`SinkControl::Stop`] at any report, before any capacity the reservation could
/// enforce is exhausted) is run on the sequential engine instead: honoring an
/// arbitrary live stop requires serializing every report through the caller's sink
/// anyway, and the sequential path does that with the exact Stop-is-immediate,
/// nothing-buffered contract.
pub fn run_parallel_with_sink<const W: usize>(
    gcs: &Gcs<W>,
    config: &GupConfig,
    threads: usize,
    sink: &mut dyn EmbeddingSink,
) -> SearchStats {
    let threads = threads.max(1);
    if gcs.is_empty() {
        return SearchStats::default();
    }
    let user_limit = config.limits.max_embeddings;
    let capacity = sink.capacity();
    let mut config = config.clone();
    config.limits.max_embeddings = min_limit(user_limit, capacity);
    // Hoist the time budget into an absolute deadline shared by every worker, so
    // per-task engine reuse cannot restart the clock (and all workers agree on it).
    if config.limits.deadline.is_none() {
        config.limits.deadline = config.limits.effective_deadline();
    }
    // Unlike the old root-splitting driver, a single root candidate is *not* a
    // reason to degrade to one thread: recursive frame splitting parallelizes the
    // subtree below it.
    let root_candidates = gcs.space().candidates(0).len();
    if threads == 1 || sink.may_stop() {
        return SearchEngine::new(gcs, &config).run_with_sink(sink);
    }
    let workers = threads;
    let buffer_embeddings = sink.wants_embeddings();

    let coordinator = Coordinator::new(workers);
    coordinator.seed(seed_tasks(root_candidates, workers, &config));
    // The shared counter exists to enforce the global embedding limit; without a
    // limit every worker counts purely locally — one atomic RMW per embedding on a
    // single cache line would otherwise dominate enumeration-heavy runs.
    let shared_embeddings = config
        .limits
        .max_embeddings
        .map(|_| Arc::new(AtomicU64::new(0)));
    // One result slot per worker (not a shared accumulator), so the merge below can
    // run in worker-index order regardless of finish order.
    let results: Vec<Mutex<Option<WorkerResult>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for (me, slot) in results.iter().enumerate() {
            let coordinator = &coordinator;
            let shared = shared_embeddings.clone();
            let config = config.clone();
            scope.spawn(move || {
                let result = worker_loop(me, gcs, &config, coordinator, shared, buffer_embeddings);
                *slot.lock() = Some(result);
            });
        }
    });

    let mut merged = SearchStats::default();
    let mut buffers: Vec<Vec<Vec<VertexId>>> = Vec::with_capacity(workers);
    for slot in results {
        // gup-lint: allow(panic_freedom) the scope above joins every worker, and each stores its result as its last act
        let result = slot.into_inner().expect("worker stored its result");
        merged.merge(&result.stats);
        buffers.push(result.embeddings);
    }
    if buffer_embeddings {
        let mut open = true;
        for embedding in buffers.iter().flatten() {
            if open && sink.report(embedding) == SinkControl::Stop {
                // With the sink capacity folded into the reservation this only
                // happens on the very last delivery (or for a callback sink that
                // decided it is done); nothing further is delivered.
                merged.stopped_by_sink = true;
                open = false;
            }
        }
    } else {
        // Counting sinks never see contents — the workers counted locally and
        // buffered nothing — but the caller's sink must still observe every
        // reserved embedding. One bulk call keeps the merge O(workers).
        if sink.report_count(merged.embeddings) == SinkControl::Stop {
            merged.stopped_by_sink = true;
        }
    }
    merged.attribute_capacity_stop(user_limit, capacity);
    merged
}

/// What one worker hands back: its engine's counters plus the embeddings it
/// buffered (empty when the caller's sink does not want embedding contents).
struct WorkerResult {
    stats: SearchStats,
    embeddings: Vec<Vec<VertexId>>,
}

/// Splits the root candidate range into a few contiguous chunks per worker. Work
/// stealing rebalances from there, so the exact chunking only affects startup.
fn seed_tasks(root_candidates: usize, workers: usize, config: &GupConfig) -> Vec<SearchTask> {
    let per_worker = config.parallel.seed_chunks_per_worker.max(1);
    let chunks = root_candidates.min(workers * per_worker);
    let chunk = root_candidates.div_ceil(chunks);
    (0..chunks)
        .map(|i| {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(root_candidates);
            SearchTask {
                prefix: Vec::new(),
                // At the root level the local candidate list is the identity over
                // candidate indices, so the chunk positions are the indices.
                candidates: (lo as u32..hi as u32).collect(),
            }
        })
        .filter(|t| !t.candidates.is_empty())
        .collect()
}

/// One worker: a long-lived engine (persistent nogood guards) executing tasks until
/// the run is globally out of work or a limit fired. Reserved embeddings go into a
/// worker-local buffer sink (or are merely counted when `buffer_embeddings` is
/// false); the driver merges the buffers deterministically afterwards.
fn worker_loop<const W: usize>(
    me: usize,
    gcs: &Gcs<W>,
    config: &GupConfig,
    coordinator: &Coordinator,
    shared_embeddings: Option<Arc<AtomicU64>>,
    buffer_embeddings: bool,
) -> WorkerResult {
    let mut engine = SearchEngine::new(gcs, config);
    if let Some(shared) = shared_embeddings {
        engine.share_embedding_counter(shared);
    }
    let mut buffer = CollectAll::new();
    let mut counter = CountOnly::new();
    engine.enable_splitting(SplitHandle {
        hungry: Arc::clone(&coordinator.hungry),
        queued: Arc::clone(&coordinator.queued),
        sink: Arc::clone(&coordinator.deques[me]),
        max_split_depth: config.parallel.max_split_depth,
        min_split_candidates: config.parallel.min_split_candidates,
    });

    let mut idle_spins = 0u32;
    let mut confirmed_idle = false;
    loop {
        if coordinator.abort.load(Ordering::SeqCst) {
            break;
        }
        // `in_flight` is raised *before* the claim so the emptiness test elsewhere
        // can never observe "no queued task, nobody running" while a task is in the
        // hand-off window between deque and execution.
        coordinator.in_flight.fetch_add(1, Ordering::SeqCst);
        match coordinator.claim(me) {
            Some((task, stolen)) => {
                idle_spins = 0;
                confirmed_idle = false;
                if stolen {
                    engine.record_steal();
                }
                let sink: &mut dyn EmbeddingSink = if buffer_embeddings {
                    &mut buffer
                } else {
                    &mut counter
                };
                engine.run_task_with_sink(task, sink);
                coordinator.in_flight.fetch_sub(1, Ordering::SeqCst);
                if engine.stats().terminated_early() {
                    coordinator.abort.store(true, Ordering::SeqCst);
                }
            }
            None => {
                coordinator.in_flight.fetch_sub(1, Ordering::SeqCst);
                if coordinator.queued.load(Ordering::SeqCst) == 0
                    && coordinator.in_flight.load(Ordering::SeqCst) == 0
                {
                    // A donor may slip a task in between the two loads above
                    // (donate, finish, drop in_flight to 0). One confirming claim
                    // pass closes that window before the worker retires.
                    if confirmed_idle {
                        break;
                    }
                    confirmed_idle = true;
                    continue;
                }
                confirmed_idle = false;
                // Advertise hunger so running workers donate a frame, then back off
                // exponentially: spinning hard would steal cycles from the workers
                // actually searching when cores are oversubscribed.
                coordinator.hungry.fetch_add(1, Ordering::SeqCst);
                if idle_spins < 4 {
                    std::thread::yield_now();
                } else {
                    let exp = (idle_spins - 4).min(5);
                    std::thread::sleep(Duration::from_micros(10 << exp));
                }
                idle_spins = idle_spins.saturating_add(1);
                coordinator.hungry.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    WorkerResult {
        stats: engine.take_outcome().stats,
        embeddings: buffer.into_embeddings(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GupConfig, SearchLimits};
    use gup_graph::fixtures;
    use gup_graph::generate::{power_law_graph, PowerLawConfig};

    fn build(query: &gup_graph::Graph, data: &gup_graph::Graph, cfg: &GupConfig) -> Gcs {
        Gcs::<1>::build(query, data, cfg).unwrap()
    }

    #[test]
    fn parallel_counts_match_sequential() {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 300,
            edges_per_vertex: 3,
            labels: 4,
            seed: 5,
            ..Default::default()
        });
        let query = fixtures::triangle_query();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &cfg);
        let sequential = SearchEngine::new(&gcs, &cfg).run();
        for threads in [2, 4, 8] {
            let parallel = run_parallel(&gcs, &cfg, threads);
            assert_eq!(parallel.stats.embeddings, sequential.stats.embeddings);
            assert!(parallel.stats.tasks_executed >= 1);
        }
    }

    #[test]
    fn parallel_collects_all_embeddings() {
        let query = fixtures::triangle_query();
        let data = fixtures::square_with_diagonal();
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            collect_embeddings: true,
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &cfg);
        let outcome = run_parallel(&gcs, &cfg, 3);
        assert_eq!(outcome.stats.embeddings, 4);
        assert_eq!(outcome.embeddings.len(), 4);
    }

    #[test]
    fn parallel_respects_embedding_limit_exactly() {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 200,
            edges_per_vertex: 4,
            labels: 2,
            seed: 11,
            ..Default::default()
        });
        let query = fixtures::path(3, 0);
        let cfg = GupConfig {
            limits: SearchLimits {
                max_embeddings: Some(50),
                ..SearchLimits::default()
            },
            collect_embeddings: true,
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &cfg);
        for _ in 0..8 {
            let outcome = run_parallel(&gcs, &cfg, 4);
            // Check-and-reserve: the count can never overshoot, and the collected
            // set matches the count (no post-hoc truncation).
            assert!(outcome.stats.embeddings <= 50);
            assert_eq!(outcome.embeddings.len() as u64, outcome.stats.embeddings);
            assert!(outcome.stats.hit_embedding_limit || outcome.stats.embeddings < 50);
        }
    }

    #[test]
    fn empty_space_short_circuits() {
        let (_q, d) = fixtures::paper_example();
        let q = gup_graph::builder::graph_from_edges(&[9, 9], &[(0, 1)]);
        let cfg = GupConfig::default();
        let gcs = build(&q, &d, &cfg);
        let outcome = run_parallel(&gcs, &cfg, 4);
        assert_eq!(outcome.stats.embeddings, 0);
        assert_eq!(outcome.stats.recursions, 0);
    }

    #[test]
    fn expired_deadline_is_not_restarted_per_task() {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 400,
            edges_per_vertex: 6,
            labels: 1,
            seed: 3,
            ..Default::default()
        });
        let query = fixtures::path(4, 0);
        let unlimited = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let gcs = build(&query, &data, &unlimited);
        let full = SearchEngine::new(&gcs, &unlimited).run();
        // Precondition for the deadline sampling (every 1024 recursions) to trigger.
        assert!(
            full.stats.recursions > 20_000,
            "fixture too small for the deadline test: {} recursions",
            full.stats.recursions
        );
        let cfg = GupConfig {
            limits: SearchLimits {
                time_limit: Some(Duration::ZERO),
                ..SearchLimits::UNLIMITED
            },
            ..GupConfig::default()
        };
        let outcome = run_parallel(&gcs, &cfg, 4);
        // The already-expired budget is hoisted into one absolute deadline before
        // the workers start; per-task engine reuse must not restart the clock, so
        // the run aborts long before exhausting the full search.
        assert!(outcome.stats.hit_time_limit);
        assert!(outcome.stats.recursions < full.stats.recursions);
    }
}
