//! Guard representations: reservation guards and search-node-encoded nogood guards.
//!
//! A **reservation guard** `R(u_i, v)` is a small set of data vertices (at most `r`,
//! default 3) that any subembedding rooted at the candidate vertex `(u_i, v)` must use
//! (Definition 3.3). It is generated once, before the search.
//!
//! A **nogood guard** is discovered during the search. Definition 3.15/3.16 describe it
//! as a set of assignments; storing it literally would make the matching test
//! `O(|V_Q|)`. GuP instead uses the *search-node encoding* (§3.5.1): the guard's
//! assignment set is rounded up to its minimum superset embedding, which corresponds to
//! a node of the search tree, and the guard is stored as the triple
//! `(node id, length, domain bitset)`. A partial embedding matches the guard iff the
//! entry at index `length` of its ancestor array equals `node id` — an O(1) test.

use gup_graph::{QVSet, VertexId};

/// Identifier of a search-tree node. Node 0 is the imaginary root (the empty partial
/// embedding); every recursion allocates a fresh id.
pub type NodeId = u64;

/// The reservation guard of one candidate vertex: the chosen reservation set, stored as
/// data-vertex ids. An **empty** reservation means *no* subembedding is rooted at the
/// candidate vertex, so the candidate can be filtered out unconditionally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReservationGuard {
    vertices: Vec<VertexId>,
}

impl ReservationGuard {
    /// The trivial reservation `{v}` of candidate vertex `(u_i, v)`.
    pub fn trivial(v: VertexId) -> Self {
        ReservationGuard { vertices: vec![v] }
    }

    /// A reservation with the given member set.
    pub fn new(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        ReservationGuard { vertices }
    }

    /// The member data vertices (sorted).
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of data vertices in the reservation.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` for the empty reservation (candidate is unconditionally filtered).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// `true` if this is the trivial reservation `{v}` of the candidate's own data
    /// vertex — equivalent to the ordinary injectivity check, i.e. no extra pruning.
    pub fn is_trivial_for(&self, v: VertexId) -> bool {
        self.vertices.len() == 1 && self.vertices[0] == v
    }

    /// Heap bytes used by this guard.
    pub fn heap_bytes(&self) -> usize {
        self.vertices.capacity() * std::mem::size_of::<VertexId>()
    }
}

/// A search-node-encoded nogood guard (the triple `(id, len, dom)` of §3.5.1),
/// generic over the width `W` of its domain bitset.
///
/// `NogoodRef::ABSENT` marks candidate vertices / edges that carry no guard yet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NogoodRef<const W: usize = 1> {
    /// Search-node id of the minimum superset embedding of the nogood.
    pub id: NodeId,
    /// Length of that minimum superset embedding. `u32::MAX` encodes "no guard".
    pub len: u32,
    /// Domain of the nogood (the query vertices whose assignments it constrains).
    pub dom: QVSet<W>,
}

impl<const W: usize> NogoodRef<W> {
    /// Sentinel for "no guard recorded".
    pub const ABSENT: NogoodRef<W> = NogoodRef {
        id: 0,
        len: u32::MAX,
        dom: QVSet::EMPTY,
    };

    /// `true` if a guard has been recorded.
    #[inline]
    pub fn is_present(&self) -> bool {
        self.len != u32::MAX
    }

    /// O(1) matching test (§3.5.1): a partial embedding whose ancestor array is `anc`
    /// (with `anc[0]` the root node and `anc[d]` the node of its length-`d` prefix)
    /// matches this guard iff the guard is present, the prefix exists, and the node ids
    /// agree.
    #[inline]
    pub fn matches(&self, anc: &[NodeId]) -> bool {
        self.is_present() && (self.len as usize) < anc.len() && anc[self.len as usize] == self.id
    }
}

impl<const W: usize> Default for NogoodRef<W> {
    fn default() -> Self {
        NogoodRef::ABSENT
    }
}

/// Storage of nogood guards on candidate vertices: one slot per `(query vertex,
/// candidate index)`.
#[derive(Clone, Debug)]
pub struct VertexGuardStore<const W: usize = 1> {
    slots: Vec<Vec<NogoodRef<W>>>,
}

impl<const W: usize> VertexGuardStore<W> {
    /// Creates an empty store shaped after the candidate-set sizes.
    pub fn new(candidate_sizes: &[usize]) -> Self {
        VertexGuardStore::<W> {
            slots: candidate_sizes
                .iter()
                .map(|&n| vec![NogoodRef::ABSENT; n])
                .collect(),
        }
    }

    /// The guard on candidate `cand_index` of query vertex `u`.
    #[inline]
    pub fn get(&self, u: usize, cand_index: u32) -> NogoodRef<W> {
        self.slots[u][cand_index as usize]
    }

    /// Records (or overwrites) the guard on candidate `cand_index` of query vertex `u`.
    #[inline]
    pub fn set(&mut self, u: usize, cand_index: u32, guard: NogoodRef<W>) {
        self.slots[u][cand_index as usize] = guard;
    }

    /// Number of present guards (for statistics).
    pub fn present_count(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.iter().filter(|g| g.is_present()).count())
            .sum()
    }

    /// Heap bytes used by the store.
    pub fn heap_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<NogoodRef<W>>())
            .sum()
    }
}

/// Storage of nogood guards on candidate edges.
///
/// Slots parallel the candidate-edge adjacency lists of the candidate space: for the
/// query edge `(a, b)` with `a < b` and candidate index `ca` of `a`, slot `p` guards
/// the candidate edge towards the `p`-th entry of `forward_adjacency(eid, ca)`.
#[derive(Clone, Debug)]
pub struct EdgeGuardStore<const W: usize = 1> {
    /// `slots[eid][ca][p]`.
    slots: Vec<Vec<Vec<NogoodRef<W>>>>,
}

impl<const W: usize> EdgeGuardStore<W> {
    /// Creates an empty store. `shape[eid][ca]` must give the length of the forward
    /// adjacency list of candidate `ca` on candidate edge `eid`.
    pub fn new(shape: Vec<Vec<usize>>) -> Self {
        EdgeGuardStore::<W> {
            slots: shape
                .into_iter()
                .map(|per_cand| {
                    per_cand
                        .into_iter()
                        .map(|len| vec![NogoodRef::ABSENT; len])
                        .collect()
                })
                .collect(),
        }
    }

    /// The guard on position `p` of the forward adjacency list of candidate `ca` on
    /// candidate edge `eid`.
    #[inline]
    pub fn get(&self, eid: usize, ca: u32, p: usize) -> NogoodRef<W> {
        self.slots[eid][ca as usize][p]
    }

    /// Records (or overwrites) a guard.
    #[inline]
    pub fn set(&mut self, eid: usize, ca: u32, p: usize, guard: NogoodRef<W>) {
        self.slots[eid][ca as usize][p] = guard;
    }

    /// Number of present guards (for statistics).
    pub fn present_count(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|per_cand| per_cand.iter())
            .map(|s| s.iter().filter(|g| g.is_present()).count())
            .sum()
    }

    /// Heap bytes used by the store.
    pub fn heap_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|per_cand| {
                per_cand
                    .iter()
                    .map(|s| s.capacity() * std::mem::size_of::<NogoodRef<W>>())
                    .sum::<usize>()
                    + per_cand.capacity() * std::mem::size_of::<Vec<NogoodRef<W>>>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_guard_basics() {
        let trivial = ReservationGuard::trivial(7);
        assert!(trivial.is_trivial_for(7));
        assert!(!trivial.is_trivial_for(8));
        assert_eq!(trivial.len(), 1);
        let r = ReservationGuard::new(vec![5, 3, 5]);
        assert_eq!(r.vertices(), &[3, 5]);
        assert!(!r.is_trivial_for(3));
        let empty = ReservationGuard::new(vec![]);
        assert!(empty.is_empty());
        assert!(trivial.heap_bytes() >= std::mem::size_of::<VertexId>());
    }

    #[test]
    fn nogood_ref_matching() {
        // Ancestor array of a depth-3 partial embedding.
        let anc = vec![0u64, 11, 12, 13];
        let guard: NogoodRef = NogoodRef {
            id: 12,
            len: 2,
            dom: QVSet::from_iter([0, 1]),
        };
        assert!(guard.matches(&anc));
        // Different node at the same depth -> no match.
        let other: NogoodRef = NogoodRef {
            id: 99,
            len: 2,
            dom: QVSet::EMPTY,
        };
        assert!(!other.matches(&anc));
        // Guard longer than the current embedding -> no match.
        let deep: NogoodRef = NogoodRef {
            id: 13,
            len: 9,
            dom: QVSet::EMPTY,
        };
        assert!(!deep.matches(&anc));
        // Absent guard never matches.
        assert!(!NogoodRef::<1>::ABSENT.matches(&anc));
        assert!(!NogoodRef::<1>::ABSENT.is_present());
        // An empty-domain guard rooted at the imaginary root matches every embedding.
        let always: NogoodRef = NogoodRef {
            id: 0,
            len: 0,
            dom: QVSet::EMPTY,
        };
        assert!(always.matches(&anc));
        assert!(always.matches(&[0u64]));
    }

    #[test]
    fn vertex_guard_store_roundtrip() {
        let mut store = VertexGuardStore::<1>::new(&[2, 3]);
        assert_eq!(store.present_count(), 0);
        assert!(!store.get(1, 2).is_present());
        let g: NogoodRef = NogoodRef {
            id: 4,
            len: 1,
            dom: QVSet::singleton(0),
        };
        store.set(1, 2, g);
        assert_eq!(store.get(1, 2), g);
        assert_eq!(store.present_count(), 1);
        // Overwriting keeps a single present guard.
        store.set(
            1,
            2,
            NogoodRef {
                id: 9,
                len: 0,
                dom: QVSet::EMPTY,
            },
        );
        assert_eq!(store.present_count(), 1);
        assert!(store.heap_bytes() >= 5 * std::mem::size_of::<NogoodRef>());
    }

    #[test]
    fn edge_guard_store_roundtrip() {
        let mut store = EdgeGuardStore::<1>::new(vec![vec![2, 0], vec![1]]);
        assert_eq!(store.present_count(), 0);
        let g: NogoodRef = NogoodRef {
            id: 3,
            len: 2,
            dom: QVSet::singleton(1),
        };
        store.set(0, 0, 1, g);
        assert_eq!(store.get(0, 0, 1), g);
        assert!(!store.get(1, 0, 0).is_present());
        assert_eq!(store.present_count(), 1);
        assert!(store.heap_bytes() > 0);
    }
}
