//! # gup-workloads
//!
//! Synthetic datasets and query sets mirroring the GuP evaluation (§4.1 of the paper).
//!
//! The paper evaluates on four labeled data graphs — Yeast, Human, WordNet, Patents —
//! and on 32 query sets (four sizes × two densities per data graph), each query being
//! an induced subgraph of a random walk over the data graph. Those exact files are not
//! redistributable here, so this crate generates deterministic *analogues* at a
//! configurable scale:
//!
//! * [`datasets`] — a catalog of the four data graphs with their published
//!   vertex/edge/label counts, generated as labeled preferential-attachment graphs
//!   scaled by a user-chosen factor (so that the whole benchmark suite runs on a
//!   laptop).
//! * [`queries`] — the query-set generator: random-walk extraction, sparse/dense
//!   classification (average degree below / at-least 3), fixed sizes 8–32.
//! * [`large`] — the large template-query scenario family (65–256 vertices, beyond
//!   the paper's sizes): deterministic connected query generation plus host graphs
//!   the queries provably embed in, small enough for brute-force validation.
//!
//! Everything is seeded and reproducible; see DESIGN.md for the substitution rationale.

pub mod datasets;
pub mod large;
pub mod queries;

pub use datasets::{coarsen_labels, Dataset, DatasetSpec, ScaledDataset};
pub use large::{embed_in_host, large_connected_query, large_query_fixtures, LargeQuerySpec};
pub use queries::{generate_query_set, QueryClass, QuerySetSpec};
