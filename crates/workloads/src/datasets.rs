//! Synthetic analogues of the paper's four data graphs.
//!
//! | Dataset | Vertices | Edges | Labels | Notes |
//! |---------|---------:|------:|-------:|-------|
//! | Yeast   | 3,112    | 12,519 | 71 | protein interaction |
//! | Human   | 4,674    | 86,282 | 44 | dense biology graph |
//! | WordNet | 76,853   | 120,399 | 5 | sparse, few labels |
//! | Patents | 3,774,768 | 16,518,947 | 20 | citation graph, random labels |
//!
//! The generator reproduces the *scale and shape* (vertex/edge ratio, label count,
//! skewed degrees) rather than the exact topology; a `scale` factor in `(0, 1]` shrinks
//! the graphs proportionally so the full experiment suite completes quickly.

use gup_graph::generate::{power_law_graph, PowerLawConfig};
use gup_graph::stats::GraphStats;
use gup_graph::Graph;
use serde::{Deserialize, Serialize};

/// The four data graphs of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Yeast protein-interaction graph analogue.
    Yeast,
    /// Human protein-interaction graph analogue (denser).
    Human,
    /// WordNet analogue (large, sparse, only 5 labels).
    WordNet,
    /// Patents citation-graph analogue (the largest).
    Patents,
}

impl Dataset {
    /// All datasets in the order the paper lists them.
    pub const ALL: [Dataset; 4] = [
        Dataset::Yeast,
        Dataset::Human,
        Dataset::WordNet,
        Dataset::Patents,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Yeast => "Yeast",
            Dataset::Human => "Human",
            Dataset::WordNet => "WordNet",
            Dataset::Patents => "Patents",
        }
    }

    /// Published statistics of the original dataset (vertices, edges, labels).
    pub fn paper_spec(self) -> DatasetSpec {
        match self {
            Dataset::Yeast => DatasetSpec {
                dataset: self,
                vertices: 3_112,
                edges: 12_519,
                labels: 71,
            },
            Dataset::Human => DatasetSpec {
                dataset: self,
                vertices: 4_674,
                edges: 86_282,
                labels: 44,
            },
            Dataset::WordNet => DatasetSpec {
                dataset: self,
                vertices: 76_853,
                edges: 120_399,
                labels: 5,
            },
            Dataset::Patents => DatasetSpec {
                dataset: self,
                vertices: 3_774_768,
                edges: 16_518_947,
                labels: 20,
            },
        }
    }

    /// Generates the analogue graph at the given scale (`1.0` = published size,
    /// smaller values shrink vertex count proportionally while preserving the
    /// edge-per-vertex ratio and label count). Deterministic per (dataset, scale).
    pub fn generate(self, scale: f64) -> ScaledDataset {
        let spec = self.paper_spec();
        let scale = scale.clamp(1e-4, 1.0);
        let vertices = ((spec.vertices as f64 * scale) as usize).max(64);
        let edges_per_vertex = ((spec.edges as f64 / spec.vertices as f64).round() as usize).max(1);
        let graph = power_law_graph(&PowerLawConfig {
            vertices,
            edges_per_vertex,
            labels: spec.labels,
            label_skew: match self {
                Dataset::WordNet => 0.6,
                Dataset::Patents => 0.0, // the paper assigns Patents labels uniformly at random
                _ => 1.0,
            },
            extra_edge_fraction: 0.05,
            seed: match self {
                Dataset::Yeast => 0x59_45_41_53_54,
                Dataset::Human => 0x48_55_4d_41_4e,
                Dataset::WordNet => 0x57_4f_52_44,
                Dataset::Patents => 0x50_41_54_45,
            },
        });
        ScaledDataset {
            dataset: self,
            scale,
            graph,
        }
    }
}

/// Published statistics of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset.
    pub dataset: Dataset,
    /// Vertex count of the original graph.
    pub vertices: usize,
    /// Edge count of the original graph.
    pub edges: usize,
    /// Number of distinct labels.
    pub labels: usize,
}

impl DatasetSpec {
    /// Average degree of the original graph.
    pub fn average_degree(&self) -> f64 {
        2.0 * self.edges as f64 / self.vertices as f64
    }
}

/// A generated analogue graph together with its provenance.
#[derive(Clone, Debug)]
pub struct ScaledDataset {
    /// Which dataset this is an analogue of.
    pub dataset: Dataset,
    /// The scale factor it was generated at.
    pub scale: f64,
    /// The generated graph.
    pub graph: Graph,
}

impl ScaledDataset {
    /// Summary statistics of the generated graph (triangle counting skipped: it is
    /// expensive on the larger analogues).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(&self.graph, false)
    }
}

/// Coarsens a graph's label alphabet to `labels` labels (vertex label mod `labels`),
/// preserving topology.
///
/// The analogues inherit the papers' large label alphabets (e.g. 71 for Yeast),
/// which at laptop scale makes almost every query trivially selective — searches
/// finish in microseconds and parallel scheduling has nothing to do. Coarsening the
/// labels produces the "hard mode" variant of a workload: same topology, drastically
/// larger candidate sets and search trees, which is what the Figure-10 scaling
/// experiment needs. Apply the same coarsening to data graph and queries.
pub fn coarsen_labels(graph: &Graph, labels: u32) -> Graph {
    let labels = labels.max(1);
    let mut builder = gup_graph::GraphBuilder::new();
    for v in graph.vertices() {
        builder.add_vertex(graph.label(v) % labels);
    }
    for (a, b) in graph.edges() {
        builder.add_edge(a, b);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_published_numbers() {
        assert_eq!(Dataset::Yeast.paper_spec().vertices, 3_112);
        assert_eq!(Dataset::Human.paper_spec().edges, 86_282);
        assert_eq!(Dataset::WordNet.paper_spec().labels, 5);
        assert_eq!(Dataset::Patents.paper_spec().vertices, 3_774_768);
        assert!(
            Dataset::Human.paper_spec().average_degree()
                > Dataset::Yeast.paper_spec().average_degree()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Yeast.generate(0.1);
        let b = Dataset::Yeast.generate(0.1);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.dataset.name(), "Yeast");
    }

    #[test]
    fn coarsening_preserves_topology_and_bounds_labels() {
        let g = Dataset::Yeast.generate(0.05).graph;
        let c = coarsen_labels(&g, 4);
        assert_eq!(c.vertex_count(), g.vertex_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert!(c.vertices().all(|v| c.label(v) < 4));
        assert_eq!(c.label(0), g.label(0) % 4);
        // Degenerate request: at least one label survives.
        let one = coarsen_labels(&g, 0);
        assert!(one.vertices().all(|v| one.label(v) == 0));
    }

    #[test]
    fn scale_controls_size() {
        let small = Dataset::Yeast.generate(0.05);
        let large = Dataset::Yeast.generate(0.2);
        assert!(small.graph.vertex_count() < large.graph.vertex_count());
        // Edge-per-vertex ratio roughly preserved (within a factor of ~2 of the spec).
        let spec_ratio =
            Dataset::Yeast.paper_spec().edges as f64 / Dataset::Yeast.paper_spec().vertices as f64;
        let got_ratio = large.graph.edge_count() as f64 / large.graph.vertex_count() as f64;
        assert!(got_ratio > spec_ratio * 0.5 && got_ratio < spec_ratio * 2.5);
    }

    #[test]
    fn label_counts_respect_spec() {
        let d = Dataset::WordNet.generate(0.02);
        assert!(d.graph.label_count() <= 5);
        let stats = d.stats();
        assert!(stats.labels_used >= 2);
        assert!(stats.vertices >= 64);
    }

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for ds in Dataset::ALL {
            let scaled = ds.generate(0.002);
            assert!(scaled.graph.vertex_count() >= 64, "{}", ds.name());
            assert!(scaled.graph.edge_count() > 0);
        }
    }

    #[test]
    fn scale_is_clamped() {
        let d = Dataset::Yeast.generate(50.0);
        assert!(d.scale <= 1.0);
        let tiny = Dataset::Yeast.generate(0.0);
        assert!(tiny.scale > 0.0);
    }
}
