//! Query-set generation (paper §4.1).
//!
//! "We performed a random walk on a data graph and extracted a subgraph induced by the
//! visited vertices as a query graph. A query graph is classified as a sparse query
//! graph if its average degree is less than three; otherwise, it is classified as a
//! dense query graph." Query sets are named like the paper's: `8S`, `16S`, `24S`,
//! `32S` (sparse) and `8D`, `16D`, `24D`, `32D` (dense).

use gup_graph::algo::is_connected;
use gup_graph::generate::random_walk_query;
use gup_graph::Graph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Density class of a query set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Average degree < 3.
    Sparse,
    /// Average degree ≥ 3.
    Dense,
}

impl QueryClass {
    /// The paper's one-letter suffix ("S" / "D").
    pub fn suffix(self) -> &'static str {
        match self {
            QueryClass::Sparse => "S",
            QueryClass::Dense => "D",
        }
    }

    /// Classifies a query graph by its average degree.
    pub fn of(query: &Graph) -> QueryClass {
        if query.average_degree() < 3.0 {
            QueryClass::Sparse
        } else {
            QueryClass::Dense
        }
    }
}

/// Specification of one query set ("16S", "24D", ...).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuerySetSpec {
    /// Number of vertices per query (the paper uses 8, 16, 24, 32).
    pub vertices: usize,
    /// Sparse or dense.
    pub class: QueryClass,
}

impl QuerySetSpec {
    /// The paper's eight query sets per data graph, in its order:
    /// 8S, 16S, 24S, 32S, 8D, 16D, 24D, 32D.
    pub const PAPER_SETS: [QuerySetSpec; 8] = [
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        },
        QuerySetSpec {
            vertices: 16,
            class: QueryClass::Sparse,
        },
        QuerySetSpec {
            vertices: 24,
            class: QueryClass::Sparse,
        },
        QuerySetSpec {
            vertices: 32,
            class: QueryClass::Sparse,
        },
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Dense,
        },
        QuerySetSpec {
            vertices: 16,
            class: QueryClass::Dense,
        },
        QuerySetSpec {
            vertices: 24,
            class: QueryClass::Dense,
        },
        QuerySetSpec {
            vertices: 32,
            class: QueryClass::Dense,
        },
    ];

    /// The paper's name for this set ("16S", "24D", ...).
    pub fn name(&self) -> String {
        format!("{}{}", self.vertices, self.class.suffix())
    }
}

/// Generates `count` query graphs of the given specification from `data` by random
/// walks. Queries that come out in the wrong density class are rejected and the walk
/// retried; generation is deterministic for a given `(spec, count, seed)`.
///
/// The returned vector may be shorter than `count` if the data graph cannot produce
/// enough queries of the requested class within a bounded number of attempts (for
/// example, dense 32-vertex queries on a very sparse data graph).
pub fn generate_query_set(data: &Graph, spec: QuerySetSpec, count: usize, seed: u64) -> Vec<Graph> {
    let mut rng = SmallRng::seed_from_u64(
        seed ^ (spec.vertices as u64) << 8 ^ matches!(spec.class, QueryClass::Dense) as u64,
    );
    let mut out = Vec::with_capacity(count);
    let max_attempts = count * 400;
    let mut attempts = 0;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let Some(query) = random_walk_query(data, spec.vertices, &mut rng) else {
            continue;
        };
        if !is_connected(&query) || query.vertex_count() != spec.vertices {
            continue;
        }
        if QueryClass::of(&query) == spec.class {
            out.push(query);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;

    #[test]
    fn class_suffixes_and_names() {
        assert_eq!(QueryClass::Sparse.suffix(), "S");
        assert_eq!(QueryClass::Dense.suffix(), "D");
        assert_eq!(
            QuerySetSpec {
                vertices: 16,
                class: QueryClass::Sparse
            }
            .name(),
            "16S"
        );
        assert_eq!(QuerySetSpec::PAPER_SETS.len(), 8);
        assert_eq!(QuerySetSpec::PAPER_SETS[7].name(), "32D");
    }

    #[test]
    fn classification_by_average_degree() {
        let path = gup_graph::fixtures::path(8, 0);
        assert_eq!(QueryClass::of(&path), QueryClass::Sparse);
        let clique = gup_graph::fixtures::clique4(0);
        assert_eq!(QueryClass::of(&clique), QueryClass::Dense);
    }

    #[test]
    fn generated_queries_match_spec() {
        let data = Dataset::Yeast.generate(0.2).graph;
        let spec = QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        };
        let set = generate_query_set(&data, spec, 10, 7);
        assert!(!set.is_empty());
        for q in &set {
            assert_eq!(q.vertex_count(), 8);
            assert!(is_connected(q));
            assert_eq!(QueryClass::of(q), QueryClass::Sparse);
        }
    }

    #[test]
    fn dense_queries_from_dense_dataset() {
        let data = Dataset::Human.generate(0.05).graph;
        let spec = QuerySetSpec {
            vertices: 8,
            class: QueryClass::Dense,
        };
        let set = generate_query_set(&data, spec, 5, 3);
        for q in &set {
            assert!(q.average_degree() >= 3.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let data = Dataset::Yeast.generate(0.1).graph;
        let spec = QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        };
        let a = generate_query_set(&data, spec, 5, 42);
        let b = generate_query_set(&data, spec, 5, 42);
        assert_eq!(a, b);
        let c = generate_query_set(&data, spec, 5, 43);
        // Different seeds should (almost surely) give a different set.
        assert!(a != c || a.is_empty());
    }

    #[test]
    fn impossible_specs_return_short_sets() {
        // A tree-like tiny data graph cannot produce dense 32-vertex queries.
        let data = gup_graph::fixtures::path(40, 0);
        let spec = QuerySetSpec {
            vertices: 32,
            class: QueryClass::Dense,
        };
        let set = generate_query_set(&data, spec, 3, 1);
        assert!(set.len() < 3);
    }
}
