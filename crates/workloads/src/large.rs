//! Large template-query generation (the 65–256-vertex scenario family).
//!
//! The paper's query sets stop at 32 vertices, which fit the one-word bitset engine.
//! Production workloads do not: motif batteries, generated template queries, and
//! label-coarsened real queries routinely exceed 64 vertices. This module generates
//! deterministic **connected** queries of 65–200+ vertices plus matched *host* data
//! graphs in which the query provably embeds, sized so the brute-force oracle stays
//! feasible — which is what lets the large-query golden tests validate every engine
//! end-to-end at widths 2 and 4 ([`Qv128`]/[`Qv256`]).
//!
//! Host construction: the host contains the query verbatim (so at least the identity
//! embedding exists), plus `decoys` extra vertices wearing labels the query never
//! uses, wired randomly into the query part. Decoys can therefore never extend a
//! partial match, and the label diversity of the query part keeps per-level
//! candidate lists short — the oracle's cost stays near the actual embedding count
//! instead of `O(|V_G|^{|V_Q|})`.
//!
//! [`Qv128`]: gup_graph::Qv128
//! [`Qv256`]: gup_graph::Qv256

use gup_graph::algo::is_connected;
use gup_graph::{Graph, GraphBuilder, Label, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of one generated large query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LargeQuerySpec {
    /// Number of query vertices (65–256 is the interesting range; smaller values
    /// are legal and exercise the one-word path).
    pub vertices: usize,
    /// Number of distinct labels, cycled with a random offset. More labels make the
    /// brute-force oracle cheaper (shorter per-level candidate lists) and
    /// automorphism counts smaller.
    pub labels: u32,
    /// Extra non-tree edges layered over the random spanning tree.
    pub extra_edges: usize,
    /// RNG seed; generation is fully deterministic per spec.
    pub seed: u64,
}

/// Generates a connected labeled query: a random spanning tree over `vertices`
/// vertices (each vertex `i > 0` attaches to a uniformly random earlier vertex)
/// plus `extra_edges` random chords. Connectivity holds by construction; labels are
/// drawn uniformly from `0..labels`.
pub fn large_connected_query(spec: &LargeQuerySpec) -> Graph {
    assert!(spec.vertices >= 1, "query must have at least one vertex");
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x9e37_79b9_7f4a_7c15);
    let labels = spec.labels.max(1);
    let mut builder = GraphBuilder::with_capacity(spec.vertices, spec.vertices + spec.extra_edges);
    for _ in 0..spec.vertices {
        builder.add_vertex(rng.gen_range(0..labels) as Label);
    }
    for i in 1..spec.vertices {
        let parent = rng.gen_range(0..i) as VertexId;
        builder.add_edge(parent, i as VertexId);
    }
    for _ in 0..spec.extra_edges {
        let a = rng.gen_range(0..spec.vertices) as VertexId;
        let b = rng.gen_range(0..spec.vertices) as VertexId;
        if a != b {
            builder.add_edge(a, b);
        }
    }
    let graph = builder.build();
    debug_assert!(is_connected(&graph));
    graph
}

/// Builds a host data graph for `query`: the query itself (vertices `0..n` with
/// identical labels and edges, so the identity mapping is always an embedding) plus
/// `decoys` extra vertices whose labels start *above* every query label — they can
/// never be assigned to a query vertex, but they enlarge the graph and the
/// candidate-filtering surface like real background vertices do. Each decoy gains
/// 1–3 random edges into the earlier vertices.
pub fn embed_in_host(query: &Graph, decoys: usize, seed: u64) -> Graph {
    let n = query.vertex_count();
    let max_label = (0..n as VertexId)
        .map(|v| query.label(v))
        .max()
        .unwrap_or(0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
    let mut builder = GraphBuilder::with_capacity(n + decoys, query.edge_count() + decoys * 3);
    for v in 0..n as VertexId {
        builder.add_vertex(query.label(v));
    }
    for (a, b) in query.edges() {
        builder.add_edge(a, b);
    }
    for d in 0..decoys {
        let label = max_label + 1 + (d % 4) as Label;
        let id = builder.add_vertex(label);
        for _ in 0..rng.gen_range(1..=3usize) {
            let target = rng.gen_range(0..id) as VertexId;
            builder.add_edge(id, target);
        }
    }
    builder.build()
}

/// One named large-query fixture: the query, a host data graph it embeds in, and
/// the spec it was generated from.
pub struct LargeQueryFixture {
    /// Stable name used in test output ("large-96" etc.).
    pub name: &'static str,
    /// The generated connected query.
    pub query: Graph,
    /// A host graph containing the query (identity embedding) plus decoys.
    pub host: Graph,
}

/// The pinned large-query fixture family used by the golden tests and the docs:
/// 65 (just past the one-word boundary), 96 and 128 (two-word widths), and 130
/// (four-word width). Label counts are high enough that the brute-force oracle
/// finishes in milliseconds on every host.
pub fn large_query_fixtures() -> Vec<LargeQueryFixture> {
    let specs: [(&'static str, LargeQuerySpec, usize); 4] = [
        (
            "large-65",
            LargeQuerySpec {
                vertices: 65,
                labels: 12,
                extra_edges: 24,
                seed: 65,
            },
            40,
        ),
        (
            "large-96",
            LargeQuerySpec {
                vertices: 96,
                labels: 16,
                extra_edges: 40,
                seed: 96,
            },
            60,
        ),
        (
            "large-128",
            LargeQuerySpec {
                vertices: 128,
                labels: 20,
                extra_edges: 50,
                seed: 128,
            },
            64,
        ),
        (
            "large-130",
            LargeQuerySpec {
                vertices: 130,
                labels: 20,
                extra_edges: 52,
                seed: 130,
            },
            64,
        ),
    ];
    specs
        .into_iter()
        .map(|(name, spec, decoys)| {
            let query = large_connected_query(&spec);
            let host = embed_in_host(&query, decoys, spec.seed.wrapping_mul(31));
            LargeQueryFixture { name, query, host }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_queries_are_connected_and_sized() {
        for vertices in [65usize, 96, 130, 200] {
            let q = large_connected_query(&LargeQuerySpec {
                vertices,
                labels: 10,
                extra_edges: vertices / 2,
                seed: 7,
            });
            assert_eq!(q.vertex_count(), vertices);
            assert!(is_connected(&q), "{vertices}-vertex query disconnected");
            // Spanning tree + chords: at least n-1 edges.
            assert!(q.edge_count() >= vertices - 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = LargeQuerySpec {
            vertices: 80,
            labels: 8,
            extra_edges: 30,
            seed: 42,
        };
        assert_eq!(large_connected_query(&spec), large_connected_query(&spec));
        let other = LargeQuerySpec { seed: 43, ..spec };
        assert_ne!(large_connected_query(&spec), large_connected_query(&other));
    }

    #[test]
    fn host_contains_the_query_identically() {
        let q = large_connected_query(&LargeQuerySpec {
            vertices: 70,
            labels: 9,
            extra_edges: 20,
            seed: 3,
        });
        let host = embed_in_host(&q, 30, 99);
        assert_eq!(host.vertex_count(), 100);
        for v in 0..q.vertex_count() as VertexId {
            assert_eq!(host.label(v), q.label(v));
        }
        for (a, b) in q.edges() {
            assert!(host.has_edge(a, b));
        }
        // Decoy labels never collide with query labels.
        let max_query_label = (0..q.vertex_count() as VertexId)
            .map(|v| q.label(v))
            .max()
            .unwrap();
        for v in q.vertex_count()..host.vertex_count() {
            assert!(host.label(v as VertexId) > max_query_label);
        }
    }

    #[test]
    fn fixture_family_covers_both_wide_widths() {
        let fixtures = large_query_fixtures();
        assert_eq!(fixtures.len(), 4);
        let sizes: Vec<usize> = fixtures.iter().map(|f| f.query.vertex_count()).collect();
        assert_eq!(sizes, vec![65, 96, 128, 130]);
        for f in &fixtures {
            assert!(is_connected(&f.query), "{}", f.name);
            assert!(f.host.vertex_count() > f.query.vertex_count(), "{}", f.name);
        }
    }
}
