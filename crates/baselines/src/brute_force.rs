//! Reference enumerator used as ground truth in tests.
//!
//! A deliberately simple recursive matcher that works straight off the data graph with
//! only the label constraint and injectivity as filters. Exponential and slow, but its
//! simplicity makes it easy to audit — every other engine in the workspace is tested
//! against it on small instances.

use gup_graph::sink::{CollectAll, CountOnly, EmbeddingSink, SinkControl};
use gup_graph::{Graph, PreparedData, VertexId};

/// Enumerates every embedding of `query` in `data` and returns them sorted (each
/// embedding is the vector `emb[u] = data vertex assigned to query vertex u`).
///
/// Intended for small instances only (tests, examples); the running time is
/// `O(|V_G|^{|V_Q|})` in the worst case.
pub fn enumerate(query: &Graph, data: &Graph) -> Vec<Vec<VertexId>> {
    let mut sink = CollectAll::new();
    enumerate_with_sink(query, data, &mut sink);
    let mut out = sink.into_embeddings();
    out.sort();
    out
}

/// Counts embeddings without materializing them (streams through a [`CountOnly`]
/// sink).
pub fn count(query: &Graph, data: &Graph) -> u64 {
    let mut sink = CountOnly::new();
    enumerate_with_sink(query, data, &mut sink);
    sink.count()
}

/// Prepared-data counterpart of [`enumerate_with_sink`]: the oracle needs no index,
/// so this simply enumerates over the prepared graph — it exists so that every
/// engine in the workspace, oracle included, can be driven off one shared
/// [`PreparedData`].
pub fn enumerate_with_sink_prepared(
    query: &Graph,
    prepared: &PreparedData,
    sink: &mut dyn EmbeddingSink,
) {
    enumerate_with_sink(query, prepared.graph(), sink);
}

/// Streams every embedding of `query` in `data` into `sink` (original query-vertex
/// numbering, in the oracle's deterministic enumeration order — *not* sorted). A
/// [`SinkControl::Stop`] terminates the enumeration immediately, which makes
/// `FirstK` exact against this oracle too.
pub fn enumerate_with_sink(query: &Graph, data: &Graph, sink: &mut dyn EmbeddingSink) {
    let n = query.vertex_count();
    if n == 0 {
        return;
    }
    let mut assignment: Vec<VertexId> = vec![u32::MAX; n];
    let mut used = vec![false; data.vertex_count()];
    let _ = recurse(query, data, 0, &mut assignment, &mut used, sink);
}

fn recurse(
    query: &Graph,
    data: &Graph,
    u: usize,
    assignment: &mut Vec<VertexId>,
    used: &mut Vec<bool>,
    sink: &mut dyn EmbeddingSink,
) -> SinkControl {
    if u == query.vertex_count() {
        return sink.report(assignment);
    }
    for v in data.vertices() {
        if used[v as usize] || data.label(v) != query.label(u as VertexId) {
            continue;
        }
        // Adjacency with every already-assigned neighbor.
        let ok = query.neighbors(u as VertexId).iter().all(|&w| {
            let w = w as usize;
            w >= u || data.has_edge(assignment[w], v)
        });
        if !ok {
            continue;
        }
        assignment[u] = v;
        used[v as usize] = true;
        let control = recurse(query, data, u + 1, assignment, used, sink);
        used[v as usize] = false;
        assignment[u] = u32::MAX;
        if control == SinkControl::Stop {
            return SinkControl::Stop;
        }
    }
    SinkControl::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;

    #[test]
    fn triangle_in_square_has_four_embeddings() {
        let found = enumerate(
            &fixtures::triangle_query(),
            &fixtures::square_with_diagonal(),
        );
        assert_eq!(found.len(), 4);
        assert_eq!(
            count(
                &fixtures::triangle_query(),
                &fixtures::square_with_diagonal()
            ),
            4
        );
        // All reported embeddings are valid and distinct.
        let mut dedup = found.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), found.len());
    }

    #[test]
    fn paper_example_contains_named_embedding() {
        let (q, d) = fixtures::paper_example();
        let found = enumerate(&q, &d);
        assert!(found.contains(&vec![1, 4, 7, 10, 0]));
    }

    #[test]
    fn no_match_when_label_absent() {
        let q = graph_from_edges(&[9], &[]);
        let d = fixtures::square_with_diagonal();
        assert!(enumerate(&q, &d).is_empty());
    }

    #[test]
    fn single_vertex_query_matches_each_label_occurrence() {
        let q = graph_from_edges(&[1], &[]);
        let d = fixtures::square_with_diagonal(); // three label-1 vertices
        assert_eq!(count(&q, &d), 3);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Query: two adjacent label-0 vertices; data: a single label-0 vertex with a
        // self-loop attempt (removed by the builder) — no embedding may map both query
        // vertices to the same data vertex.
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        let d = graph_from_edges(&[0], &[]);
        assert_eq!(count(&q, &d), 0);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let q = gup_graph::GraphBuilder::new().build();
        let d = fixtures::square_with_diagonal();
        assert!(enumerate(&q, &d).is_empty());
    }
}
