//! Reference enumerator used as ground truth in tests.
//!
//! A deliberately simple recursive matcher that works straight off the data graph with
//! only the label constraint and injectivity as filters. Exponential and slow, but its
//! simplicity makes it easy to audit — every other engine in the workspace is tested
//! against it on small instances.
//!
//! The enumeration is deadline-aware: [`enumerate_with_sink_deadline`] samples the
//! clock every [`DEADLINE_CHECK_INTERVAL`] recursion steps, so even a zero-match
//! adversarial query (whose sink is never called) observes a wall-clock budget —
//! previously the deadline was only enforceable *between reported embeddings*.

use gup_graph::deadline::DeadlineSampler;
use gup_graph::sink::{CollectAll, CountOnly, EmbeddingSink, SinkControl};
use gup_graph::{Graph, PreparedData, VertexId};
use std::time::Instant;

/// The shared sampling cadence (re-exported so existing oracle callers keep
/// their name for it): one clock read per this many candidate examinations.
/// Counting per *candidate* rather than per recursion keeps the gap between
/// clock checks independent of the data-graph size (a single recursion scans
/// every data vertex).
pub use gup_graph::deadline::DEADLINE_CHECK_INTERVAL;

/// Enumerates every embedding of `query` in `data` and returns them sorted (each
/// embedding is the vector `emb[u] = data vertex assigned to query vertex u`).
///
/// Intended for small instances only (tests, examples); the running time is
/// `O(|V_G|^{|V_Q|})` in the worst case.
pub fn enumerate(query: &Graph, data: &Graph) -> Vec<Vec<VertexId>> {
    let mut sink = CollectAll::new();
    enumerate_with_sink(query, data, &mut sink);
    let mut out = sink.into_embeddings();
    out.sort();
    out
}

/// Counts embeddings without materializing them (streams through a [`CountOnly`]
/// sink).
pub fn count(query: &Graph, data: &Graph) -> u64 {
    let mut sink = CountOnly::new();
    enumerate_with_sink(query, data, &mut sink);
    sink.count()
}

/// Prepared-data counterpart of [`enumerate_with_sink`]: the oracle needs no index,
/// so this simply enumerates over the prepared graph — it exists so that every
/// engine in the workspace, oracle included, can be driven off one shared
/// [`PreparedData`].
pub fn enumerate_with_sink_prepared(
    query: &Graph,
    prepared: &PreparedData,
    sink: &mut dyn EmbeddingSink,
) {
    enumerate_with_sink(query, prepared.graph(), sink);
}

/// Deadline-aware prepared-data enumeration: see
/// [`enumerate_with_sink_deadline`]. Returns `true` when the deadline fired.
pub fn enumerate_with_sink_prepared_deadline(
    query: &Graph,
    prepared: &PreparedData,
    sink: &mut dyn EmbeddingSink,
    deadline: Option<Instant>,
) -> bool {
    enumerate_with_sink_deadline(query, prepared.graph(), sink, deadline)
}

/// Streams every embedding of `query` in `data` into `sink` (original query-vertex
/// numbering, in the oracle's deterministic enumeration order — *not* sorted). A
/// [`SinkControl::Stop`] terminates the enumeration immediately, which makes
/// `FirstK` exact against this oracle too.
pub fn enumerate_with_sink(query: &Graph, data: &Graph, sink: &mut dyn EmbeddingSink) {
    enumerate_with_sink_deadline(query, data, sink, None);
}

/// Deadline-aware enumeration: like [`enumerate_with_sink`], but additionally stops
/// as soon as `deadline` has passed, checking the clock every
/// [`DEADLINE_CHECK_INTERVAL`] candidate examinations **inside** the search — a
/// stretch that reports nothing (a zero-match query) is interrupted all the same.
/// Returns `true` when the enumeration was cut short by the deadline.
pub fn enumerate_with_sink_deadline(
    query: &Graph,
    data: &Graph,
    sink: &mut dyn EmbeddingSink,
    deadline: Option<Instant>,
) -> bool {
    let n = query.vertex_count();
    if n == 0 {
        return false;
    }
    let mut search = Search {
        query,
        data,
        assignment: vec![u32::MAX; n],
        used: vec![false; data.vertex_count()],
        sampler: DeadlineSampler::new(deadline),
    };
    // An already-expired deadline stops the enumeration before any work.
    if search.sampler.check().is_err() {
        return true;
    }
    let _ = search.recurse(0, sink);
    search.sampler.expired()
}

struct Search<'a> {
    query: &'a Graph,
    data: &'a Graph,
    assignment: Vec<VertexId>,
    used: Vec<bool>,
    sampler: DeadlineSampler,
}

impl Search<'_> {
    /// Samples the deadline through the shared work-bounded
    /// [`DeadlineSampler`]: one clock read per [`DEADLINE_CHECK_INTERVAL`]
    /// candidate examinations, sticky once expired.
    fn deadline_hit(&mut self) -> bool {
        self.sampler.tick().is_err()
    }

    fn recurse(&mut self, u: usize, sink: &mut dyn EmbeddingSink) -> SinkControl {
        if u == self.query.vertex_count() {
            if self.deadline_hit() {
                return SinkControl::Stop;
            }
            return sink.report(&self.assignment);
        }
        for v in self.data.vertices() {
            if self.deadline_hit() {
                return SinkControl::Stop;
            }
            if self.used[v as usize] || self.data.label(v) != self.query.label(u as VertexId) {
                continue;
            }
            // Adjacency with every already-assigned neighbor.
            let ok = self.query.neighbors(u as VertexId).iter().all(|&w| {
                let w = w as usize;
                w >= u || self.data.has_edge(self.assignment[w], v)
            });
            if !ok {
                continue;
            }
            self.assignment[u] = v;
            self.used[v as usize] = true;
            let control = self.recurse(u + 1, sink);
            self.used[v as usize] = false;
            self.assignment[u] = u32::MAX;
            if control == SinkControl::Stop {
                return SinkControl::Stop;
            }
        }
        SinkControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;
    use std::time::Duration;

    #[test]
    fn triangle_in_square_has_four_embeddings() {
        let found = enumerate(
            &fixtures::triangle_query(),
            &fixtures::square_with_diagonal(),
        );
        assert_eq!(found.len(), 4);
        assert_eq!(
            count(
                &fixtures::triangle_query(),
                &fixtures::square_with_diagonal()
            ),
            4
        );
        // All reported embeddings are valid and distinct.
        let mut dedup = found.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), found.len());
    }

    #[test]
    fn paper_example_contains_named_embedding() {
        let (q, d) = fixtures::paper_example();
        let found = enumerate(&q, &d);
        assert!(found.contains(&vec![1, 4, 7, 10, 0]));
    }

    #[test]
    fn no_match_when_label_absent() {
        let q = graph_from_edges(&[9], &[]);
        let d = fixtures::square_with_diagonal();
        assert!(enumerate(&q, &d).is_empty());
    }

    #[test]
    fn single_vertex_query_matches_each_label_occurrence() {
        let q = graph_from_edges(&[1], &[]);
        let d = fixtures::square_with_diagonal(); // three label-1 vertices
        assert_eq!(count(&q, &d), 3);
    }

    #[test]
    fn injectivity_is_enforced() {
        // Query: two adjacent label-0 vertices; data: a single label-0 vertex with a
        // self-loop attempt (removed by the builder) — no embedding may map both query
        // vertices to the same data vertex.
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        let d = graph_from_edges(&[0], &[]);
        assert_eq!(count(&q, &d), 0);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let q = gup_graph::GraphBuilder::new().build();
        let d = fixtures::square_with_diagonal();
        assert!(enumerate(&q, &d).is_empty());
    }

    #[test]
    fn expired_deadline_stops_before_any_work() {
        let (q, d) = fixtures::paper_example();
        let mut sink = CountOnly::new();
        let expired = enumerate_with_sink_deadline(
            &q,
            &d,
            &mut sink,
            Some(Instant::now() - Duration::from_millis(1)),
        );
        assert!(expired);
        assert_eq!(sink.count(), 0);
    }

    #[test]
    fn absent_deadline_never_reports_expiry() {
        let (q, d) = fixtures::paper_example();
        let mut sink = CountOnly::new();
        assert!(!enumerate_with_sink_deadline(&q, &d, &mut sink, None));
        assert_eq!(sink.count(), 4);
    }

    /// The regression this module exists to pin: a **zero-match** query (the sink is
    /// never called, so a between-reports check can never fire) over a search space
    /// big enough to grind for seconds must still observe the deadline from inside
    /// the recursion and return quickly.
    #[test]
    fn zero_match_search_observes_the_deadline_mid_search() {
        // 26 label-0 vertices in a clique + one label-1 pendant; the query asks for
        // a path 0-0-0-0-0-0-1 whose label-1 end exists but never adjacent where
        // needed — actually make it impossible: query needs label 9 at the end.
        let n = 26u32;
        let mut labels = vec![0u32; n as usize];
        labels.push(1);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        let data = graph_from_edges(&labels, &edges);
        // Seven label-0 path vertices then an (unmatchable) label-9 tail: the clique
        // offers ~26^7 prefixes and zero complete matches.
        let query = graph_from_edges(
            &[0, 0, 0, 0, 0, 0, 0, 9],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
        );
        let deadline = Instant::now() + Duration::from_millis(50);
        let start = Instant::now();
        let mut sink = CountOnly::new();
        let expired = enumerate_with_sink_deadline(&query, &data, &mut sink, Some(deadline));
        let elapsed = start.elapsed();
        assert!(expired, "deadline must fire inside the zero-match search");
        assert_eq!(sink.count(), 0);
        assert!(
            elapsed < Duration::from_secs(1),
            "50 ms deadline took {elapsed:?} to honor"
        );
    }
}
