//! # gup-baselines
//!
//! Baseline subgraph matchers used as comparators in the evaluation (paper §4.1
//! compares GuP against DAF, GQL-G, GQL-R, and RapidMatch). The original systems are
//! C++ binaries that are not available here, so this crate implements the *algorithmic*
//! essence of each family from scratch:
//!
//! * [`brute_force`] — a tiny reference enumerator used as ground truth in tests.
//! * [`backtracking`] — candidate-space backtracking with selectable ordering and an
//!   optional DAF-style *failing-set* backjumping rule (`Plain`, `DafFailingSet`,
//!   `GqlStyle`, `RiStyle` variants).
//! * [`join`] — an edge-at-a-time join enumerator standing in for the join-based
//!   RapidMatch.
//!
//! All engines report the same [`BaselineResult`] record (embeddings, recursions /
//! intermediate results, early-termination flags) so the benchmark harness can compare
//! them with GuP on equal terms, and every engine streams its embeddings through the
//! workspace-wide [`EmbeddingSink`] trait (`run_with_sink` /
//! [`brute_force::enumerate_with_sink`]) — the same output layer GuP uses — so
//! metamorphic and differential tests can drive all engines through identical sinks.

pub mod backtracking;
pub mod brute_force;
pub mod join;

pub use backtracking::{BacktrackingBaseline, BaselineError, BaselineKind};
pub use gup_graph::sink::{
    CallbackSink, CollectAll, CountOnly, EmbeddingSink, FirstK, SinkControl,
};
pub use join::JoinBaseline;

use std::time::Duration;

/// Early-termination limits shared by all baseline engines (mirrors
/// `gup::SearchLimits` without depending on the `gup` crate).
#[derive(Clone, Copy, Debug)]
pub struct BaselineLimits {
    /// Stop after this many embeddings (`None` = unlimited).
    pub max_embeddings: Option<u64>,
    /// Stop after this wall-clock duration (`None` = unlimited).
    pub time_limit: Option<Duration>,
}

impl BaselineLimits {
    /// No limits.
    pub const UNLIMITED: BaselineLimits = BaselineLimits {
        max_embeddings: None,
        time_limit: None,
    };
}

impl Default for BaselineLimits {
    fn default() -> Self {
        BaselineLimits {
            max_embeddings: Some(100_000),
            time_limit: None,
        }
    }
}

/// Result record produced by every baseline engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineResult {
    /// Number of embeddings found (capped by the limit).
    pub embeddings: u64,
    /// Number of recursive calls (backtracking engines) or intermediate partial
    /// bindings materialized (join engine).
    pub recursions: u64,
    /// Number of recursive calls that led to a deadend.
    pub futile_recursions: u64,
    /// `true` if the embedding cap stopped the run.
    pub hit_embedding_limit: bool,
    /// `true` if the time limit stopped the run.
    pub hit_time_limit: bool,
    /// `true` if the sink returned [`SinkControl::Stop`] and ended the run.
    pub stopped_by_sink: bool,
}

impl BaselineResult {
    /// `true` if any early-termination condition fired (a limit or a sink stop).
    pub fn terminated_early(&self) -> bool {
        self.hit_embedding_limit || self.hit_time_limit || self.stopped_by_sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_defaults() {
        let d = BaselineLimits::default();
        assert_eq!(d.max_embeddings, Some(100_000));
        assert!(d.time_limit.is_none());
        assert!(BaselineLimits::UNLIMITED.max_embeddings.is_none());
    }

    #[test]
    fn result_termination_flag() {
        let mut r = BaselineResult::default();
        assert!(!r.terminated_early());
        r.hit_time_limit = true;
        assert!(r.terminated_early());
    }
}
