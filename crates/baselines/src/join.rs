//! Edge-at-a-time join enumerator (RapidMatch stand-in).
//!
//! RapidMatch treats subgraph matching as a relational join over the query's edge
//! relations. This baseline reproduces that execution style in its simplest form:
//! query edges are processed in a connected order; a table of partial bindings is
//! extended edge by edge (a hash-free nested-loop join over the candidate space's
//! adjacency lists), with injectivity enforced at each step. The number of
//! intermediate bindings plays the role that recursion counts play for the
//! backtracking engines.

use crate::backtracking::BaselineError;
use crate::{BaselineLimits, BaselineResult};
use gup_candidate::{CandidateSpace, FilterConfig};
use gup_graph::deadline::DeadlineSampler;
use gup_graph::sink::{min_limit, CountOnly, EmbeddingSink, SinkControl};
use gup_graph::{Graph, PreparedData, QueryGraph, VertexId};
use gup_order::OrderingStrategy;
use std::time::Instant;

/// The join-based baseline matcher.
pub struct JoinBaseline {
    space: CandidateSpace,
    /// Query vertices in join (matching) order; vertex `i` of the permuted space.
    query_vertices: usize,
    /// For vertex `i` (i ≥ 1): its backward neighbors (all already bound when `i` is
    /// joined in).
    backward: Vec<Vec<usize>>,
    /// Original query-vertex id at each join-order position (sinks receive
    /// embeddings in the original numbering).
    original_id: Vec<VertexId>,
}

impl JoinBaseline {
    /// Builds the join baseline for `query` against `data`. Returns `None` if the
    /// query is not usable (empty / disconnected / too large). Legacy one-shot
    /// adapter: borrows `data` directly (no clone, no index build) and shares
    /// everything after the initial filter pass with
    /// [`JoinBaseline::with_prepared`].
    pub fn new(query: &Graph, data: &Graph, order: OrderingStrategy) -> Option<Self> {
        let validated = QueryGraph::new(query.clone()).ok()?;
        let space = CandidateSpace::build(query, data, &FilterConfig::default());
        Some(Self::from_parts(query, validated, space, order))
    }

    /// Builds the join baseline for `query` against a prepared data graph.
    pub fn with_prepared(
        query: &Graph,
        prepared: &PreparedData,
        order: OrderingStrategy,
    ) -> Result<Self, BaselineError> {
        Self::with_prepared_deadline(query, prepared, order, None)
    }

    /// Like [`JoinBaseline::with_prepared`], but the candidate filter pass honors
    /// `deadline`: once it expires, construction aborts with
    /// [`BaselineError::FilterTimeout`].
    pub fn with_prepared_deadline(
        query: &Graph,
        prepared: &PreparedData,
        order: OrderingStrategy,
        deadline: Option<Instant>,
    ) -> Result<Self, BaselineError> {
        let validated = QueryGraph::new(query.clone()).map_err(BaselineError::InvalidQuery)?;
        let space = CandidateSpace::build_prepared_deadline(
            query,
            prepared,
            &FilterConfig::default(),
            deadline,
        )
        .map_err(|_| BaselineError::FilterTimeout)?;
        Ok(Self::from_parts(query, validated, space, order))
    }

    /// Everything after the initial candidate filter, shared by both constructors.
    fn from_parts(
        query: &Graph,
        validated: QueryGraph,
        space: CandidateSpace,
        order: OrderingStrategy,
    ) -> Self {
        let order = gup_order::compute_order(query, &space.candidate_sizes(), order)
            .expect("validated queries are connected, so an order always exists");
        // The join enumerator never touches the bitset views, so it always uses the
        // widest `OrderedQuery` instantiation and thereby accepts every query size
        // the workspace supports without width dispatch.
        let ordered = validated
            .with_order::<4>(&order)
            .expect("ordering strategies produce connected orders");
        let space = space.permuted(&order);
        let n = ordered.vertex_count();
        let backward = (0..n)
            .map(|i| ordered.backward_neighbors(i).to_vec())
            .collect();
        JoinBaseline {
            space,
            query_vertices: n,
            backward,
            original_id: order,
        }
    }

    /// Runs the join and reports embeddings / intermediate-result counts. Thin
    /// adapter over [`JoinBaseline::run_with_sink`].
    pub fn run(&self, limits: BaselineLimits) -> BaselineResult {
        self.run_with_sink(limits, &mut CountOnly::new())
    }

    /// Runs the join, streaming every complete binding into `sink` as an embedding
    /// over the *original* query-vertex ids (the shared [`EmbeddingSink`] protocol).
    /// The sink's capacity is folded into the embedding limit; a
    /// [`SinkControl::Stop`] ends the run.
    pub fn run_with_sink(
        &self,
        mut limits: BaselineLimits,
        sink: &mut dyn EmbeddingSink,
    ) -> BaselineResult {
        limits.max_embeddings = min_limit(limits.max_embeddings, sink.capacity());
        let mut result = BaselineResult::default();
        let mut sampler = DeadlineSampler::starting_now(limits.time_limit);
        let n = self.query_vertices;
        if n == 0 || self.space.any_empty() || limits.max_embeddings == Some(0) {
            return result;
        }
        let mut scratch: Vec<VertexId> = vec![0; n];
        // Partial bindings after joining vertex 0: one per candidate.
        let mut table: Vec<Vec<u32>> = (0..self.space.candidates(0).len() as u32)
            .map(|c| vec![c])
            .collect();
        result.recursions += table.len() as u64;
        if n == 1 {
            // Single-vertex query: every candidate of vertex 0 already is a complete
            // binding; there is no edge to join.
            for binding in &table {
                result.embeddings += 1;
                if self.deliver(binding, None, sink, &mut scratch) == SinkControl::Stop {
                    result.stopped_by_sink = true;
                    return result;
                }
                if let Some(max) = limits.max_embeddings {
                    if result.embeddings >= max {
                        result.hit_embedding_limit = true;
                        return result;
                    }
                }
            }
            return result;
        }
        for i in 1..n {
            let mut next: Vec<Vec<u32>> = Vec::new();
            let anchors = &self.backward[i];
            let first_anchor = anchors[0];
            'bindings: for binding in &table {
                if sampler.tick().is_err() {
                    result.hit_time_limit = true;
                    return result;
                }
                // Candidates of u_i adjacent to the first bound anchor, then checked
                // against the remaining anchors and injectivity.
                let base =
                    self.space
                        .adjacent_candidates(first_anchor, binding[first_anchor] as usize, i);
                'candidates: for &ci in base {
                    if sampler.tick().is_err() {
                        result.hit_time_limit = true;
                        return result;
                    }
                    for &a in &anchors[1..] {
                        let adj = self.space.adjacent_candidates(a, binding[a] as usize, i);
                        if adj.binary_search(&ci).is_err() {
                            continue 'candidates;
                        }
                    }
                    // Injectivity over data vertices.
                    let v = self.space.candidates(i)[ci as usize];
                    for (j, &cj) in binding.iter().enumerate() {
                        if self.space.candidates(j)[cj as usize] == v {
                            continue 'candidates;
                        }
                    }
                    result.recursions += 1;
                    if i == n - 1 {
                        result.embeddings += 1;
                        if self.deliver(binding, Some(ci), sink, &mut scratch) == SinkControl::Stop
                        {
                            result.stopped_by_sink = true;
                            break 'bindings;
                        }
                        if let Some(max) = limits.max_embeddings {
                            if result.embeddings >= max {
                                result.hit_embedding_limit = true;
                                break 'bindings;
                            }
                        }
                    } else {
                        let mut extended = binding.clone();
                        extended.push(ci);
                        next.push(extended);
                    }
                }
            }
            if i < n - 1 {
                if next.is_empty() {
                    return result;
                }
                table = next;
            }
        }
        result
    }

    /// Translates a complete binding (plus, optionally, the final vertex's candidate
    /// index that was never pushed into the table) into original-id form in `scratch`
    /// and reports it. Translation is skipped for sinks that ignore contents.
    fn deliver(
        &self,
        binding: &[u32],
        last: Option<u32>,
        sink: &mut dyn EmbeddingSink,
        scratch: &mut [VertexId],
    ) -> SinkControl {
        if sink.wants_embeddings() {
            for (j, &cj) in binding.iter().enumerate() {
                scratch[self.original_id[j] as usize] = self.space.candidates(j)[cj as usize];
            }
            if let Some(ci) = last {
                let j = binding.len();
                scratch[self.original_id[j] as usize] = self.space.candidates(j)[ci as usize];
            }
        }
        sink.report(scratch)
    }

    /// Counts all embeddings (through a [`CountOnly`] sink). Intended for tests.
    pub fn count(&self) -> u64 {
        self.run(BaselineLimits::UNLIMITED).embeddings
    }

    /// Number of query vertices.
    pub fn query_vertex_count(&self) -> usize {
        self.query_vertices
    }

    /// The candidate space the join runs over (for inspection in tests).
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;

    fn check(query: &Graph, data: &Graph) {
        let expected = brute_force::count(query, data);
        let join = JoinBaseline::new(query, data, OrderingStrategy::GqlStyle).unwrap();
        assert_eq!(join.count(), expected);
    }

    #[test]
    fn join_agrees_with_brute_force() {
        let (q, d) = fixtures::paper_example();
        check(&q, &d);
        check(
            &fixtures::triangle_query(),
            &fixtures::square_with_diagonal(),
        );
        check(
            &fixtures::path(4, 0),
            &graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
        );
        check(
            &fixtures::clique4(1),
            &graph_from_edges(
                &[1; 6],
                &[
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (1, 2),
                    (1, 3),
                    (2, 3),
                    (2, 4),
                    (3, 4),
                    (1, 4),
                ],
            ),
        );
    }

    #[test]
    fn join_counts_intermediate_results() {
        let (q, d) = fixtures::paper_example();
        let join = JoinBaseline::new(&q, &d, OrderingStrategy::GqlStyle).unwrap();
        let r = join.run(BaselineLimits::UNLIMITED);
        assert!(r.recursions >= r.embeddings);
        assert!(r.recursions > 0);
    }

    #[test]
    fn join_respects_embedding_limit() {
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        let d = graph_from_edges(
            &[0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let join = JoinBaseline::new(&q, &d, OrderingStrategy::GqlStyle).unwrap();
        let r = join.run(BaselineLimits {
            max_embeddings: Some(5),
            time_limit: None,
        });
        assert_eq!(r.embeddings, 5);
        assert!(r.hit_embedding_limit);
    }

    #[test]
    fn join_rejects_invalid_queries() {
        let disconnected = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let d = fixtures::square_with_diagonal();
        assert!(JoinBaseline::new(&disconnected, &d, OrderingStrategy::GqlStyle).is_none());
    }

    #[test]
    fn join_handles_empty_candidates() {
        let q = graph_from_edges(&[9, 9], &[(0, 1)]);
        let d = fixtures::square_with_diagonal();
        let join = JoinBaseline::new(&q, &d, OrderingStrategy::GqlStyle).unwrap();
        assert_eq!(join.count(), 0);
    }
}
