//! Candidate-space backtracking baselines.
//!
//! These engines share GuP's substrate (LDF/NLF/DAG-DP candidate space, connected
//! matching orders) but none of its guards, which makes them faithful stand-ins for the
//! systems the paper compares against:
//!
//! * [`BaselineKind::Plain`] — plain backtracking over the candidate space
//!   ("Baseline" in Fig. 9 of the paper).
//! * [`BaselineKind::DafFailingSet`] — adds DAF-style *failing-set* pruning: deadends
//!   produce a failing set (closed under backward-neighbor ancestors, which is what
//!   makes DAF's sets larger than GuP's deadend masks) that triggers backjumping but is
//!   discarded afterwards — no recording, exactly the contrast §3.4 draws.
//! * [`BaselineKind::GqlStyle`] — GraphQL-flavoured: NLF filtering without the DAG-DP
//!   refinement, candidate-size-greedy (GQL) ordering, plain backtracking.
//! * [`BaselineKind::RiStyle`] — RI-flavoured ordering (maximize backward
//!   connectivity), plain backtracking.

use crate::{BaselineLimits, BaselineResult};
use gup_candidate::{CandidateSpace, FilterConfig};
use gup_graph::deadline::DeadlineSampler;
use gup_graph::sink::{min_limit, CountOnly, EmbeddingSink, SinkControl};
use gup_graph::{Graph, PreparedData, QVSet, QueryGraph, VertexId};
use gup_order::OrderingStrategy;
use std::time::Instant;

/// The baseline families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Plain candidate-space backtracking (VC-style order, full filtering).
    Plain,
    /// Plain backtracking plus DAF-style failing-set backjumping.
    DafFailingSet,
    /// GraphQL-style: NLF-only filtering, GQL order, plain backtracking.
    GqlStyle,
    /// RI-style ordering, plain backtracking.
    RiStyle,
}

impl BaselineKind {
    /// All baseline kinds, for sweeps.
    pub const ALL: [BaselineKind; 4] = [
        BaselineKind::Plain,
        BaselineKind::DafFailingSet,
        BaselineKind::GqlStyle,
        BaselineKind::RiStyle,
    ];

    /// Stable display name used in experiment output (matching the paper's labels
    /// where a correspondence exists).
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Plain => "Plain-BT",
            BaselineKind::DafFailingSet => "DAF-FS",
            BaselineKind::GqlStyle => "GQL-G",
            BaselineKind::RiStyle => "GQL-R",
        }
    }

    fn filter_config(self) -> FilterConfig {
        match self {
            // GraphQL performs its own local filtering but no DAG-DP refinement.
            BaselineKind::GqlStyle => FilterConfig {
                use_nlf: true,
                refinement_passes: 0,
            },
            _ => FilterConfig::default(),
        }
    }

    fn ordering(self) -> OrderingStrategy {
        match self {
            BaselineKind::Plain => OrderingStrategy::VcStyle,
            BaselineKind::DafFailingSet => OrderingStrategy::ConnectedBfs,
            BaselineKind::GqlStyle => OrderingStrategy::GqlStyle,
            BaselineKind::RiStyle => OrderingStrategy::RiStyle,
        }
    }

    fn failing_sets(self) -> bool {
        matches!(self, BaselineKind::DafFailingSet)
    }
}

/// A baseline matcher instance (candidate space + order, built once per query),
/// generic over the query-vertex bitset width `W` of its failing sets (the session
/// layer auto-dispatches to the narrowest width that fits the query; `W = 1` is
/// the ≤64-vertex fast path).
#[derive(Debug)]
pub struct BacktrackingBaseline<const W: usize = 1> {
    kind: BaselineKind,
    space: CandidateSpace,
    /// Forward neighbors of each (re-ordered) query vertex.
    forward: Vec<Vec<usize>>,
    /// Transitive backward-neighbor closure ("ancestors") of each query vertex, used
    /// by the failing-set rule.
    ancestors: Vec<QVSet<W>>,
    /// Original query-vertex id at each matching-order position, used to report
    /// embeddings to sinks in the original numbering.
    original_id: Vec<VertexId>,
    query_vertices: usize,
}

/// Errors raised when the baseline cannot be constructed.
#[derive(Debug)]
pub enum BaselineError {
    /// The query graph is unusable (empty, disconnected, or too large).
    InvalidQuery(gup_graph::QueryGraphError),
    /// The deadline expired during the candidate filter pass, before any search
    /// ran. The session layer reports this as `hit_time_limit`.
    FilterTimeout,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::InvalidQuery(e) => write!(f, "invalid query graph: {e}"),
            BaselineError::FilterTimeout => {
                write!(f, "time budget expired during the candidate filter pass")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl<const W: usize> BacktrackingBaseline<W> {
    /// Builds the baseline matcher for `query` against `data`. Legacy one-shot
    /// adapter: borrows `data` directly (no clone, no index build) and shares
    /// everything after the initial filter pass with
    /// [`BacktrackingBaseline::with_prepared`].
    pub fn new(query: &Graph, data: &Graph, kind: BaselineKind) -> Result<Self, BaselineError> {
        let validated = Self::validated_for_width(query)?;
        let space = CandidateSpace::build(query, data, &kind.filter_config());
        Ok(Self::from_parts(query, validated, space, kind))
    }

    /// Builds the baseline matcher for `query` against a prepared data graph (the
    /// candidate space's NLF pass runs against the precomputed signature arena).
    pub fn with_prepared(
        query: &Graph,
        prepared: &PreparedData,
        kind: BaselineKind,
    ) -> Result<Self, BaselineError> {
        Self::with_prepared_deadline(query, prepared, kind, None)
    }

    /// Like [`BacktrackingBaseline::with_prepared`], but the candidate filter pass
    /// honors `deadline`: once it expires, construction aborts with
    /// [`BaselineError::FilterTimeout`] instead of grinding through the remaining
    /// filter work.
    pub fn with_prepared_deadline(
        query: &Graph,
        prepared: &PreparedData,
        kind: BaselineKind,
        deadline: Option<Instant>,
    ) -> Result<Self, BaselineError> {
        let validated = Self::validated_for_width(query)?;
        let space = CandidateSpace::build_prepared_deadline(
            query,
            prepared,
            &kind.filter_config(),
            deadline,
        )
        .map_err(|_| BaselineError::FilterTimeout)?;
        Ok(Self::from_parts(query, validated, space, kind))
    }

    /// Global validation plus this width's capacity check
    /// (`QueryGraph::check_width`, the shared rule): a query wider than `64 * W`
    /// is a typed `TooLarge` error, never a wrapped bitmask.
    fn validated_for_width(query: &Graph) -> Result<QueryGraph, BaselineError> {
        let validated = QueryGraph::new(query.clone()).map_err(BaselineError::InvalidQuery)?;
        validated
            .check_width::<W>()
            .map_err(BaselineError::InvalidQuery)?;
        Ok(validated)
    }

    /// Everything after the initial candidate filter, shared by both constructors.
    fn from_parts(
        query: &Graph,
        validated: QueryGraph,
        space: CandidateSpace,
        kind: BaselineKind,
    ) -> Self {
        let order = gup_order::compute_order(query, &space.candidate_sizes(), kind.ordering())
            .expect("validated queries are connected, so an order always exists");
        let ordered = validated
            .with_order::<W>(&order)
            .expect("ordering strategies produce connected orders");
        let space = space.permuted(&order);
        let n = ordered.vertex_count();
        let backward: Vec<Vec<usize>> = (0..n)
            .map(|i| ordered.backward_neighbors(i).to_vec())
            .collect();
        let forward: Vec<Vec<usize>> = (0..n)
            .map(|i| ordered.forward_neighbors(i).to_vec())
            .collect();
        // Ancestor closure: all query vertices reachable by repeatedly following
        // backward neighbors. This is the "and all their ancestors" part of DAF's
        // failing-set definition that the paper contrasts with GuP's smaller masks.
        let mut ancestors = vec![QVSet::<W>::EMPTY; n];
        for i in 0..n {
            let mut set = QVSet::singleton(i);
            for &b in &backward[i] {
                set |= ancestors[b];
                set.insert(b);
            }
            ancestors[i] = set;
        }
        BacktrackingBaseline {
            kind,
            space,
            forward,
            ancestors,
            original_id: order,
            query_vertices: n,
        }
    }

    /// The baseline family of this instance.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Runs the search under the given limits, counting embeddings without
    /// materializing any. Thin adapter over
    /// [`BacktrackingBaseline::run_with_sink`].
    pub fn run(&self, limits: BaselineLimits) -> BaselineResult {
        self.run_with_sink(limits, &mut CountOnly::new())
    }

    /// Runs the search, streaming every embedding into `sink` over the *original*
    /// query-vertex ids — the same [`EmbeddingSink`] protocol GuP uses, so the two
    /// families can be driven through identical output layers in differential tests.
    /// The sink's capacity is folded into the embedding limit; a
    /// [`SinkControl::Stop`] terminates the run (`BaselineResult::stopped_by_sink`).
    pub fn run_with_sink(
        &self,
        mut limits: BaselineLimits,
        sink: &mut dyn EmbeddingSink,
    ) -> BaselineResult {
        limits.max_embeddings = min_limit(limits.max_embeddings, sink.capacity());
        let mut state = RunState {
            baseline: self,
            limits,
            sampler: DeadlineSampler::starting_now(limits.time_limit),
            result: BaselineResult::default(),
            assignment: vec![0; self.query_vertices],
            owner: vec![None; self.data_vertex_upper_bound()],
            cand_stack: (0..self.query_vertices)
                .map(|u| vec![(0..self.space.candidates(u).len() as u32).collect::<Vec<u32>>()])
                .collect(),
            sink,
            scratch: vec![0; self.query_vertices],
        };
        if !self.space.any_empty() && self.query_vertices > 0 && limits.max_embeddings != Some(0) {
            let _ = state.backtrack(0);
        }
        state.result
    }

    fn data_vertex_upper_bound(&self) -> usize {
        (0..self.query_vertices)
            .flat_map(|u| self.space.candidates(u).iter().copied())
            .max()
            .map(|v| v as usize + 1)
            .unwrap_or(0)
    }
}

enum Outcome<const W: usize> {
    FoundSome,
    Deadend(QVSet<W>),
    Aborted,
}

struct RunState<'a, 's, const W: usize> {
    baseline: &'a BacktrackingBaseline<W>,
    limits: BaselineLimits,
    sampler: DeadlineSampler,
    result: BaselineResult,
    assignment: Vec<u32>,
    /// `u16` (not `u8`): the widest supported queries have up to 256 vertices.
    owner: Vec<Option<u16>>,
    cand_stack: Vec<Vec<Vec<u32>>>,
    sink: &'s mut dyn EmbeddingSink,
    /// Reused per-embedding buffer for the original-id translation reported to the
    /// sink (no per-embedding allocation).
    scratch: Vec<VertexId>,
}

impl<'a, 's, const W: usize> RunState<'a, 's, W> {
    fn backtrack(&mut self, k: usize) -> Outcome<W> {
        let n = self.baseline.query_vertices;
        if k == n {
            self.result.embeddings += 1;
            if self.sink.wants_embeddings() {
                for (j, &cj) in self.assignment.iter().enumerate() {
                    self.scratch[self.baseline.original_id[j] as usize] =
                        self.baseline.space.candidates(j)[cj as usize];
                }
            }
            if self.sink.report(&self.scratch) == SinkControl::Stop {
                self.result.stopped_by_sink = true;
                return Outcome::Aborted;
            }
            if let Some(max) = self.limits.max_embeddings {
                if self.result.embeddings >= max {
                    self.result.hit_embedding_limit = true;
                    return Outcome::Aborted;
                }
            }
            return Outcome::FoundSome;
        }
        self.result.recursions += 1;
        if self.sampler.tick().is_err() {
            self.result.hit_time_limit = true;
            return Outcome::Aborted;
        }

        let failing_sets = self.baseline.kind.failing_sets();
        let mut found_any = false;
        let mut union = QVSet::<W>::EMPTY;
        let mut without_k: Option<QVSet<W>> = None;

        let level = self.cand_stack[k].len() - 1;
        let len = self.cand_stack[k][level].len();
        for pos in 0..len {
            let cv = self.cand_stack[k][level][pos];
            let v = self.baseline.space.candidates(k)[cv as usize];
            // Injectivity: the conflict depends on the query vertex currently holding
            // `v`, so its ancestors must join the failing set too.
            if let Some(holder) = self.owner[v as usize] {
                if failing_sets {
                    union |= self.baseline.ancestors[k] | self.baseline.ancestors[holder as usize];
                }
                continue;
            }
            // Refine forward neighbors.
            self.owner[v as usize] = Some(k as u16);
            self.assignment[k] = cv;
            let mut emptied: Option<usize> = None;
            let mut pushed: Vec<usize> = Vec::with_capacity(self.baseline.forward[k].len());
            for fi in 0..self.baseline.forward[k].len() {
                let f = self.baseline.forward[k][fi];
                let adjacency = self.baseline.space.adjacent_candidates(k, cv as usize, f);
                let parent = self.cand_stack[f].last().expect("stack never empty");
                let new_list = intersect_sorted(parent, adjacency);
                if new_list.is_empty() {
                    emptied = Some(f);
                    break;
                }
                self.cand_stack[f].push(new_list);
                pushed.push(f);
            }
            let child = if let Some(f) = emptied {
                // A future vertex lost all candidates.
                if failing_sets {
                    Some(self.baseline.ancestors[f])
                } else {
                    Some(QVSet::EMPTY)
                }
            } else {
                match self.backtrack(k + 1) {
                    Outcome::Aborted => {
                        for &f in &pushed {
                            self.cand_stack[f].pop();
                        }
                        self.owner[v as usize] = None;
                        return Outcome::Aborted;
                    }
                    Outcome::FoundSome => {
                        found_any = true;
                        None
                    }
                    Outcome::Deadend(mask) => Some(mask),
                }
            };
            for &f in &pushed {
                self.cand_stack[f].pop();
            }
            self.owner[v as usize] = None;

            if let Some(mask) = child {
                if failing_sets {
                    union |= mask;
                    if !mask.contains(k) && !mask.is_empty() {
                        without_k = Some(mask);
                        // Failing-set backjump: remaining siblings cannot help.
                        break;
                    }
                }
            }
        }

        if found_any {
            return Outcome::FoundSome;
        }
        self.result.futile_recursions += 1;
        if !failing_sets {
            return Outcome::Deadend(QVSet::EMPTY);
        }
        if let Some(mask) = without_k {
            return Outcome::Deadend(mask);
        }
        Outcome::Deadend(union.without(k) | self.baseline.ancestors[k].without(k))
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force;
    use gup_graph::builder::graph_from_edges;
    use gup_graph::fixtures;

    fn check_against_brute_force(query: &Graph, data: &Graph) {
        let expected = brute_force::count(query, data);
        for kind in BaselineKind::ALL {
            let m = BacktrackingBaseline::<1>::new(query, data, kind).unwrap();
            let r = m.run(BaselineLimits::UNLIMITED);
            assert_eq!(
                r.embeddings, expected,
                "kind {kind:?} disagrees with brute force"
            );
        }
    }

    #[test]
    fn all_kinds_agree_with_brute_force_on_fixtures() {
        let (q, d) = fixtures::paper_example();
        check_against_brute_force(&q, &d);
        check_against_brute_force(
            &fixtures::triangle_query(),
            &fixtures::square_with_diagonal(),
        );
        check_against_brute_force(
            &fixtures::path(4, 0),
            &graph_from_edges(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
        );
        check_against_brute_force(
            &fixtures::clique4(1),
            &graph_from_edges(
                &[1; 6],
                &[
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (1, 2),
                    (1, 3),
                    (2, 3),
                    (2, 4),
                    (3, 4),
                    (1, 4),
                ],
            ),
        );
    }

    #[test]
    fn failing_sets_never_change_the_count_but_can_reduce_recursions() {
        let (q, d) = fixtures::paper_example();
        let plain = BacktrackingBaseline::<1>::new(&q, &d, BaselineKind::Plain)
            .unwrap()
            .run(BaselineLimits::UNLIMITED);
        let daf = BacktrackingBaseline::<1>::new(&q, &d, BaselineKind::DafFailingSet)
            .unwrap()
            .run(BaselineLimits::UNLIMITED);
        assert_eq!(plain.embeddings, daf.embeddings);
        assert!(daf.recursions > 0);
    }

    #[test]
    fn embedding_limit_is_respected() {
        let q = graph_from_edges(&[0, 0], &[(0, 1)]);
        let d = graph_from_edges(
            &[0; 8],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let m = BacktrackingBaseline::<1>::new(&q, &d, BaselineKind::Plain).unwrap();
        let r = m.run(BaselineLimits {
            max_embeddings: Some(3),
            time_limit: None,
        });
        assert_eq!(r.embeddings, 3);
        assert!(r.hit_embedding_limit);
        assert!(r.terminated_early());
    }

    #[test]
    fn invalid_query_rejected() {
        let disconnected = graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
        let d = fixtures::square_with_diagonal();
        let err =
            BacktrackingBaseline::<1>::new(&disconnected, &d, BaselineKind::Plain).unwrap_err();
        assert!(format!("{err}").contains("invalid query"));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(BaselineKind::Plain.name(), "Plain-BT");
        assert_eq!(BaselineKind::DafFailingSet.name(), "DAF-FS");
        assert_eq!(BaselineKind::GqlStyle.name(), "GQL-G");
        assert_eq!(BaselineKind::RiStyle.name(), "GQL-R");
    }

    #[test]
    fn no_embeddings_when_cycle_cannot_close() {
        let q = fixtures::triangle_query();
        let d = graph_from_edges(&[0, 1, 0, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        for kind in BaselineKind::ALL {
            let m = BacktrackingBaseline::<1>::new(&q, &d, kind).unwrap();
            assert_eq!(m.run(BaselineLimits::UNLIMITED).embeddings, 0);
        }
    }
}
