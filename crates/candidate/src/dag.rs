//! Query DAGs for dynamic-programming candidate refinement.
//!
//! DAF/VEQ-style candidate filtering works over a rooted DAG of the query graph: the
//! root is the most selective query vertex (fewest initial candidates per unit degree),
//! vertices are ordered by BFS from the root, and every query edge is directed from the
//! earlier to the later endpoint. Refinement then alternates top-down passes (parents
//! constrain children) and bottom-up passes (children constrain parents).

use gup_graph::{Graph, VertexId};

/// A rooted DAG over the query graph's vertices.
#[derive(Clone, Debug)]
pub struct QueryDag {
    root: VertexId,
    /// Topological order of the query vertices (BFS order from the root).
    topo_order: Vec<VertexId>,
    /// `parents[u]` = query vertices with a DAG edge into `u`.
    parents: Vec<Vec<VertexId>>,
    /// `children[u]` = query vertices with a DAG edge out of `u`.
    children: Vec<Vec<VertexId>>,
}

impl QueryDag {
    /// Builds a DAG rooted at `root` by BFS over `query` (ties between same-level
    /// vertices are broken by vertex id, making the construction deterministic).
    pub fn rooted_at(query: &Graph, root: VertexId) -> Self {
        let n = query.vertex_count();
        let mut visited = vec![false; n];
        let mut position = vec![usize::MAX; n];
        let mut topo_order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            position[v as usize] = topo_order.len();
            topo_order.push(v);
            for &w in query.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        // Disconnected query vertices (callers validate connectivity, but stay robust).
        for v in 0..n as VertexId {
            if !visited[v as usize] {
                position[v as usize] = topo_order.len();
                topo_order.push(v);
            }
        }
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for (a, b) in query.edges() {
            let (from, to) = if position[a as usize] < position[b as usize] {
                (a, b)
            } else {
                (b, a)
            };
            children[from as usize].push(to);
            parents[to as usize].push(from);
        }
        QueryDag {
            root,
            topo_order,
            parents,
            children,
        }
    }

    /// Builds a DAG rooted at the most selective query vertex: the one minimizing
    /// `|initial candidates| / degree` (the DAF root-selection rule). `candidate_sizes`
    /// gives the initial candidate-set size per query vertex.
    pub fn with_selective_root(query: &Graph, candidate_sizes: &[usize]) -> Self {
        assert_eq!(candidate_sizes.len(), query.vertex_count());
        let root = (0..query.vertex_count() as VertexId)
            .min_by(|&a, &b| {
                let score = |v: VertexId| {
                    candidate_sizes[v as usize] as f64 / query.degree(v).max(1) as f64
                };
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .unwrap_or(0);
        QueryDag::rooted_at(query, root)
    }

    /// The DAG root.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Topological (BFS) order of the query vertices, root first.
    #[inline]
    pub fn topological_order(&self) -> &[VertexId] {
        &self.topo_order
    }

    /// DAG parents of `u`.
    #[inline]
    pub fn parents(&self, u: VertexId) -> &[VertexId] {
        &self.parents[u as usize]
    }

    /// DAG children of `u`.
    #[inline]
    pub fn children(&self, u: VertexId) -> &[VertexId] {
        &self.children[u as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;

    fn cycle5() -> Graph {
        graph_from_edges(&[0, 1, 2, 3, 0], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn dag_covers_all_edges_exactly_once() {
        let q = cycle5();
        let dag = QueryDag::rooted_at(&q, 0);
        let directed: usize = (0..5).map(|v| dag.children(v).len()).sum();
        assert_eq!(directed, q.edge_count());
        // Every edge appears as exactly one parent/child relation.
        for (a, b) in q.edges() {
            let forward = dag.children(a).contains(&b);
            let backward = dag.children(b).contains(&a);
            assert!(forward ^ backward);
        }
    }

    #[test]
    fn topological_order_respects_dag_edges() {
        let q = cycle5();
        let dag = QueryDag::rooted_at(&q, 2);
        assert_eq!(dag.root(), 2);
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in dag.topological_order().iter().enumerate() {
                p[v as usize] = i;
            }
            p
        };
        for v in 0..5u32 {
            for &c in dag.children(v) {
                assert!(pos[v as usize] < pos[c as usize]);
            }
        }
        assert_eq!(dag.topological_order().len(), 5);
    }

    #[test]
    fn root_has_no_parents() {
        let q = cycle5();
        for root in 0..5u32 {
            let dag = QueryDag::rooted_at(&q, root);
            assert!(dag.parents(root).is_empty());
        }
    }

    #[test]
    fn selective_root_prefers_small_candidate_sets() {
        let q = cycle5();
        // Vertex 3 has far fewer candidates per degree than the others.
        let sizes = vec![100, 100, 100, 2, 100];
        let dag = QueryDag::with_selective_root(&q, &sizes);
        assert_eq!(dag.root(), 3);
    }

    #[test]
    fn selective_root_breaks_ties_by_id() {
        let q = cycle5();
        let sizes = vec![10; 5];
        let dag = QueryDag::with_selective_root(&q, &sizes);
        assert_eq!(dag.root(), 0);
    }

    #[test]
    fn single_vertex_query() {
        let q = graph_from_edges(&[7], &[]);
        let dag = QueryDag::rooted_at(&q, 0);
        assert_eq!(dag.topological_order(), &[0]);
        assert!(dag.children(0).is_empty());
        assert!(dag.parents(0).is_empty());
    }

    #[test]
    fn star_query_children_from_center() {
        let q = graph_from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let dag = QueryDag::rooted_at(&q, 0);
        assert_eq!(dag.children(0).len(), 3);
        for leaf in 1..4u32 {
            assert_eq!(dag.parents(leaf), &[0]);
            assert!(dag.children(leaf).is_empty());
        }
    }
}
