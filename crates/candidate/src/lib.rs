//! # gup-candidate
//!
//! Candidate filtering and the candidate space, the substrate GuP's guarded candidate
//! space (GCS) is built on.
//!
//! The paper delegates candidate filtering to "extended DAG-graph DP" (from VEQ) and
//! treats the concrete filter as interchangeable ("an approach for candidate filtering
//! and matching order optimization is out of the scope of this work", §3.1). This crate
//! provides that substrate:
//!
//! * [`filters`] — the classic per-vertex filters: label-and-degree filtering (LDF,
//!   Ullmann) and neighborhood label frequency filtering (NLF).
//! * [`dag`] — a query DAG (BFS-rooted at the most selective query vertex), the shape
//!   over which the dynamic-programming refinement runs.
//! * [`space`] — [`CandidateSpace`]: candidate-vertex sets `C(u_i)` for every query
//!   vertex plus *candidate edges* between them, refined by DAG-graph-DP-style
//!   bottom-up/top-down passes.
//!
//! ```
//! use gup_graph::builder::graph_from_edges;
//! use gup_candidate::{CandidateSpace, FilterConfig};
//!
//! // Data: a labeled square with a diagonal; query: a labeled triangle.
//! let data = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
//! let query = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (2, 0)]);
//! let cs = CandidateSpace::build(&query, &data, &FilterConfig::default());
//! assert!(!cs.any_empty());
//! // Query vertex 1 (label 1) can only be data vertex 1 or 3.
//! assert_eq!(cs.candidates(1), &[1, 3]);
//! ```

pub mod dag;
pub mod filters;
pub mod space;

pub use dag::QueryDag;
pub use filters::{
    ldf_candidates, ldf_candidates_sampled, nlf_candidates, nlf_candidates_prepared,
    nlf_candidates_prepared_sampled, nlf_candidates_sampled, nlf_filter, nlf_filter_prepared,
    NlfProfile,
};
pub use gup_graph::deadline::{DeadlineExceeded, DeadlineSampler};
pub use space::{CandidateSpace, FilterConfig};
