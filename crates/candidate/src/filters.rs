//! Per-vertex candidate filters: LDF and NLF.
//!
//! * **LDF** (label-and-degree filtering, Ullmann 1976): data vertex `v` is a candidate
//!   of query vertex `u` if `ℓ(v) = ℓ(u)` and `deg(v) ≥ deg(u)`.
//! * **NLF** (neighborhood label frequency filtering): additionally, for every label
//!   `l`, `v` must have at least as many label-`l` neighbors as `u` does. The paper's
//!   running example removes `v13` from `C(u0)` this way (§2.1).

use gup_graph::{Graph, VertexId};

/// Computes the LDF candidate set of query vertex `u` (sorted by data-vertex id).
pub fn ldf_candidates(query: &Graph, data: &Graph, u: VertexId) -> Vec<VertexId> {
    let label = query.label(u);
    let min_degree = query.degree(u);
    data.vertices_with_label(label)
        .iter()
        .copied()
        .filter(|&v| data.degree(v) >= min_degree)
        .collect()
}

/// Returns `true` if data vertex `v` passes the NLF test against query vertex `u`:
/// for every label, `v` has at least as many neighbors with that label as `u`.
pub fn nlf_filter(query: &Graph, data: &Graph, u: VertexId, v: VertexId) -> bool {
    // Query graphs are tiny, so recomputing the query profile per call would be cheap,
    // but callers that filter many data vertices should use `nlf_candidates`.
    let q_profile = query.neighborhood_label_frequency(u);
    nlf_filter_with_profile(&q_profile, data, v)
}

fn nlf_filter_with_profile(q_profile: &[u32], data: &Graph, v: VertexId) -> bool {
    // Count data-side neighbor labels lazily, bailing out as soon as a deficit is
    // certain. For correctness we count fully then compare (labels are dense).
    let mut remaining: Vec<u32> = q_profile.to_vec();
    let mut deficit: usize = remaining.iter().map(|&c| c as usize).sum();
    if deficit == 0 {
        return true;
    }
    for &w in data.neighbors(v) {
        let l = data.label(w) as usize;
        if l < remaining.len() && remaining[l] > 0 {
            remaining[l] -= 1;
            deficit -= 1;
            if deficit == 0 {
                return true;
            }
        }
    }
    false
}

/// Computes the LDF+NLF candidate set of query vertex `u` (sorted by data-vertex id).
pub fn nlf_candidates(query: &Graph, data: &Graph, u: VertexId) -> Vec<VertexId> {
    let q_profile = query.neighborhood_label_frequency(u);
    ldf_candidates(query, data, u)
        .into_iter()
        .filter(|&v| nlf_filter_with_profile(&q_profile, data, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;

    /// The paper's Fig. 1 example (labels A=0, B=1, C=2, D=3), shared across the
    /// workspace via `gup_graph::fixtures`.
    fn figure1() -> (Graph, Graph) {
        gup_graph::fixtures::paper_example()
    }

    #[test]
    fn ldf_matches_labels_and_degree() {
        let (query, data) = figure1();
        // u0 has label A and degree 2; A-labeled data vertices are v0, v1, v13.
        let c = ldf_candidates(&query, &data, 0);
        assert!(c.contains(&0));
        assert!(c.contains(&1));
        // v13 has label A and degree 2, so LDF alone keeps it; only NLF removes it.
        assert!(c.contains(&13));
    }

    #[test]
    fn ldf_degree_requirement() {
        let query = graph_from_edges(&[0, 0, 0], &[(0, 1), (0, 2)]); // deg(u0) = 2
        let data = graph_from_edges(&[0, 0, 0], &[(0, 1)]); // all degrees ≤ 1
        assert!(ldf_candidates(&query, &data, 0).is_empty());
        assert_eq!(ldf_candidates(&query, &data, 1), vec![0, 1]);
    }

    #[test]
    fn nlf_removes_vertices_missing_neighbor_labels() {
        let (query, data) = figure1();
        // Paper §2.1: v13 is removed from C(u0) because it has no label-B neighbor.
        let with_nlf = nlf_candidates(&query, &data, 0);
        assert!(!with_nlf.contains(&13));
        assert!(with_nlf.contains(&0));
        assert!(with_nlf.contains(&1));
    }

    #[test]
    fn nlf_filter_individual() {
        let (query, data) = figure1();
        assert!(nlf_filter(&query, &data, 0, 0));
        assert!(!nlf_filter(&query, &data, 0, 13));
    }

    #[test]
    fn nlf_handles_isolated_query_vertex() {
        let query = graph_from_edges(&[4], &[]);
        let data = graph_from_edges(&[4, 4], &[(0, 1)]);
        // No neighbor requirements at all.
        assert_eq!(nlf_candidates(&query, &data, 0), vec![0, 1]);
    }

    #[test]
    fn nlf_requires_multiplicity() {
        // u0 needs two label-1 neighbors.
        let query = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
        // v0 has two label-1 neighbors, v3 has only one (v4).
        let data = graph_from_edges(&[0, 1, 1, 0, 1], &[(0, 1), (0, 2), (3, 4), (3, 1)]);
        let c = nlf_candidates(&query, &data, 0);
        assert_eq!(c, vec![0, 3]); // v3 has neighbors v4(label1) and v1(label1): passes

        // Remove one of v3's label-1 neighbors and it must fail.
        let data2 = graph_from_edges(&[0, 1, 1, 0, 1], &[(0, 1), (0, 2), (3, 4)]);
        let c2 = nlf_candidates(&query, &data2, 0);
        assert_eq!(c2, vec![0]);
    }

    #[test]
    fn candidates_are_sorted() {
        let (query, data) = figure1();
        for u in query.vertices() {
            let c = nlf_candidates(&query, &data, u);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(c, sorted);
        }
    }

    #[test]
    fn unknown_label_yields_empty_candidates() {
        let query = graph_from_edges(&[9], &[]);
        let data = graph_from_edges(&[0, 1], &[(0, 1)]);
        assert!(ldf_candidates(&query, &data, 0).is_empty());
        assert!(nlf_candidates(&query, &data, 0).is_empty());
    }
}
