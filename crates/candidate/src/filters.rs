//! Per-vertex candidate filters: LDF and NLF.
//!
//! * **LDF** (label-and-degree filtering, Ullmann 1976): data vertex `v` is a candidate
//!   of query vertex `u` if `ℓ(v) = ℓ(u)` and `deg(v) ≥ deg(u)`.
//! * **NLF** (neighborhood label frequency filtering): additionally, for every label
//!   `l`, `v` must have at least as many label-`l` neighbors as `u` does. The paper's
//!   running example removes `v13` from `C(u0)` this way (§2.1).
//!
//! The NLF test comes in two flavors:
//!
//! * the **prepared** path ([`nlf_candidates_prepared`]) compares the query vertex's
//!   sparse [`NlfProfile`] against the signature arena a [`PreparedData`] built once
//!   for the data graph — no neighbor rescans, no per-candidate allocation, and a
//!   per-label max-NLF bound that rejects unsatisfiable query vertices before any
//!   candidate is scanned;
//! * the **legacy** path ([`nlf_candidates`]) rescans data-side neighbor lists but
//!   reuses one scratch buffer across all candidates of a query vertex (it used to
//!   allocate a fresh `Vec` per candidate).

use gup_graph::deadline::{DeadlineExceeded, DeadlineSampler};
use gup_graph::{Graph, Label, PreparedData, VertexId};

/// Computes the LDF candidate set of query vertex `u` (sorted by data-vertex id).
pub fn ldf_candidates(query: &Graph, data: &Graph, u: VertexId) -> Vec<VertexId> {
    ldf_candidates_sampled(query, data, u, &mut DeadlineSampler::new(None))
        .expect("a sampler without a deadline never expires")
}

/// Deadline-aware [`ldf_candidates`]: `sampler` ticks once per label-bucket vertex
/// examined, so a tight time budget is observed even when the bucket spans most of
/// the data graph.
pub fn ldf_candidates_sampled(
    query: &Graph,
    data: &Graph,
    u: VertexId,
    sampler: &mut DeadlineSampler,
) -> Result<Vec<VertexId>, DeadlineExceeded> {
    let label = query.label(u);
    let min_degree = query.degree(u);
    let bucket = data.vertices_with_label(label);
    let mut out = Vec::new();
    for &v in bucket {
        sampler.tick()?;
        if data.degree(v) >= min_degree {
            out.push(v);
        }
    }
    Ok(out)
}

/// Returns `true` if data vertex `v` passes the NLF test against query vertex `u`:
/// for every label, `v` has at least as many neighbors with that label as `u`.
pub fn nlf_filter(query: &Graph, data: &Graph, u: VertexId, v: VertexId) -> bool {
    // Query graphs are tiny, so recomputing the query profile per call would be cheap,
    // but callers that filter many data vertices should use `nlf_candidates` (or the
    // prepared-path equivalents, which never rescan neighbors at all).
    let q_profile = query.neighborhood_label_frequency(u);
    let mut scratch = Vec::with_capacity(q_profile.len());
    nlf_filter_with_scratch(&q_profile, data, v, &mut scratch)
}

/// The legacy NLF test against a dense query profile. `scratch` is a caller-owned
/// buffer reused across candidates: after its first use it never reallocates, so
/// filtering `n` candidates performs zero per-candidate heap allocation.
fn nlf_filter_with_scratch(
    q_profile: &[u32],
    data: &Graph,
    v: VertexId,
    scratch: &mut Vec<u32>,
) -> bool {
    // Count data-side neighbor labels lazily, bailing out as soon as the query's
    // requirements are all met (labels are dense).
    let mut deficit: usize = q_profile.iter().map(|&c| c as usize).sum();
    if deficit == 0 {
        return true;
    }
    scratch.clear();
    scratch.extend_from_slice(q_profile);
    for &w in data.neighbors(v) {
        let l = data.label(w) as usize;
        if l < scratch.len() && scratch[l] > 0 {
            scratch[l] -= 1;
            deficit -= 1;
            if deficit == 0 {
                return true;
            }
        }
    }
    false
}

/// Computes the LDF+NLF candidate set of query vertex `u` (sorted by data-vertex id).
pub fn nlf_candidates(query: &Graph, data: &Graph, u: VertexId) -> Vec<VertexId> {
    nlf_candidates_sampled(query, data, u, &mut DeadlineSampler::new(None))
        .expect("a sampler without a deadline never expires")
}

/// Deadline-aware [`nlf_candidates`]: `sampler` ticks once per candidate examined
/// (each examination scans one neighbor list), keeping the overshoot past a tight
/// budget bounded by a constant amount of work.
pub fn nlf_candidates_sampled(
    query: &Graph,
    data: &Graph,
    u: VertexId,
    sampler: &mut DeadlineSampler,
) -> Result<Vec<VertexId>, DeadlineExceeded> {
    let q_profile = query.neighborhood_label_frequency(u);
    let mut scratch = Vec::with_capacity(q_profile.len());
    let mut out = Vec::new();
    for v in ldf_candidates_sampled(query, data, u, sampler)? {
        sampler.tick()?;
        if nlf_filter_with_scratch(&q_profile, data, v, &mut scratch) {
            out.push(v);
        }
    }
    Ok(out)
}

/// A query vertex's NLF requirements in sparse form: parallel label/count slices,
/// labels sorted ascending and distinct. Built once per query vertex and compared
/// against the data graph's precomputed signature arena — the prepared-path
/// counterpart of the dense profile the legacy filter rescans neighbors for.
#[derive(Clone, Debug, Default)]
pub struct NlfProfile {
    labels: Vec<Label>,
    counts: Vec<u32>,
}

impl NlfProfile {
    /// The sparse neighborhood-label-frequency profile of query vertex `u`.
    pub fn of(query: &Graph, u: VertexId) -> Self {
        let dense = query.neighborhood_label_frequency(u);
        let mut labels = Vec::new();
        let mut counts = Vec::new();
        for (l, &c) in dense.iter().enumerate() {
            if c > 0 {
                labels.push(l as Label);
                counts.push(c);
            }
        }
        NlfProfile { labels, counts }
    }

    /// The required labels (sorted ascending, distinct).
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The required per-label neighbor counts, parallel to [`NlfProfile::labels`].
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// `true` when the query vertex has no neighbors, i.e. no NLF requirement.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// `true` when some requirement exceeds what *any* data vertex offers
    /// (`PreparedData`'s per-label max-NLF bound): the candidate set is empty and no
    /// per-candidate work is needed at all.
    pub fn unsatisfiable_in(&self, prepared: &PreparedData) -> bool {
        self.labels
            .iter()
            .zip(&self.counts)
            .any(|(&l, &c)| c > prepared.max_nlf(l))
    }
}

/// The NLF test on the prepared path: an allocation-free signature comparison
/// between the query vertex's sparse profile and data vertex `v`'s precomputed
/// signature.
#[inline]
pub fn nlf_filter_prepared(profile: &NlfProfile, prepared: &PreparedData, v: VertexId) -> bool {
    prepared.signature_covers(v, &profile.labels, &profile.counts)
}

/// Computes the LDF+NLF candidate set of query vertex `u` against a prepared data
/// graph (sorted by data-vertex id). Produces exactly the same set as
/// [`nlf_candidates`] on the underlying graph, but compares precomputed signatures
/// instead of rescanning neighbor lists, and short-circuits to empty when the
/// max-NLF bound proves no candidate can exist.
pub fn nlf_candidates_prepared(
    query: &Graph,
    prepared: &PreparedData,
    u: VertexId,
) -> Vec<VertexId> {
    nlf_candidates_prepared_sampled(query, prepared, u, &mut DeadlineSampler::new(None))
        .expect("a sampler without a deadline never expires")
}

/// Deadline-aware [`nlf_candidates_prepared`]: `sampler` ticks once per candidate
/// examined (each examination is one signature comparison).
pub fn nlf_candidates_prepared_sampled(
    query: &Graph,
    prepared: &PreparedData,
    u: VertexId,
    sampler: &mut DeadlineSampler,
) -> Result<Vec<VertexId>, DeadlineExceeded> {
    let profile = NlfProfile::of(query, u);
    if profile.unsatisfiable_in(prepared) {
        return Ok(Vec::new());
    }
    let data = prepared.graph();
    if profile.is_empty() {
        return ldf_candidates_sampled(query, data, u, sampler);
    }
    let mut out = Vec::new();
    for v in ldf_candidates_sampled(query, data, u, sampler)? {
        sampler.tick()?;
        if nlf_filter_prepared(&profile, prepared, v) {
            out.push(v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;

    /// The paper's Fig. 1 example (labels A=0, B=1, C=2, D=3), shared across the
    /// workspace via `gup_graph::fixtures`.
    fn figure1() -> (Graph, Graph) {
        gup_graph::fixtures::paper_example()
    }

    #[test]
    fn ldf_matches_labels_and_degree() {
        let (query, data) = figure1();
        // u0 has label A and degree 2; A-labeled data vertices are v0, v1, v13.
        let c = ldf_candidates(&query, &data, 0);
        assert!(c.contains(&0));
        assert!(c.contains(&1));
        // v13 has label A and degree 2, so LDF alone keeps it; only NLF removes it.
        assert!(c.contains(&13));
    }

    #[test]
    fn ldf_degree_requirement() {
        let query = graph_from_edges(&[0, 0, 0], &[(0, 1), (0, 2)]); // deg(u0) = 2
        let data = graph_from_edges(&[0, 0, 0], &[(0, 1)]); // all degrees ≤ 1
        assert!(ldf_candidates(&query, &data, 0).is_empty());
        assert_eq!(ldf_candidates(&query, &data, 1), vec![0, 1]);
    }

    #[test]
    fn nlf_removes_vertices_missing_neighbor_labels() {
        let (query, data) = figure1();
        // Paper §2.1: v13 is removed from C(u0) because it has no label-B neighbor.
        let with_nlf = nlf_candidates(&query, &data, 0);
        assert!(!with_nlf.contains(&13));
        assert!(with_nlf.contains(&0));
        assert!(with_nlf.contains(&1));
    }

    #[test]
    fn nlf_filter_individual() {
        let (query, data) = figure1();
        assert!(nlf_filter(&query, &data, 0, 0));
        assert!(!nlf_filter(&query, &data, 0, 13));
    }

    #[test]
    fn nlf_handles_isolated_query_vertex() {
        let query = graph_from_edges(&[4], &[]);
        let data = graph_from_edges(&[4, 4], &[(0, 1)]);
        // No neighbor requirements at all.
        assert_eq!(nlf_candidates(&query, &data, 0), vec![0, 1]);
    }

    #[test]
    fn nlf_requires_multiplicity() {
        // u0 needs two label-1 neighbors.
        let query = graph_from_edges(&[0, 1, 1], &[(0, 1), (0, 2)]);
        // v0 has two label-1 neighbors, v3 has only one (v4).
        let data = graph_from_edges(&[0, 1, 1, 0, 1], &[(0, 1), (0, 2), (3, 4), (3, 1)]);
        let c = nlf_candidates(&query, &data, 0);
        assert_eq!(c, vec![0, 3]); // v3 has neighbors v4(label1) and v1(label1): passes

        // Remove one of v3's label-1 neighbors and it must fail.
        let data2 = graph_from_edges(&[0, 1, 1, 0, 1], &[(0, 1), (0, 2), (3, 4)]);
        let c2 = nlf_candidates(&query, &data2, 0);
        assert_eq!(c2, vec![0]);
    }

    #[test]
    fn candidates_are_sorted() {
        let (query, data) = figure1();
        for u in query.vertices() {
            let c = nlf_candidates(&query, &data, u);
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(c, sorted);
        }
    }

    #[test]
    fn unknown_label_yields_empty_candidates() {
        let query = graph_from_edges(&[9], &[]);
        let data = graph_from_edges(&[0, 1], &[(0, 1)]);
        assert!(ldf_candidates(&query, &data, 0).is_empty());
        assert!(nlf_candidates(&query, &data, 0).is_empty());
    }

    #[test]
    fn prepared_path_agrees_with_legacy_on_every_query_vertex() {
        let (query, data) = figure1();
        let prepared = gup_graph::PreparedData::from_graph(&data);
        for u in query.vertices() {
            assert_eq!(
                nlf_candidates(&query, &data, u),
                nlf_candidates_prepared(&query, &prepared, u),
                "query vertex {u}"
            );
        }
        // Individual filter agreement too.
        for u in query.vertices() {
            let profile = NlfProfile::of(&query, u);
            for v in data.vertices() {
                assert_eq!(
                    nlf_filter(&query, &data, u, v),
                    nlf_filter_prepared(&profile, &prepared, v),
                    "u={u} v={v}"
                );
            }
        }
    }

    #[test]
    fn prepared_max_nlf_bound_short_circuits() {
        // u0 requires three label-1 neighbors, but no data vertex has more than two:
        // the bound proves emptiness without scanning any candidate.
        let query = graph_from_edges(&[0, 1, 1, 1], &[(0, 1), (0, 2), (0, 3)]);
        let data = graph_from_edges(&[0, 1, 1, 0, 1], &[(0, 1), (0, 2), (3, 4)]);
        let prepared = gup_graph::PreparedData::from_graph(&data);
        let profile = NlfProfile::of(&query, 0);
        assert!(profile.unsatisfiable_in(&prepared));
        assert!(nlf_candidates_prepared(&query, &prepared, 0).is_empty());
        assert_eq!(
            nlf_candidates(&query, &data, 0),
            nlf_candidates_prepared(&query, &prepared, 0)
        );
    }

    #[test]
    fn nlf_profile_shape() {
        let query = graph_from_edges(&[0, 1, 1, 2], &[(0, 1), (0, 2), (0, 3)]);
        let p = NlfProfile::of(&query, 0);
        assert_eq!(p.labels(), &[1, 2]);
        assert_eq!(p.counts(), &[2, 1]);
        assert!(!p.is_empty());
        let isolated = graph_from_edges(&[4], &[]);
        assert!(NlfProfile::of(&isolated, 0).is_empty());
    }
}
