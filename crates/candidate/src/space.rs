//! The candidate space: candidate-vertex sets plus candidate edges.
//!
//! This is the auxiliary structure (a *CS* in DAF's terminology, §2.1/§3.1 of the GuP
//! paper) that backtracking runs over. Construction:
//!
//! 1. initial candidates via LDF + NLF,
//! 2. DAG-graph-DP-style refinement: alternating bottom-up / top-down passes over a
//!    query DAG remove candidates that cannot be extended towards every DAG child
//!    (resp. parent),
//! 3. materialization of candidate edges: for every query edge `(a, b)` and candidate
//!    `v ∈ C(a)`, the list of candidates of `b` adjacent to `v` in the data graph,
//!    stored as indices into `C(b)` so the matcher never touches a hash table in its
//!    hot loop.

use crate::dag::QueryDag;
use crate::filters::{
    ldf_candidates_sampled, nlf_candidates_prepared_sampled, nlf_candidates_sampled,
};
use gup_graph::deadline::{DeadlineExceeded, DeadlineSampler};
use gup_graph::{Graph, PreparedData, VertexId};
use std::time::Instant;

/// Configuration of the candidate-space construction.
#[derive(Clone, Debug)]
pub struct FilterConfig {
    /// Apply the NLF filter on top of LDF for the initial candidate sets.
    pub use_nlf: bool,
    /// Number of refinement passes over the query DAG (each pass = one bottom-up and
    /// one top-down sweep). DAF/VEQ use a small constant; 3 is the common default.
    pub refinement_passes: usize,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            use_nlf: true,
            refinement_passes: 3,
        }
    }
}

/// Per-query-edge candidate adjacency: forward lists (indices into the candidates
/// of the edge's higher endpoint, per candidate of the lower one) and the reverse.
type EdgeAdjacency = (Vec<Vec<u32>>, Vec<Vec<u32>>);

/// Candidate-vertex sets and candidate edges for a (query, data) pair.
///
/// Query vertices are indexed by their id in the query graph passed to
/// [`CandidateSpace::build`]; use [`CandidateSpace::permuted`] to re-index the space
/// into a matching order.
#[derive(Clone, Debug)]
pub struct CandidateSpace {
    query_vertex_count: usize,
    /// `candidates[u]` = sorted data-vertex ids that are candidates of query vertex `u`.
    candidates: Vec<Vec<VertexId>>,
    /// Query edges `(a, b)` with `a < b`, in a fixed order; `edge_id[(a, b)]` is the
    /// index into `adjacency`.
    edges: Vec<(usize, usize)>,
    /// `adjacency[e].0[ia]` = indices (into `candidates[b]`) of candidates of `b`
    /// adjacent to `candidates[a][ia]`; `adjacency[e].1` is the reverse direction.
    adjacency: Vec<EdgeAdjacency>,
    /// Dense lookup: `edge_lookup[a * n + b]` = edge id + 1, or 0 if `(a, b)` is not a
    /// query edge.
    edge_lookup: Vec<u32>,
}

impl CandidateSpace {
    /// Builds the candidate space for `query` against `data`.
    ///
    /// The per-vertex filters rescan data-side neighbor lists (with one reused
    /// scratch buffer); batched workloads should prepare the data graph once and use
    /// [`CandidateSpace::build_prepared`], whose NLF pass is a signature comparison
    /// against the precomputed arena. Both constructors produce identical spaces.
    pub fn build(query: &Graph, data: &Graph, config: &FilterConfig) -> Self {
        Self::build_deadline(query, data, config, None)
            .expect("construction without a deadline cannot time out")
    }

    /// Deadline-aware [`CandidateSpace::build`]: the whole construction — initial
    /// per-vertex filters, DAG-DP refinement, and candidate-edge materialization —
    /// samples `deadline` at a work-bounded cadence
    /// ([`gup_graph::deadline::DEADLINE_CHECK_INTERVAL`] small work units per clock
    /// read) and returns the typed [`DeadlineExceeded`] instead of overrunning a
    /// tight budget before the search even starts.
    pub fn build_deadline(
        query: &Graph,
        data: &Graph,
        config: &FilterConfig,
        deadline: Option<Instant>,
    ) -> Result<Self, DeadlineExceeded> {
        let n = query.vertex_count();
        let mut sampler = DeadlineSampler::new(deadline);
        sampler.check()?;
        // Step 1: per-vertex filters (legacy neighbor-rescan path).
        let mut candidates: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        for u in 0..n as VertexId {
            candidates.push(if config.use_nlf {
                nlf_candidates_sampled(query, data, u, &mut sampler)?
            } else {
                ldf_candidates_sampled(query, data, u, &mut sampler)?
            });
        }
        Self::finish(query, data, config, candidates, sampler)
    }

    /// Builds the candidate space for `query` against a prepared data graph: the
    /// initial NLF pass compares precomputed signatures instead of rescanning
    /// neighbor lists (and rejects unsatisfiable query vertices via the max-NLF
    /// bound); refinement and candidate-edge materialization are shared with
    /// [`CandidateSpace::build`].
    pub fn build_prepared(query: &Graph, prepared: &PreparedData, config: &FilterConfig) -> Self {
        Self::build_prepared_deadline(query, prepared, config, None)
            .expect("construction without a deadline cannot time out")
    }

    /// Deadline-aware [`CandidateSpace::build_prepared`]; see
    /// [`CandidateSpace::build_deadline`] for the sampling contract.
    pub fn build_prepared_deadline(
        query: &Graph,
        prepared: &PreparedData,
        config: &FilterConfig,
        deadline: Option<Instant>,
    ) -> Result<Self, DeadlineExceeded> {
        let n = query.vertex_count();
        let data = prepared.graph();
        let mut sampler = DeadlineSampler::new(deadline);
        sampler.check()?;
        let mut candidates: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        for u in 0..n as VertexId {
            candidates.push(if config.use_nlf {
                nlf_candidates_prepared_sampled(query, prepared, u, &mut sampler)?
            } else {
                ldf_candidates_sampled(query, data, u, &mut sampler)?
            });
        }
        Self::finish(query, data, config, candidates, sampler)
    }

    /// Steps 2 and 3, shared by both constructors: DAG-graph-DP refinement of the
    /// initial candidate sets, then candidate-edge materialization. Continues the
    /// constructor's deadline sampling through both phases.
    fn finish(
        query: &Graph,
        data: &Graph,
        config: &FilterConfig,
        mut candidates: Vec<Vec<VertexId>>,
        mut sampler: DeadlineSampler,
    ) -> Result<Self, DeadlineExceeded> {
        let n = query.vertex_count();
        // Step 2: DAG-graph-DP refinement.
        if n > 1 && config.refinement_passes > 0 {
            let sizes: Vec<usize> = candidates.iter().map(Vec::len).collect();
            let dag = QueryDag::with_selective_root(query, &sizes);
            let mut membership = Membership::new(data.vertex_count(), &candidates);
            for _ in 0..config.refinement_passes {
                let changed_up = refine_pass(
                    query,
                    data,
                    &dag,
                    &mut candidates,
                    &mut membership,
                    Direction::BottomUp,
                    &mut sampler,
                )?;
                let changed_down = refine_pass(
                    query,
                    data,
                    &dag,
                    &mut candidates,
                    &mut membership,
                    Direction::TopDown,
                    &mut sampler,
                )?;
                if !changed_up && !changed_down {
                    break;
                }
            }
        }

        // Step 3: candidate edges.
        sampler.check()?;
        let edges: Vec<(usize, usize)> = query
            .edges()
            .map(|(a, b)| (a as usize, b as usize))
            .collect();
        let mut edge_lookup = vec![0u32; n * n];
        let mut adjacency = Vec::with_capacity(edges.len());
        for (eid, &(a, b)) in edges.iter().enumerate() {
            edge_lookup[a * n + b] = eid as u32 + 1;
            edge_lookup[b * n + a] = eid as u32 + 1;
            // Index of each data vertex within candidates[b] / candidates[a].
            let index_b = index_map(data.vertex_count(), &candidates[b]);
            let index_a = index_map(data.vertex_count(), &candidates[a]);
            let mut forward: Vec<Vec<u32>> = vec![Vec::new(); candidates[a].len()];
            let mut backward: Vec<Vec<u32>> = vec![Vec::new(); candidates[b].len()];
            for (ia, &va) in candidates[a].iter().enumerate() {
                sampler.tick()?;
                for &w in data.neighbors(va) {
                    if let Some(ib) = index_b[w as usize] {
                        forward[ia].push(ib);
                        backward[ib as usize].push(ia as u32);
                    }
                }
            }
            let _ = index_a;
            for list in backward.iter_mut() {
                list.sort_unstable();
            }
            adjacency.push((forward, backward));
        }
        Ok(CandidateSpace {
            query_vertex_count: n,
            candidates,
            edges,
            adjacency,
            edge_lookup,
        })
    }

    /// Number of query vertices this space was built for.
    #[inline]
    pub fn query_vertex_count(&self) -> usize {
        self.query_vertex_count
    }

    /// Candidate data vertices of query vertex `u` (sorted by data-vertex id).
    #[inline]
    pub fn candidates(&self, u: usize) -> &[VertexId] {
        &self.candidates[u]
    }

    /// Sizes of all candidate sets.
    pub fn candidate_sizes(&self) -> Vec<usize> {
        self.candidates.iter().map(Vec::len).collect()
    }

    /// `true` if some query vertex has no candidates (no embedding can exist).
    pub fn any_empty(&self) -> bool {
        self.candidates.iter().any(Vec::is_empty)
    }

    /// Total number of candidate vertices.
    pub fn total_candidates(&self) -> usize {
        self.candidates.iter().map(Vec::len).sum()
    }

    /// Total number of candidate edges (each counted once).
    pub fn total_candidate_edges(&self) -> usize {
        self.adjacency
            .iter()
            .map(|(fwd, _)| fwd.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Returns the candidate indices of query vertex `b` adjacent (in the data graph)
    /// to candidate `index_in_a` of query vertex `a`. `a` and `b` must be adjacent in
    /// the query graph; panics otherwise.
    #[inline]
    pub fn adjacent_candidates(&self, a: usize, index_in_a: usize, b: usize) -> &[u32] {
        let eid = self.edge_lookup[a * self.query_vertex_count + b];
        assert!(eid != 0, "query vertices {a} and {b} are not adjacent");
        let eid = (eid - 1) as usize;
        let (qa, _qb) = self.edges[eid];
        if qa == a {
            &self.adjacency[eid].0[index_in_a]
        } else {
            &self.adjacency[eid].1[index_in_a]
        }
    }

    /// Looks up the index of data vertex `v` within `candidates(u)`, if present.
    pub fn candidate_index(&self, u: usize, v: VertexId) -> Option<u32> {
        self.candidates[u].binary_search(&v).ok().map(|i| i as u32)
    }

    /// The query edges `(a, b)` (with `a < b`) in candidate-edge-id order.
    #[inline]
    pub fn edge_list(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Candidate-edge id of the query edge between `a` and `b`, if they are adjacent.
    #[inline]
    pub fn edge_id(&self, a: usize, b: usize) -> Option<usize> {
        let e = self.edge_lookup[a * self.query_vertex_count + b];
        if e == 0 {
            None
        } else {
            Some((e - 1) as usize)
        }
    }

    /// For candidate edge `eid` between query vertices `(a, b)` with `a < b`: the
    /// candidate indices of `b` adjacent to candidate `index_in_a` of `a`, in the same
    /// order as [`CandidateSpace::adjacent_candidates`] returns them. Guard structures
    /// that parallel the adjacency lists are sized/indexed with this accessor.
    #[inline]
    pub fn forward_adjacency(&self, eid: usize, index_in_a: usize) -> &[u32] {
        &self.adjacency[eid].0[index_in_a]
    }

    /// Approximate heap footprint of the candidate space in bytes.
    pub fn heap_bytes(&self) -> usize {
        let cand: usize = self
            .candidates
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let adj: usize = self
            .adjacency
            .iter()
            .map(|(f, b)| {
                f.iter().map(|l| l.capacity() * 4).sum::<usize>()
                    + b.iter().map(|l| l.capacity() * 4).sum::<usize>()
                    + (f.capacity() + b.capacity()) * std::mem::size_of::<Vec<u32>>()
            })
            .sum();
        cand + adj + self.edge_lookup.capacity() * 4
    }

    /// Re-indexes the candidate space so that query vertex `order[i]` becomes vertex
    /// `i`. Candidate contents are unchanged; only the query-vertex indexing moves.
    /// `order` must be a permutation of `0..query_vertex_count`.
    pub fn permuted(&self, order: &[VertexId]) -> CandidateSpace {
        let n = self.query_vertex_count;
        assert_eq!(order.len(), n, "order must be a permutation");
        let mut new_of_old = vec![usize::MAX; n];
        for (new_id, &old) in order.iter().enumerate() {
            new_of_old[old as usize] = new_id;
        }
        assert!(
            new_of_old.iter().all(|&x| x != usize::MAX),
            "order must be a permutation"
        );
        let candidates: Vec<Vec<VertexId>> = order
            .iter()
            .map(|&old| self.candidates[old as usize].clone())
            .collect();
        let mut edges = Vec::with_capacity(self.edges.len());
        let mut adjacency = Vec::with_capacity(self.edges.len());
        let mut edge_lookup = vec![0u32; n * n];
        for (eid, &(old_a, old_b)) in self.edges.iter().enumerate() {
            let na = new_of_old[old_a];
            let nb = new_of_old[old_b];
            let (fwd, bwd) = &self.adjacency[eid];
            let (a, b, f, w) = if na < nb {
                (na, nb, fwd.clone(), bwd.clone())
            } else {
                (nb, na, bwd.clone(), fwd.clone())
            };
            let new_eid = edges.len();
            edges.push((a, b));
            edge_lookup[a * n + b] = new_eid as u32 + 1;
            edge_lookup[b * n + a] = new_eid as u32 + 1;
            adjacency.push((f, w));
        }
        CandidateSpace {
            query_vertex_count: n,
            candidates,
            edges,
            adjacency,
            edge_lookup,
        }
    }
}

/// Dense index from data-vertex id to position in a sorted candidate list.
fn index_map(data_vertices: usize, candidates: &[VertexId]) -> Vec<Option<u32>> {
    let mut map = vec![None; data_vertices];
    for (i, &v) in candidates.iter().enumerate() {
        map[v as usize] = Some(i as u32);
    }
    map
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    BottomUp,
    TopDown,
}

/// Per-query-vertex membership bitmap over data vertices, kept in sync with the
/// candidate lists during refinement.
struct Membership {
    bits: Vec<Vec<bool>>,
}

impl Membership {
    fn new(data_vertices: usize, candidates: &[Vec<VertexId>]) -> Self {
        let bits = candidates
            .iter()
            .map(|c| {
                let mut b = vec![false; data_vertices];
                for &v in c {
                    b[v as usize] = true;
                }
                b
            })
            .collect();
        Membership { bits }
    }

    #[inline]
    fn contains(&self, u: usize, v: VertexId) -> bool {
        self.bits[u][v as usize]
    }

    #[inline]
    fn remove(&mut self, u: usize, v: VertexId) {
        self.bits[u][v as usize] = false;
    }
}

/// One refinement sweep. In a bottom-up sweep, vertices are processed in reverse
/// topological order and each candidate must have a neighbor among the candidates of
/// every DAG *child*; a top-down sweep is symmetric with parents. Returns whether any
/// candidate was removed. `sampler` ticks once per (candidate, constraint) pair —
/// each pair scans one neighbor list — so a refinement pass over a large candidate
/// set observes a tight deadline mid-sweep.
fn refine_pass(
    _query: &Graph,
    data: &Graph,
    dag: &QueryDag,
    candidates: &mut [Vec<VertexId>],
    membership: &mut Membership,
    direction: Direction,
    sampler: &mut DeadlineSampler,
) -> Result<bool, DeadlineExceeded> {
    let mut changed = false;
    let order: Vec<VertexId> = match direction {
        Direction::BottomUp => dag.topological_order().iter().rev().copied().collect(),
        Direction::TopDown => dag.topological_order().to_vec(),
    };
    for &u in &order {
        let constraining: &[VertexId] = match direction {
            Direction::BottomUp => dag.children(u),
            Direction::TopDown => dag.parents(u),
        };
        if constraining.is_empty() {
            continue;
        }
        let u = u as usize;
        let before = candidates[u].len();
        let mut kept = Vec::with_capacity(before);
        'cand: for &v in &candidates[u] {
            for &c in constraining {
                sampler.tick()?;
                let c = c as usize;
                let ok = data.neighbors(v).iter().any(|&w| membership.contains(c, w));
                if !ok {
                    membership.remove(u, v);
                    changed = true;
                    continue 'cand;
                }
            }
            kept.push(v);
        }
        if kept.len() != before {
            candidates[u] = kept;
        }
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gup_graph::builder::graph_from_edges;

    fn triangle_query() -> Graph {
        graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2), (2, 0)])
    }

    /// Data graph: a labeled square 0-1-2-3 with diagonal 0-2, plus an isolated
    /// label-1 vertex 4 that must be filtered away by refinement.
    fn square_data() -> Graph {
        graph_from_edges(&[0, 1, 0, 1, 1], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn build_produces_expected_candidates() {
        let cs = CandidateSpace::build(&triangle_query(), &square_data(), &FilterConfig::default());
        assert_eq!(cs.query_vertex_count(), 3);
        assert_eq!(cs.candidates(0), &[0, 2]);
        assert_eq!(cs.candidates(2), &[0, 2]);
        // The per-edge filters cannot see that only v1 closes a triangle, so both
        // label-1 square corners survive; the isolated label-1 vertex does not.
        assert_eq!(cs.candidates(1), &[1, 3]);
        assert!(!cs.any_empty());
        assert_eq!(cs.total_candidates(), 6);
    }

    #[test]
    fn without_refinement_more_candidates_survive() {
        let cfg = FilterConfig {
            use_nlf: false,
            refinement_passes: 0,
        };
        let cs = CandidateSpace::build(&triangle_query(), &square_data(), &cfg);
        // LDF alone keeps v1 and v3 for query vertex 1 (both label 1, degree 2).
        assert_eq!(cs.candidates(1), &[1, 3]);
    }

    #[test]
    fn nlf_tightens_initial_candidates() {
        let no_nlf = FilterConfig {
            use_nlf: false,
            refinement_passes: 0,
        };
        let with_nlf = FilterConfig {
            use_nlf: true,
            refinement_passes: 0,
        };
        let q = triangle_query();
        let d = square_data();
        let a = CandidateSpace::build(&q, &d, &no_nlf);
        let b = CandidateSpace::build(&q, &d, &with_nlf);
        assert!(b.total_candidates() <= a.total_candidates());
    }

    #[test]
    fn adjacency_lists_are_consistent_with_data_edges() {
        let q = triangle_query();
        let d = square_data();
        let cs = CandidateSpace::build(&q, &d, &FilterConfig::default());
        for (a, b) in q.edges() {
            let (a, b) = (a as usize, b as usize);
            for (ia, &va) in cs.candidates(a).iter().enumerate() {
                for &ib in cs.adjacent_candidates(a, ia, b) {
                    let vb = cs.candidates(b)[ib as usize];
                    assert!(d.has_edge(va, vb), "candidate edge must be a data edge");
                }
            }
            // Reverse direction must agree.
            for (ib, &vb) in cs.candidates(b).iter().enumerate() {
                for &ia in cs.adjacent_candidates(b, ib, a) {
                    let va = cs.candidates(a)[ia as usize];
                    assert!(d.has_edge(va, vb));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn adjacent_candidates_requires_query_edge() {
        // Path query 0-1-2: vertices 0 and 2 are not adjacent.
        let q = graph_from_edges(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let d = square_data();
        let cs = CandidateSpace::build(&q, &d, &FilterConfig::default());
        let _ = cs.adjacent_candidates(0, 0, 2);
    }

    #[test]
    fn candidate_index_lookup() {
        let cs = CandidateSpace::build(&triangle_query(), &square_data(), &FilterConfig::default());
        assert_eq!(cs.candidate_index(0, 2), Some(1));
        assert_eq!(cs.candidate_index(0, 3), None);
    }

    #[test]
    fn empty_candidate_set_detected() {
        // Query label 9 does not exist in the data.
        let q = graph_from_edges(&[9, 1], &[(0, 1)]);
        let cs = CandidateSpace::build(&q, &square_data(), &FilterConfig::default());
        assert!(cs.any_empty());
        assert_eq!(cs.candidates(0), &[] as &[u32]);
    }

    #[test]
    fn refinement_prunes_unextendable_candidates() {
        // Query: path A-B-C. Data: one complete A-B-C chain (v0-v1-v2), plus an
        // A-B-A chain (v3-v4-v5) whose middle vertex has no C neighbor. LDF alone keeps
        // v4 as a candidate of the middle query vertex; DAG refinement removes it (and
        // then cascades to v3, v5).
        let q = graph_from_edges(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let d = graph_from_edges(&[0, 1, 2, 0, 1, 0], &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let unrefined = CandidateSpace::build(
            &q,
            &d,
            &FilterConfig {
                use_nlf: false,
                refinement_passes: 0,
            },
        );
        assert_eq!(unrefined.candidates(1), &[1, 4]);
        assert_eq!(unrefined.candidates(0), &[0, 3, 5]);
        let refined = CandidateSpace::build(
            &q,
            &d,
            &FilterConfig {
                use_nlf: false,
                refinement_passes: 3,
            },
        );
        assert_eq!(refined.candidates(1), &[1]);
        assert_eq!(refined.candidates(0), &[0]);
        assert_eq!(refined.candidates(2), &[2]);
    }

    #[test]
    fn permuted_space_reindexes_consistently() {
        let q = triangle_query();
        let d = square_data();
        let cs = CandidateSpace::build(&q, &d, &FilterConfig::default());
        let order = [2u32, 0, 1];
        let p = cs.permuted(&order);
        // New vertex 0 is old vertex 2.
        assert_eq!(p.candidates(0), cs.candidates(2));
        assert_eq!(p.candidates(1), cs.candidates(0));
        assert_eq!(p.candidates(2), cs.candidates(1));
        // Candidate-edge adjacency must be preserved under the renaming: old edge (0,1)
        // becomes new edge (1,2).
        for (ia, _) in cs.candidates(0).iter().enumerate() {
            assert_eq!(
                cs.adjacent_candidates(0, ia, 1),
                p.adjacent_candidates(1, ia, 2)
            );
        }
        // total counts unchanged
        assert_eq!(p.total_candidates(), cs.total_candidates());
        assert_eq!(p.total_candidate_edges(), cs.total_candidate_edges());
    }

    #[test]
    fn build_prepared_equals_build() {
        let cases = [
            (triangle_query(), square_data()),
            gup_graph::fixtures::paper_example(),
        ];
        for (q, d) in &cases {
            let prepared = gup_graph::PreparedData::from_graph(d);
            for use_nlf in [false, true] {
                for passes in [0, 3] {
                    let cfg = FilterConfig {
                        use_nlf,
                        refinement_passes: passes,
                    };
                    let a = CandidateSpace::build(q, d, &cfg);
                    let b = CandidateSpace::build_prepared(q, &prepared, &cfg);
                    for u in 0..a.query_vertex_count() {
                        assert_eq!(a.candidates(u), b.candidates(u), "nlf={use_nlf} u={u}");
                    }
                    assert_eq!(a.total_candidate_edges(), b.total_candidate_edges());
                }
            }
        }
    }

    #[test]
    fn expired_deadline_aborts_construction() {
        let q = triangle_query();
        let d = square_data();
        let cfg = FilterConfig::default();
        let past = Some(Instant::now() - std::time::Duration::from_millis(1));
        assert!(CandidateSpace::build_deadline(&q, &d, &cfg, past).is_err());
        let prepared = gup_graph::PreparedData::from_graph(&d);
        assert!(CandidateSpace::build_prepared_deadline(&q, &prepared, &cfg, past).is_err());
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let q = triangle_query();
        let d = square_data();
        let cfg = FilterConfig::default();
        let future = Some(Instant::now() + std::time::Duration::from_secs(3600));
        let a = CandidateSpace::build(&q, &d, &cfg);
        let b = CandidateSpace::build_deadline(&q, &d, &cfg, future).unwrap();
        for u in 0..a.query_vertex_count() {
            assert_eq!(a.candidates(u), b.candidates(u));
        }
        assert_eq!(a.total_candidate_edges(), b.total_candidate_edges());
    }

    #[test]
    fn heap_bytes_positive() {
        let cs = CandidateSpace::build(&triangle_query(), &square_data(), &FilterConfig::default());
        assert!(cs.heap_bytes() > 0);
    }

    #[test]
    fn paper_figure1_candidate_space() {
        let (q, d) = gup_graph::fixtures::paper_example();
        let cs = CandidateSpace::build(&q, &d, &FilterConfig::default());
        // v13 must not be a candidate of u0 (NLF, §2.1 of the paper).
        assert!(!cs.candidates(0).contains(&13));
        assert!(!cs.any_empty());
        // Every candidate edge is a data edge with matching labels.
        for (a, b) in q.edges() {
            let (a, b) = (a as usize, b as usize);
            for (ia, &va) in cs.candidates(a).iter().enumerate() {
                for &ib in cs.adjacent_candidates(a, ia, b) {
                    let vb = cs.candidates(b)[ib as usize];
                    assert!(d.has_edge(va, vb));
                    assert_eq!(d.label(va), q.label(a as u32));
                    assert_eq!(d.label(vb), q.label(b as u32));
                }
            }
        }
    }
}
