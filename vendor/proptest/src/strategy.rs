//! The [`Strategy`] trait and its combinators. Unlike real proptest there is no
//! value tree and no shrinking: a strategy is just a deterministic sampler over a
//! seeded RNG.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy, then
    /// samples from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($S,)+) = self;
                ($($S.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
