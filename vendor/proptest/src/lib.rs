//! Vendored stand-in for `proptest`. Offline builds cannot fetch the real crate,
//! so this shim implements the subset of the API the workspace's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`]/[`collection::btree_set`],
//! the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real proptest, on purpose:
//!
//! * **Deterministic by construction** — each generated `#[test]` derives its RNG
//!   seed from the test's name (FNV-1a), so `cargo test` is reproducible without a
//!   persistence file. Set `PROPTEST_SEED=<u64>` to override globally.
//! * **No shrinking** — a failing case reports the case index and seed instead of
//!   a minimized input. With pinned seeds, re-running reproduces it exactly.
//! * **Bounded rejects** — `prop_assume!` rejections count toward
//!   `max_global_rejects`; exceeding it aborts the test as in real proptest.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Rejects the current test case (counts as a skip, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                left,
                right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Declares property-based tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(expr)]` inner attribute followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::resolve_seed(stringify!($name));
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            let strat = ( $( $strat, )+ );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while passed < config.cases {
                case += 1;
                let ( $( $arg, )+ ) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest `{}`: exceeded {} rejected cases ({} passed); \
                                 loosen the generator or the assumptions",
                                stringify!($name),
                                config.max_global_rejects,
                                passed,
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {} (seed {:#x}): {}",
                            stringify!($name),
                            case,
                            seed,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}
