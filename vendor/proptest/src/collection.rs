//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Size specification for collection strategies. Accepts an exact size or a
/// half-open / inclusive range, like proptest's `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Inclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a *target* size drawn from `size`; if
/// the element strategy cannot produce enough distinct values the set is smaller.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target * 10 + 16 {
            attempts += 1;
            set.insert(self.element.generate(rng));
        }
        set
    }
}
