//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform strategy over a type's full domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct Uniform<T>(core::marker::PhantomData<T>);

impl Strategy for Uniform<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = Uniform<bool>;

    fn arbitrary() -> Self::Strategy {
        Uniform(core::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Uniform<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }

        impl Arbitrary for $t {
            type Strategy = Uniform<$t>;

            fn arbitrary() -> Self::Strategy {
                Uniform(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
