//! Test-runner configuration and the deterministic RNG behind generated tests.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` configuration. All fields public so struct-update syntax
/// (`ProptestConfig { cases: 48, ..ProptestConfig::default() }`) works as with the
/// real crate.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of *successful* cases each test must accumulate.
    pub cases: u32,
    /// Abort once this many cases were rejected by `prop_assume!`.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by an assumption; it is skipped, not failed.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The RNG handed to [`crate::strategy::Strategy::generate`].
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Seed for a named test: `PROPTEST_SEED` env override, else FNV-1a of the test
/// name — stable across runs, platforms, and test-execution order.
pub fn resolve_seed(test_name: &str) -> u64 {
    if let Some(seed) = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        return seed;
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(resolve_seed("alpha"), resolve_seed("alpha"));
        assert_ne!(resolve_seed("alpha"), resolve_seed("beta"));
    }
}
