//! Vendored stand-in for `parking_lot`, wrapping `std::sync` primitives behind the
//! poison-free parking_lot API (`lock()` returns the guard directly). Built because
//! the workspace compiles offline; the std mutex on modern Linux is futex-based and
//! close enough in behaviour for the thread-pool use in `gup::parallel`.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with the parking_lot API: no poisoning, `lock()` is infallible.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with the parking_lot API: no poisoning, infallible guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
