//! Vendored stand-in for `criterion`. Offline builds cannot fetch the real crate,
//! so this shim implements the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock measurement loop instead of
//! criterion's statistical machinery. Reported numbers are mean ns/iter; good
//! enough for coarse A/B comparisons, not for publication-grade statistics.
//!
//! The shim honours the flags cargo passes to bench binaries: `--test` (run each
//! benchmark exactly once, used by `cargo test --benches`) and a positional
//! filter string; every other flag is accepted and ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.run_one(&id, f);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with `input` passed by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.id.clone(), f);
        self
    }

    /// Ends the group. (No-op beyond matching the real API.)
    pub fn finish(self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            deadline: self.measurement_time,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("{full}: no iterations recorded");
            return;
        }
        let mean_ns = bencher.total.as_nanos() as f64 / bencher.iterations as f64;
        if self.criterion.test_mode {
            println!("{full}: ok (1 iteration, test mode)");
        } else {
            println!(
                "{full}: {:.1} ns/iter (mean over {} iterations)",
                mean_ns, bencher.iterations
            );
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    deadline: Duration,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated runs of `routine`, keeping its output alive via
    /// [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iterations += 1;
            if started.elapsed() > self.deadline {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            samples: 5,
            deadline: Duration::from_secs(1),
            total: Duration::ZERO,
            iterations: 0,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        // warm-up + up to 5 timed runs
        assert!(b.iterations >= 1 && b.iterations <= 5);
        assert_eq!(count, b.iterations + 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
