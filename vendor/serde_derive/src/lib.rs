//! Vendored stand-in for `serde_derive`. The workspace builds offline, so the
//! real proc-macro crate is unavailable; these derives accept the same positions
//! in code (`#[derive(Serialize, Deserialize)]`) and expand to nothing. The types
//! that carry the derives only ever rely on them when an actual serializer is
//! wired in, which none of the current code paths do.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
