//! Vendored, dependency-free stand-in for the parts of the `rand` 0.8 API this
//! workspace uses. The build environment has no access to crates.io, so instead of
//! the real crate we ship a small deterministic implementation with the same
//! surface: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::{gen, gen_range, gen_bool}`](Rng), and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed on every platform, which is exactly what the reproducibility story
//! of the test-suite and the workload generators requires. It is *not* a
//! cryptographic RNG and makes no stability promise w.r.t. the real `rand` crate's
//! value streams.

pub mod rngs;
pub mod seq;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values that can be sampled "from the standard distribution": uniform over the
/// type's domain, except floats which are uniform in `[0, 1)`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that a value can be sampled from uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, Ra>(&mut self, range: Ra) -> T
    where
        Ra: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
