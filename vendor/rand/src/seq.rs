//! Sequence-related extensions: random choice and in-place shuffling of slices.

use crate::Rng;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = rng.gen_range(0..self.len());
            Some(&self[idx])
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
