//! Small, fast, non-cryptographic generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256++ — the same family the real `rand::rngs::SmallRng` uses on 64-bit
/// targets. Deterministic per seed; not cryptographically secure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 never produces it from
        // four consecutive outputs, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
