//! Vendored stand-in for the `serde` facade crate. Offline builds cannot fetch the
//! real serde; this shim provides the two marker traits and re-exports the no-op
//! derive macros so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serializer backend
//! exists in the workspace, so the traits are never exercised at runtime; when a
//! real serialization dependency becomes available, swapping the path dependency
//! back to crates.io `serde` is a one-line change per manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
