//! Allocation accounting for the candidate-filter hot path: NLF filtering must not
//! allocate **per candidate**.
//!
//! Before the prepared-data redesign, `nlf_filter_with_profile` cloned the query's
//! dense label profile (`q_profile.to_vec()`) for every data vertex it tested — one
//! heap allocation per candidate. Both current paths eliminate that:
//!
//! * the legacy path reuses one scratch buffer across all candidates of a query
//!   vertex, and
//! * the prepared path compares precomputed signatures and allocates nothing per
//!   candidate at all.
//!
//! A thread-local counting `#[global_allocator]` (same pattern as
//! `tests/sink_alloc.rs`) pins this: filtering 10× the candidates may only grow the
//! allocation count by the output vector's geometric growth (a few reallocations),
//! never linearly. This file holds exactly these tests so the allocator hook cannot
//! interfere with unrelated suites.

use gup_candidate::filters::{nlf_candidates, nlf_candidates_prepared};
use gup_graph::builder::graph_from_edges;
use gup_graph::{Graph, PreparedData};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates all allocation to `System`; the bookkeeping only touches a
// const-initialized thread-local `Cell`, which never allocates or reenters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown cannot panic.
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    // SAFETY: forwards `ptr`/`layout` unchanged to `System`, whose contract the
    // caller already upholds per the `GlobalAlloc` requirements.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards the caller's arguments unchanged to `System`; the extra
    // bookkeeping touches only a thread-local `Cell` and cannot reenter.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

/// Query: a label-0 vertex with one label-1 neighbor. Data: `n` disjoint 0–1 edges,
/// so query vertex 0 has exactly `n` LDF candidates and every one passes NLF — the
/// filter's per-candidate work scales with `n` while everything else is constant.
fn filter_instance(n: usize) -> (Graph, Graph) {
    let query = graph_from_edges(&[0, 1], &[(0, 1)]);
    let mut labels = Vec::with_capacity(2 * n);
    let mut edges = Vec::with_capacity(n);
    for i in 0..n {
        labels.push(0);
        labels.push(1);
        edges.push((2 * i as u32, 2 * i as u32 + 1));
    }
    (query, graph_from_edges(&labels, &edges))
}

fn legacy_filter_allocations(n: usize) -> (u64, usize) {
    let (query, data) = filter_instance(n);
    let before = allocations();
    let candidates = nlf_candidates(&query, &data, 0);
    (allocations() - before, candidates.len())
}

fn prepared_filter_allocations(n: usize) -> (u64, usize) {
    let (query, data) = filter_instance(n);
    let prepared = PreparedData::new(data);
    let before = allocations();
    let candidates = nlf_candidates_prepared(&query, &prepared, 0);
    (allocations() - before, candidates.len())
}

#[test]
fn legacy_nlf_filtering_does_not_allocate_per_candidate() {
    let _ = legacy_filter_allocations(8); // warm up lazily-initialized runtime state

    let (small_allocs, small_count) = legacy_filter_allocations(400);
    let (large_allocs, large_count) = legacy_filter_allocations(4000);
    assert_eq!(small_count, 400);
    assert_eq!(large_count, 4000);
    // 10× the candidates may only add the output/LDF vectors' geometric-growth
    // reallocations — a handful, never ~3600 like the old per-candidate clone.
    assert!(
        large_allocs <= small_allocs + 16,
        "legacy NLF filtering allocations scaled with the candidate count: \
         {small_allocs} for 400 candidates vs {large_allocs} for 4000"
    );
    assert!(
        large_allocs < 64,
        "legacy NLF filtering made {large_allocs} allocations for 4000 candidates"
    );
}

#[test]
fn prepared_nlf_filtering_does_not_allocate_per_candidate() {
    let _ = prepared_filter_allocations(8);

    let (small_allocs, small_count) = prepared_filter_allocations(400);
    let (large_allocs, large_count) = prepared_filter_allocations(4000);
    assert_eq!(small_count, 400);
    assert_eq!(large_count, 4000);
    assert!(
        large_allocs <= small_allocs + 16,
        "prepared NLF filtering allocations scaled with the candidate count: \
         {small_allocs} for 400 candidates vs {large_allocs} for 4000"
    );
    assert!(
        large_allocs < 64,
        "prepared NLF filtering made {large_allocs} allocations for 4000 candidates"
    );
}

/// The signature comparison itself is allocation-free: testing every candidate
/// individually (no output vector at all) performs zero allocations.
#[test]
fn prepared_signature_test_is_allocation_free() {
    let (query, data) = filter_instance(1000);
    let prepared = PreparedData::new(data);
    let profile = gup_candidate::NlfProfile::of(&query, 0);
    let before = allocations();
    let mut passed = 0usize;
    for v in prepared.graph().vertices() {
        if gup_candidate::nlf_filter_prepared(&profile, &prepared, v) {
            passed += 1;
        }
    }
    let spent = allocations() - before;
    assert_eq!(passed, 1000); // the 1000 label-0 endpoints
    assert_eq!(
        spent, 0,
        "per-candidate signature tests allocated {spent} times"
    );
}
