//! Golden-count regression tests: the exact embedding counts of every fixture pair
//! are pinned here, and every engine — GuP under *each of the 16* `PruningFeatures`
//! combinations, sequential and parallel, all three backtracking baselines, the join
//! baseline, and the brute-force oracle — must reproduce them. A future change to
//! filtering, guards, ordering, or the search loop that silently drops (or invents)
//! embeddings fails this file immediately.

use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline,
};
use gup_graph::fixtures::{clique4, paper_example, path, square_with_diagonal, triangle_query};
use gup_graph::Graph;
use gup_order::OrderingStrategy;

/// The fixture instances and their hand-verified embedding counts.
///
/// * `paper_example` — Fig. 1 of the paper: the 5-cycle A-B-C-D-A query has exactly
///   4 embeddings in the 14-vertex data graph (the one named in the paper's
///   introduction plus three more sharing the v0/v1 label-A hub).
/// * `triangle_query` in `square_with_diagonal` — two label-compatible triangles
///   (0-1-2 and 0-2-3), each matched in 2 automorphic orientations.
/// * `triangle_query` in the paper data graph — the single A-A edge (v0, v1) closes
///   a triangle only through v4, in 2 orientations.
/// * `clique4` in itself — all 4! vertex permutations.
/// * `path(2)` on label 0 in `square_with_diagonal` — only the diagonal (0, 2) joins
///   two label-0 vertices, in 2 orientations.
/// * `path(3)` and `path(4)` on label 1 in `square_with_diagonal` — the three
///   label-1 vertices induce no edge, so no embedding exists; pinned to prove that
///   the engines agree on zero instead of erroring.
fn golden_instances() -> Vec<(&'static str, Graph, Graph, u64)> {
    let (paper_query, paper_data) = paper_example();
    vec![
        ("paper_example", paper_query, paper_data.clone(), 4),
        (
            "triangle_in_square",
            triangle_query(),
            square_with_diagonal(),
            4,
        ),
        ("triangle_in_paper_data", triangle_query(), paper_data, 2),
        ("clique4_in_clique4", clique4(2), clique4(2), 24),
        ("path2_on_diagonal", path(2, 0), square_with_diagonal(), 2),
        ("path3_no_match", path(3, 1), square_with_diagonal(), 0),
        ("path4_no_match", path(4, 1), square_with_diagonal(), 0),
    ]
}

/// Every combination of the four pruning toggles, not just the five named ones from
/// the paper's ablation, so that an interaction bug between guard families cannot
/// hide behind the named presets.
fn all_feature_combinations() -> Vec<PruningFeatures> {
    let mut combos = Vec::with_capacity(16);
    for bits in 0u8..16 {
        combos.push(PruningFeatures {
            reservation_guards: bits & 1 != 0,
            nogood_vertex_guards: bits & 2 != 0,
            nogood_edge_guards: bits & 4 != 0,
            backjumping: bits & 8 != 0,
        });
    }
    combos
}

fn gup_config(features: PruningFeatures) -> GupConfig {
    GupConfig {
        features,
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    }
}

#[test]
fn brute_force_oracle_matches_goldens() {
    for (name, query, data, expected) in golden_instances() {
        assert_eq!(
            brute_force::count(&query, &data),
            expected,
            "brute force disagrees on {name}"
        );
    }
}

#[test]
fn gup_matches_goldens_under_every_feature_combination() {
    for (name, query, data, expected) in golden_instances() {
        for features in all_feature_combinations() {
            let count = GupMatcher::<1>::new(&query, &data, gup_config(features))
                .unwrap()
                .run()
                .embedding_count();
            assert_eq!(
                count,
                expected,
                "GuP[{}] disagrees on {name}",
                features.label()
            );
        }
    }
}

#[test]
fn parallel_gup_matches_goldens() {
    for (name, query, data, expected) in golden_instances() {
        for threads in [2, 4, 8] {
            for features in [PruningFeatures::ALL, PruningFeatures::NONE] {
                let count = GupMatcher::<1>::new(&query, &data, gup_config(features))
                    .unwrap()
                    .run_parallel(threads)
                    .embedding_count();
                assert_eq!(
                    count,
                    expected,
                    "parallel({threads}) GuP[{}] disagrees on {name}",
                    features.label()
                );
            }
        }
    }
}

#[test]
fn backtracking_baselines_match_goldens() {
    for (name, query, data, expected) in golden_instances() {
        for kind in [
            BaselineKind::DafFailingSet,
            BaselineKind::GqlStyle,
            BaselineKind::RiStyle,
        ] {
            let count = BacktrackingBaseline::<1>::new(&query, &data, kind)
                .unwrap()
                .run(BaselineLimits::UNLIMITED)
                .embeddings;
            assert_eq!(count, expected, "{} disagrees on {name}", kind.name());
        }
    }
}

#[test]
fn join_baseline_matches_goldens() {
    for (name, query, data, expected) in golden_instances() {
        let count = JoinBaseline::new(&query, &data, OrderingStrategy::GqlStyle)
            .unwrap()
            .count();
        assert_eq!(count, expected, "join baseline disagrees on {name}");
    }
}

#[test]
fn collected_embeddings_agree_with_counts() {
    for (name, query, data, expected) in golden_instances() {
        let cfg = GupConfig {
            collect_embeddings: true,
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let result = GupMatcher::<1>::new(&query, &data, cfg).unwrap().run();
        assert_eq!(
            result.embeddings.len() as u64,
            expected,
            "materialized embedding list disagrees on {name}"
        );
        assert_eq!(result.embedding_count(), expected);
        // Every reported embedding must be a valid, injective, label- and
        // adjacency-preserving map.
        for emb in &result.embeddings {
            let mut seen: Vec<_> = emb.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), emb.len(), "non-injective embedding on {name}");
            for u in query.vertices() {
                assert_eq!(query.label(u), data.label(emb[u as usize]));
            }
            for (a, b) in query.edges() {
                assert!(data.has_edge(emb[a as usize], emb[b as usize]));
            }
        }
    }
}
