//! Allocation accounting for the sink layer: a `CountOnly` run must perform **zero
//! per-embedding allocations** in the search hot path.
//!
//! A thread-local counting `#[global_allocator]` tallies every allocation made by
//! the test thread. The instance is a single-vertex query over data graphs whose
//! every candidate is an embedding, so the embedding count scales with the instance
//! while the rest of the search structure stays constant-size: if any part of the
//! count-only path allocated per embedding, the allocation count would grow with the
//! instance. The test pins that it does not (and that collecting sinks *do* pay one
//! allocation per retained embedding, i.e. the counter itself works).
//!
//! This file holds exactly this test so the global allocator hook cannot interfere
//! with unrelated suites.

use gup::sink::{CollectAll, CountOnly, FirstK};
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_graph::builder::graph_from_edges;
use gup_graph::Graph;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates all allocation to `System`; the bookkeeping only touches a
// const-initialized thread-local `Cell`, which never allocates or reenters.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` so allocations during TLS teardown cannot panic.
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.alloc(layout)
    }

    // SAFETY: forwards `ptr`/`layout` unchanged to `System`, whose contract the
    // caller already upholds per the `GlobalAlloc` requirements.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: forwards the caller's arguments unchanged to `System`; the extra
    // bookkeeping touches only a thread-local `Cell` and cannot reenter.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

/// `n` label-0 vertices, no edges: a single-vertex label-0 query has exactly `n`
/// embeddings and the search never refines a forward neighbor.
fn all_match_instance(n: usize) -> (Graph, Graph) {
    let query = graph_from_edges(&[0], &[]);
    let data = graph_from_edges(&vec![0u32; n], &[]);
    (query, data)
}

fn count_run_allocations(n: usize) -> (u64, u64) {
    let (query, data) = all_match_instance(n);
    let cfg = GupConfig {
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    let matcher = GupMatcher::<1>::new(&query, &data, cfg).unwrap();
    let mut sink = CountOnly::new();
    let before = allocations();
    matcher.run_with_sink(&mut sink);
    let spent = allocations() - before;
    (spent, sink.count())
}

#[test]
fn count_only_run_allocations_do_not_scale_with_embeddings() {
    // Warm up lazily-initialized runtime state so it cannot pollute the counters.
    let _ = count_run_allocations(8);

    let (small_allocs, small_count) = count_run_allocations(200);
    let (large_allocs, large_count) = count_run_allocations(2000);
    assert_eq!(small_count, 200);
    assert_eq!(large_count, 2000);

    // 10x the embeddings, identical allocation count: the count-only hot path
    // performs zero per-embedding allocations. (Engine setup is a fixed number of
    // allocations — candidate stacks, owner array — independent of how many
    // embeddings stream through the sink.)
    assert_eq!(
        small_allocs, large_allocs,
        "count-only allocations scaled with the embedding count"
    );
    // And that fixed setup cost really is small.
    assert!(
        large_allocs < 64,
        "count-only run made {large_allocs} allocations — hot path no longer lean"
    );
}

/// Same pinning through the width-dispatching session front door: a ≤64-vertex
/// query must take the monomorphized `Qv64` path, whose count-only hot loop makes
/// zero per-embedding (and zero per-node) allocations — the width generalization
/// must not have put an allocation or a branch on the narrow path.
#[test]
fn session_qv64_count_allocations_do_not_scale_with_embeddings() {
    use gup::session::Session;

    // One fixed instance (2000 embeddings available); only the embedding limit
    // varies, so engine construction is identical across runs and any allocation
    // difference would be per-embedding cost on the dispatched Qv64 path.
    let (query, data) = all_match_instance(2000);
    let session = Session::new(data);
    let run = |limit: u64| {
        let before = allocations();
        let count = session.query(&query).limit(limit).count().unwrap();
        (allocations() - before, count)
    };
    // Warm up lazily-initialized runtime state.
    let _ = run(8);

    let (small_allocs, small_count) = run(200);
    let (large_allocs, large_count) = run(2000);
    assert_eq!(small_count, 200);
    assert_eq!(large_count, 2000);
    assert_eq!(
        small_allocs, large_allocs,
        "session count-only allocations scaled with the embedding count"
    );
}

#[test]
fn collecting_sinks_pay_exactly_for_what_they_keep() {
    let (query, data) = all_match_instance(1000);
    let cfg = GupConfig {
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    let matcher = GupMatcher::<1>::new(&query, &data, cfg).unwrap();

    // CollectAll clones each of the 1000 embeddings: at least one allocation each.
    let mut all = CollectAll::new();
    let before = allocations();
    matcher.run_with_sink(&mut all);
    let collect_allocs = allocations() - before;
    assert_eq!(all.len(), 1000);
    assert!(
        collect_allocs >= 1000,
        "CollectAll made only {collect_allocs} allocations for 1000 embeddings"
    );

    // FirstK(5) stops the search after 5: allocations stay near the setup cost.
    let mut first = FirstK::new(5);
    let before = allocations();
    matcher.run_with_sink(&mut first);
    let first_allocs = allocations() - before;
    assert_eq!(first.embeddings().len(), 5);
    assert!(
        first_allocs < 64,
        "FirstK(5) made {first_allocs} allocations — early stop is not early"
    );
}
