//! Tier-1 enforcement of the workspace's static invariants: runs the
//! `gup_analysis` rule engine (the library behind `gup-lint`) over the whole
//! workspace and fails on any finding. This is what turns the rule catalog —
//! clock discipline, no-alloc regions, panic freedom in serve/core and the
//! index mutation paths, justified relaxed atomics, `SAFETY:`-commented
//! `unsafe`, lock-order, guard-across-blocking, and admission discipline —
//! from a convention into a gate: a violation anywhere in `crates/`, `src/`,
//! `examples/`, or `tests/` fails `cargo test`.
//!
//! The clean sweep alone cannot distinguish "no violations" from "the rule
//! went dead", so [`every_rule_still_fires_on_its_corpus_case`] mirrors the
//! analysis crate's seeded-violation corpus here in the integration gate.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = gup_analysis::analyze_workspace(root).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "gup-lint found {} violation(s) — fix each, or annotate it with a reasoned\n\
         `gup-lint: allow(<rule>) <reason>` (see DESIGN.md, \"Static invariants\"):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // Guard against the walker silently walking nothing (e.g. after a directory
    // rename): the workspace has well over a hundred source files; finding
    // fewer than a few dozen means the gate above is vacuous.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = gup_analysis::workspace_files(root).expect("workspace sources are readable");
    assert!(
        files.len() >= 30,
        "only {} .rs files found — the lint walk looks broken",
        files.len()
    );
    // Spot-check that the walk reaches each top-level root it claims to cover.
    for expected in [
        "crates/core/src/search.rs",
        "crates/graph/src/deadline.rs",
        "src/bin/gup-lint.rs",
        "tests/lint_clean.rs",
    ] {
        assert!(
            files.iter().any(|f| f.ends_with(expected)),
            "expected the walk to find {expected}"
        );
    }
}

#[test]
fn every_rule_still_fires_on_its_corpus_case() {
    // One seeded violation per rule, R1–R8: a rule that silently stops firing
    // fails tier-1 here by name, not just in the analysis crate's own tests.
    let mut fired = Vec::new();
    for case in gup_analysis::corpus::CORPUS {
        let findings = gup_analysis::analyze_source(case.path, case.src);
        assert!(
            findings.iter().any(|f| f.rule == case.rule),
            "rule `{}` went dead: its corpus snippet produced {:?}",
            case.rule,
            findings
        );
        fired.push(case.rule);
    }
    assert_eq!(fired.len(), 8, "the corpus must cover all eight rules");
}

#[test]
fn full_workspace_lint_stays_fast() {
    // The lint gate runs on every `cargo test`; if the scope pass regresses to
    // something super-linear the whole tier-1 loop pays for it. 2 s is ~20x
    // headroom over the measured debug-mode sweep.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let start = std::time::Instant::now();
    let findings = gup_analysis::analyze_workspace(root).expect("workspace sources are readable");
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "full workspace lint took {elapsed:?} (budget: 2 s, findings: {})",
        findings.len()
    );
}
