//! Tier-1 enforcement of the workspace's static invariants: runs the
//! `gup_analysis` rule engine (the library behind `gup-lint`) over the whole
//! workspace and fails on any finding. This is what turns the rule catalog —
//! clock discipline, no-alloc regions, panic freedom in serve/core, justified
//! relaxed atomics, `SAFETY:`-commented `unsafe` — from a convention into a
//! gate: a violation anywhere in `crates/`, `src/`, `examples/`, or `tests/`
//! fails `cargo test`.

use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = gup_analysis::analyze_workspace(root).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "gup-lint found {} violation(s) — fix each, or annotate it with a reasoned\n\
         `gup-lint: allow(<rule>) <reason>` (see DESIGN.md, \"Static invariants\"):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_actually_covers_the_workspace() {
    // Guard against the walker silently walking nothing (e.g. after a directory
    // rename): the workspace has well over a hundred source files; finding
    // fewer than a few dozen means the gate above is vacuous.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = gup_analysis::workspace_files(root).expect("workspace sources are readable");
    assert!(
        files.len() >= 30,
        "only {} .rs files found — the lint walk looks broken",
        files.len()
    );
    // Spot-check that the walk reaches each top-level root it claims to cover.
    for expected in [
        "crates/core/src/search.rs",
        "crates/graph/src/deadline.rs",
        "src/bin/gup-lint.rs",
        "tests/lint_clean.rs",
    ] {
        assert!(
            files.iter().any(|f| f.ends_with(expected)),
            "expected the walk to find {expected}"
        );
    }
}
