//! Metamorphic invariance suite: transformations of a `(query, data)` pair that
//! provably preserve the embedding count must leave every engine's reported count
//! unchanged.
//!
//! Two metamorphic relations are exercised:
//!
//! * **Label permutation** — applying one bijection over label values to *both*
//!   graphs renames the constraint alphabet without changing which maps are
//!   embeddings.
//! * **Vertex-id shuffle** — renumbering the vertices of either graph (or both) is
//!   an isomorphism, so the embedding count is invariant; only the reported vertex
//!   names change.
//!
//! Each relation is checked across the whole engine matrix: GuP under **all 16**
//! `PruningFeatures` combinations, the parallel work-stealing driver, all four
//! backtracking baselines, the join baseline, and the brute-force oracle. A
//! filtering / ordering / guard bug that is sensitive to label identities or vertex
//! numbering (e.g. an accidental dependence on label frequency ties or on candidate
//! id order) breaks the invariance and fails here even though every absolute count
//! was never pinned.

use gup::sink::CountOnly;
use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline,
};
use gup_graph::builder::graph_from_edges;
use gup_graph::generate::{erdos_renyi_graph, random_walk_query, ErdosRenyiConfig};
use gup_graph::{fixtures, Graph, Label, VertexId};
use gup_order::OrderingStrategy;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Applies the label bijection `perm` (index = old label, value = new label) to a
/// graph, keeping vertices and edges as they are.
fn permute_labels(g: &Graph, perm: &[Label]) -> Graph {
    let labels: Vec<Label> = g.vertices().map(|v| perm[g.label(v) as usize]).collect();
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    graph_from_edges(&labels, &edges)
}

/// Renumbers the vertices of a graph: old vertex `v` becomes `perm[v]`.
fn shuffle_vertices(g: &Graph, perm: &[VertexId]) -> Graph {
    let mut labels: Vec<Label> = vec![0; g.vertex_count()];
    for v in g.vertices() {
        labels[perm[v as usize] as usize] = g.label(v);
    }
    let edges: Vec<(VertexId, VertexId)> = g
        .edges()
        .map(|(a, b)| (perm[a as usize], perm[b as usize]))
        .collect();
    graph_from_edges(&labels, &edges)
}

fn random_permutation(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    perm
}

fn all_feature_combinations() -> Vec<PruningFeatures> {
    (0u8..16)
        .map(|bits| PruningFeatures {
            reservation_guards: bits & 1 != 0,
            nogood_vertex_guards: bits & 2 != 0,
            nogood_edge_guards: bits & 4 != 0,
            backjumping: bits & 8 != 0,
        })
        .collect()
}

/// Runs the entire engine matrix on one instance and returns the labeled counts.
/// Every engine goes through the shared sink layer (counting sinks everywhere).
fn engine_counts(query: &Graph, data: &Graph) -> Vec<(String, u64)> {
    let mut counts = Vec::new();
    counts.push(("brute-force".to_string(), brute_force::count(query, data)));
    for features in all_feature_combinations() {
        let cfg = GupConfig {
            features,
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let matcher = GupMatcher::<1>::new(query, data, cfg).expect("valid query");
        let mut sink = CountOnly::new();
        matcher.run_with_sink(&mut sink);
        counts.push((format!("GuP[bits={:?}]", features), sink.count()));
    }
    // The work-stealing driver, through the same counting-sink front door.
    let cfg = GupConfig {
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    let matcher = GupMatcher::<1>::new(query, data, cfg).expect("valid query");
    let mut sink = CountOnly::new();
    matcher.run_parallel_with_sink(4, &mut sink);
    counts.push(("GuP-parallel(4)".to_string(), sink.count()));
    for kind in BaselineKind::ALL {
        let mut sink = CountOnly::new();
        let result = BacktrackingBaseline::<1>::new(query, data, kind)
            .expect("valid query")
            .run_with_sink(BaselineLimits::UNLIMITED, &mut sink);
        assert_eq!(
            result.embeddings,
            sink.count(),
            "{} sink drift",
            kind.name()
        );
        counts.push((kind.name().to_string(), sink.count()));
    }
    let mut sink = CountOnly::new();
    JoinBaseline::new(query, data, OrderingStrategy::GqlStyle)
        .expect("valid query")
        .run_with_sink(BaselineLimits::UNLIMITED, &mut sink);
    counts.push(("join".to_string(), sink.count()));
    counts
}

/// All engines agree with each other on this instance; returns the common count.
fn agreed_count(name: &str, query: &Graph, data: &Graph) -> u64 {
    let counts = engine_counts(query, data);
    let expected = counts[0].1;
    for (engine, count) in &counts {
        assert_eq!(
            *count, expected,
            "{name}: engine {engine} disagrees (got {count}, oracle {expected})"
        );
    }
    expected
}

/// The instances the relations are applied to: the golden fixtures plus a couple of
/// seed-pinned random pairs (small enough for the brute-force oracle and the
/// 16-combo GuP matrix).
fn instances() -> Vec<(String, Graph, Graph)> {
    let (paper_query, paper_data) = fixtures::paper_example();
    let mut out = vec![
        ("paper_example".to_string(), paper_query, paper_data),
        (
            "triangle_in_square".to_string(),
            fixtures::triangle_query(),
            fixtures::square_with_diagonal(),
        ),
        (
            "clique4".to_string(),
            fixtures::clique4(1),
            graph_from_edges(
                &[1; 6],
                &[
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (1, 2),
                    (1, 3),
                    (2, 3),
                    (2, 4),
                    (3, 4),
                    (1, 4),
                ],
            ),
        ),
    ];
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    let mut added = 0;
    for seed in 0..20u64 {
        let data = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 16,
            edge_probability: 0.28,
            labels: 3,
            seed,
        });
        let Some(query) = random_walk_query(&data, 4, &mut rng) else {
            continue;
        };
        out.push((format!("er_seed{seed}"), query, data));
        added += 1;
        if added == 2 {
            break;
        }
    }
    assert_eq!(added, 2, "random instance generation went dry");
    out
}

#[test]
fn label_permutation_leaves_counts_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x5EED01);
    for (name, query, data) in instances() {
        let baseline = agreed_count(&name, &query, &data);
        // One shared alphabet for both graphs: the permutation must cover every
        // label either of them uses.
        let alphabet = query.label_count().max(data.label_count());
        for round in 0..3 {
            let perm = random_permutation(alphabet, &mut rng);
            let permuted_query = permute_labels(&query, &perm);
            let permuted_data = permute_labels(&data, &perm);
            let transformed = agreed_count(
                &format!("{name}/labels round {round}"),
                &permuted_query,
                &permuted_data,
            );
            assert_eq!(
                transformed, baseline,
                "{name}: label permutation {perm:?} changed the count"
            );
        }
    }
}

#[test]
fn vertex_shuffle_leaves_counts_invariant() {
    let mut rng = SmallRng::seed_from_u64(0x5EED02);
    for (name, query, data) in instances() {
        let baseline = agreed_count(&name, &query, &data);
        for round in 0..3 {
            // Shuffle the data graph, the query graph, and both at once.
            let data_perm = random_permutation(data.vertex_count(), &mut rng);
            let query_perm = random_permutation(query.vertex_count(), &mut rng);
            let shuffled_data = shuffle_vertices(&data, &data_perm);
            let shuffled_query = shuffle_vertices(&query, &query_perm);
            for (case, q, d) in [
                ("data", &query, &shuffled_data),
                ("query", &shuffled_query, &data),
                ("both", &shuffled_query, &shuffled_data),
            ] {
                let transformed = agreed_count(&format!("{name}/{case} round {round}"), q, d);
                assert_eq!(
                    transformed, baseline,
                    "{name}: vertex shuffle ({case}) changed the count"
                );
            }
        }
    }
}

#[test]
fn composed_transformations_are_still_invariant() {
    // Labels and vertex ids permuted together, on the hardest fixture.
    let (query, data) = fixtures::paper_example();
    let baseline = agreed_count("paper_example", &query, &data);
    let mut rng = SmallRng::seed_from_u64(0x5EED03);
    for round in 0..3 {
        let alphabet = query.label_count().max(data.label_count());
        let label_perm = random_permutation(alphabet, &mut rng);
        let data_perm = random_permutation(data.vertex_count(), &mut rng);
        let query_perm = random_permutation(query.vertex_count(), &mut rng);
        let q = shuffle_vertices(&permute_labels(&query, &label_perm), &query_perm);
        let d = shuffle_vertices(&permute_labels(&data, &label_perm), &data_perm);
        assert_eq!(
            agreed_count(&format!("composed round {round}"), &q, &d),
            baseline,
            "composed label+vertex transformation changed the count"
        );
    }
}
