//! Continuous-matching differential suite.
//!
//! The invariant that anchors the whole streaming subsystem: for any delta
//! batch, the embeddings [`ContinuousMatcher`] streams are **exactly**
//! `full-match(after) \ full-match(before)` — computed by cold full re-matches
//! through the regular session front door. Probed per-step on seed-pinned
//! random delta streams (N ≥ 100 deltas, inserts and deletes) over generated
//! and fixture graphs, cross-checked against multiple engine families and the
//! parallel driver (threads 1 and 4); plus the cumulative form on insert-only
//! streams, where per-step news are disjoint and must sum to the final
//! difference.

use gup::session::{Engine, Session};
use gup_graph::delta::GraphDelta;
use gup_graph::fixtures;
use gup_graph::generate::{erdos_renyi_graph, random_walk_query, ErdosRenyiConfig};
use gup_graph::{Graph, VertexId};
use gup_stream::ContinuousMatcher;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

mod common;
use common::{assert_valid_embedding, random_delta};

/// Engine families (and thread counts) the differential check runs against.
/// Three families beyond the streamed path itself, with the GuP work-stealing
/// driver probed at 1 and 4 threads.
const ORACLES: [(Engine, usize); 4] = [
    (Engine::Gup, 1),
    (Engine::Gup, 4),
    (Engine::Daf, 1),
    (Engine::Gql, 1),
];

fn full_set(
    session: &Session,
    query: &Graph,
    engine: Engine,
    threads: usize,
) -> BTreeSet<Vec<VertexId>> {
    session
        .query(query)
        .method(engine)
        .threads(threads)
        .unlimited()
        .run()
        .expect("valid query")
        .embeddings
        .into_iter()
        .collect()
}

/// Runs `deltas` one batch at a time through a [`ContinuousMatcher`], checking
/// the per-step differential invariant against every oracle in [`ORACLES`],
/// and returns the cumulative streamed set.
fn drive_stream(
    name: &str,
    data: Graph,
    query: &Graph,
    batches: &[Vec<GraphDelta>],
) -> BTreeSet<Vec<VertexId>> {
    let mut stream = ContinuousMatcher::new(Session::new(data));
    let id = stream.register(query).expect("valid standing query");
    let mut before: Vec<BTreeSet<Vec<VertexId>>> = ORACLES
        .iter()
        .map(|&(engine, threads)| full_set(stream.session(), query, engine, threads))
        .collect();
    let mut cumulative: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    for (step, batch) in batches.iter().enumerate() {
        let report = stream.apply(batch).expect("valid batch");
        assert_eq!(report.matches[0].query, id);
        let streamed: BTreeSet<Vec<VertexId>> =
            report.matches[0].embeddings.iter().cloned().collect();
        // Exactly once: the collected list has no duplicates.
        assert_eq!(
            streamed.len(),
            report.matches[0].embeddings.len(),
            "{name} step {step}: duplicate streamed embeddings"
        );
        for embedding in &streamed {
            assert_valid_embedding(name, query, stream.session().data(), embedding);
        }
        for (oracle, before) in ORACLES.iter().zip(before.iter_mut()) {
            let (engine, threads) = *oracle;
            let after = full_set(stream.session(), query, engine, threads);
            let expected: BTreeSet<Vec<VertexId>> = after.difference(before).cloned().collect();
            assert_eq!(
                streamed,
                expected,
                "{name} step {step}: streamed set diverges from {} t={threads}",
                engine.name()
            );
            *before = after;
        }
        cumulative.extend(streamed);
    }
    cumulative
}

#[test]
fn random_streams_match_full_rematch_differences() {
    // ER graphs with a 4-vertex random-walk query; N = 3 × 40 = 120 deltas per
    // seed, mixing inserts, deletes, and vertex adds.
    for seed in [3u64, 77] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 40,
            edge_probability: 0.10,
            labels: 3,
            seed,
        });
        let query = random_walk_query(&data, 4, &mut rng).expect("walk query");
        let mut shadow = data.clone();
        let mut batches: Vec<Vec<GraphDelta>> = Vec::new();
        let mut drawn = 0usize;
        while drawn < 120 {
            let batch: Vec<GraphDelta> =
                (0..3).map(|_| random_delta(&shadow, 3, &mut rng)).collect();
            // Track the stream's state so later draws stay valid; skip the
            // rare batch whose deltas clash with each other.
            let Ok(next) = gup_graph::PreparedData::new(shadow.clone()).apply(&batch) else {
                continue;
            };
            shadow = next.graph().clone();
            drawn += batch.len();
            batches.push(batch);
        }
        drive_stream(&format!("er seed {seed}"), data, &query, &batches);
    }
}

#[test]
fn fixture_stream_matches_full_rematch_differences() {
    let (query, data) = fixtures::paper_example();
    // Tear down and rebuild part of the fixture, then grow it: every step's
    // streamed news must equal the full-rematch difference.
    let n = data.vertex_count() as u32;
    let batches: Vec<Vec<GraphDelta>> = vec![
        vec![GraphDelta::RemoveEdge { a: 0, b: 4 }],
        vec![GraphDelta::AddEdge { a: 0, b: 4 }],
        vec![
            GraphDelta::AddVertex { label: 1 },
            GraphDelta::AddEdge { a: 0, b: n },
        ],
        vec![
            GraphDelta::AddEdge { a: n, b: 7 },
            GraphDelta::RemoveEdge { a: 3, b: 7 },
        ],
        vec![GraphDelta::AddEdge { a: 3, b: 7 }],
    ];
    drive_stream("paper fixture", data, &query, &batches);
}

#[test]
fn insert_only_streams_accumulate_to_the_final_difference() {
    // With no deletions, per-step new sets are disjoint and their union must
    // be exactly full(final) minus full(initial) — the cumulative form of the
    // invariant (deletions would destroy embeddings mid-stream, which the
    // per-step checks cover instead).
    for seed in [11u64, 29] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 36,
            edge_probability: 0.06,
            labels: 3,
            seed,
        });
        let query = random_walk_query(&data, 4, &mut rng).expect("walk query");
        let initial = full_set(&Session::new(data.clone()), &query, Engine::Gup, 1);
        let mut shadow = data.clone();
        let mut batches: Vec<Vec<GraphDelta>> = Vec::new();
        let mut drawn = 0usize;
        while drawn < 100 {
            let delta = loop {
                let d = random_delta(&shadow, 3, &mut rng);
                if !matches!(d, GraphDelta::RemoveEdge { .. }) {
                    break d;
                }
            };
            shadow = gup_graph::PreparedData::new(shadow.clone())
                .apply(std::slice::from_ref(&delta))
                .expect("insert-only deltas are valid")
                .graph()
                .clone();
            drawn += 1;
            batches.push(vec![delta]);
        }
        let cumulative = drive_stream(&format!("insert-only seed {seed}"), data, &query, &batches);
        let final_set = full_set(&Session::new(shadow), &query, Engine::Gup, 1);
        let expected: BTreeSet<Vec<VertexId>> = final_set.difference(&initial).cloned().collect();
        assert_eq!(cumulative, expected, "seed {seed}: cumulative divergence");
    }
}

#[test]
fn triangle_fixture_counts_every_engine_agrees_after_streaming() {
    // Stream a handful of deltas, then ask every engine family for the final
    // count — the streamed session's index must serve them all identically.
    let (query, data) = fixtures::paper_example();
    let mut stream = ContinuousMatcher::new(Session::new(data));
    stream.register(&query).expect("valid standing query");
    let n = stream.session().data().vertex_count() as u32;
    stream
        .apply(&[
            GraphDelta::AddVertex { label: 0 },
            GraphDelta::AddEdge { a: n, b: 2 },
            GraphDelta::AddEdge { a: n, b: 9 },
        ])
        .expect("valid batch");
    let session = stream.session().clone();
    let expected = session.query(&query).unlimited().count().expect("count");
    for engine in Engine::ALL {
        assert_eq!(
            session
                .query(&query)
                .method(engine)
                .unlimited()
                .count()
                .expect("count"),
            expected,
            "engine {}",
            engine.name()
        );
    }
}
